"""Continuous benchmark trajectory with a regression gate.

Each invocation runs a small, normalized slice of the core workloads
(consolidate + execute the Weather Mix family, plus the SMT/simplifier
counters behind it, plus a reduced columnar-backend comparison from
``bench_vectorized``), appends one schema-versioned row to
``BENCH_trajectory.json`` at the repository root, and compares the new
row against the most recent prior row with the same ``schema_version``
and ``scale``:

* deterministic cost-model metrics (UDF speedup, solver/simplifier
  counters) get a **tight** relative tolerance — they only move when the
  algorithm changes;
* wall-clock metrics get a **loose** tolerance — they wobble with the
  machine.

``--tolerance`` scales every band (2.0 = twice as forgiving, for noisy
CI runners).  A regression exits non-zero so CI can gate on it; the
first row for a (schema_version, scale) pair is vacuously green.  On
write the file is deduplicated by ``(git_sha, scale)``, keeping only
the latest row per pair — re-running on the same commit replaces its
measurement instead of stacking duplicates.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py            # append + gate
    PYTHONPATH=src python benchmarks/trajectory.py --dry-run  # gate only
    PYTHONPATH=src python benchmarks/trajectory.py --scale full --tolerance 2
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUTPUT = REPO_ROOT / "BENCH_trajectory.json"
SCHEMA_VERSION = 1

# metric -> (direction, relative tolerance band). "higher" means bigger is
# better (gate fires when the value *drops* below baseline * (1 - band)),
# "lower" means smaller is better (gate fires above baseline * (1 + band)).
METRIC_SPECS = {
    # Deterministic cost-model metrics: tight bands.
    "weather_udf_speedup": ("higher", 0.10),
    "weather_consolidated_udf_cost": ("lower", 0.10),
    "weather_smt_checks": ("lower", 0.10),
    "weather_entail_queries": ("lower", 0.10),
    "weather_prefilter_cost_speedup": ("higher", 0.10),
    # Wall-clock metrics: loose bands (machine-dependent).
    "weather_consolidation_seconds": ("lower", 0.50),
    "weather_run_seconds": ("lower", 0.50),
    "weather_prefilter_synthesis_seconds": ("lower", 0.50),
    # Service economics: seconds for one incremental add divided by
    # seconds for the full batch re-consolidation.  Both halves run on
    # the same machine in the same process, so the ratio is far more
    # stable than either wall-clock alone.
    "weather_incremental_ratio": ("lower", 0.50),
    # Columnar backend: a wall-clock *ratio* (both sides measured
    # interleaved in-process, so machine speed divides out) and the
    # deterministic fallback share of a batch with one unbounded UDF.
    "whereconsolidated_vectorized_speedup": ("higher", 0.50),
    "vectorized_fallback_rate": ("lower", 0.50),
    # Calibrated planner: consolidation wall-time speedup is an
    # interleaved in-process ratio (loose band — the SMT share of the
    # workload varies with machine); the merged-plan runtime cost ratio
    # is deterministic (virtual clock), so any drift is algorithmic.
    "weather_planner_consolidation_speedup": ("higher", 0.50),
    "weather_planner_cost_ratio": ("lower", 0.10),
}

SCALES = {
    # scale -> (cities, n_udfs, rows)
    "small": (20, 8, 400),
    "full": (60, 20, None),
}


def git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:  # noqa: BLE001 - no git in some CI images
        return "unknown"


def collect_metrics(scale: str) -> dict:
    """Run the normalized workload once; return the metric dict."""

    from repro.consolidation import consolidate_all
    from repro.datasets import generate_weather
    from repro.naiad.linq import from_collection, run_where_many
    from repro.queries import DOMAIN_QUERIES

    cities, n_udfs, row_cap = SCALES[scale]
    dataset = generate_weather(cities=cities)
    programs = DOMAIN_QUERIES["weather"].make_batch(dataset, "Mix", n=n_udfs, seed=1)
    rows = dataset.rows if row_cap is None else dataset.rows[:row_cap]

    started = time.perf_counter()
    report = consolidate_all(programs, dataset.functions)
    consolidation_seconds = time.perf_counter() - started

    pids = [p.pid for p in programs]
    many = run_where_many(rows, programs, dataset.functions)
    started = time.perf_counter()
    cons = (
        from_collection(rows)
        .where_consolidated(report.program, pids, dataset.functions)
        .run()
    )
    run_seconds = time.perf_counter() - started
    if many.buckets != cons.buckets:
        raise SystemExit("trajectory workload: consolidated buckets diverged")

    # Incremental-vs-full: patch the merge tree of n-1 programs with the
    # last one and compare against the full batch's consolidation time.
    from repro.consolidation.incremental import add_query, rebuild

    tree, _ = rebuild(programs[:-1], dataset.functions, provenance=False)
    started = time.perf_counter()
    add_query(
        tree, programs[-1], dataset.functions, static_validate=False, record=False
    )
    incremental_seconds = time.perf_counter() - started

    # The prefilter gate rides along at a fixed reduced scale: the cost
    # speedup is deterministic (virtual clock), so any drop is algorithmic.
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_prefilter

    prefilter = bench_prefilter.measure(cities=50, n_udfs=4)

    # The columnar backend rides along at a reduced scale: the speedup is
    # an interleaved in-process ratio (stable across machines) and the
    # fallback rate is exactly deterministic (1 unbounded UDF in 8).
    import bench_vectorized

    vectorized = bench_vectorized.measure(
        n_udfs=8, depth=10, rows=3000, repeats=3
    )

    # The calibrated planner rides along at its validated scale: the
    # speedup is an interleaved ratio, the cost ratio deterministic.
    import bench_calibration

    calibration = bench_calibration.measure(repeats=2)

    return {
        "weather_udf_speedup": round(
            many.metrics.udf_cost / max(1, cons.metrics.udf_cost), 4
        ),
        "weather_consolidated_udf_cost": cons.metrics.udf_cost,
        "weather_smt_checks": report.solver_stats.get("checks", 0),
        "weather_entail_queries": report.simplify_stats.get("entail_queries", 0),
        "weather_prefilter_cost_speedup": prefilter["cost_speedup"],
        "weather_consolidation_seconds": round(consolidation_seconds, 4),
        "weather_run_seconds": round(run_seconds, 4),
        "weather_prefilter_synthesis_seconds": prefilter["synthesis_seconds"],
        "weather_incremental_ratio": round(
            incremental_seconds / max(consolidation_seconds, 1e-9), 4
        ),
        "whereconsolidated_vectorized_speedup": vectorized["where_consolidated"][
            "speedup"
        ],
        "vectorized_fallback_rate": vectorized["fallback"]["rate"],
        "weather_planner_consolidation_speedup": calibration[
            "weather_planner_consolidation_speedup"
        ],
        "weather_planner_cost_ratio": calibration["weather_planner_cost_ratio"],
    }


def make_row(scale: str, metrics: dict) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "scale": scale,
        "metrics": metrics,
    }


def find_baseline(rows: list, scale: str) -> dict | None:
    """Latest prior row with the same schema_version and scale."""

    for row in reversed(rows):
        if row.get("schema_version") == SCHEMA_VERSION and row.get("scale") == scale:
            return row
    return None


def gate(baseline: dict | None, row: dict, tolerance: float = 1.0) -> list[str]:
    """Compare one new row against its baseline; return regression messages.

    ``tolerance`` multiplies every metric's band.  Metrics missing from
    either row are skipped (schema growth must not fail the gate), as is
    a zero baseline (no meaningful relative band).
    """

    if baseline is None:
        return []
    regressions = []
    base_metrics = baseline.get("metrics", {})
    for name, value in row.get("metrics", {}).items():
        spec = METRIC_SPECS.get(name)
        base = base_metrics.get(name)
        if spec is None or base is None or base == 0:
            continue
        direction, band = spec
        band *= tolerance
        if direction == "higher" and value < base * (1 - band):
            regressions.append(
                f"{name}: {value} fell below baseline {base} "
                f"(allowed -{band * 100:.0f}%)"
            )
        elif direction == "lower" and value > base * (1 + band):
            regressions.append(
                f"{name}: {value} rose above baseline {base} "
                f"(allowed +{band * 100:.0f}%)"
            )
    return regressions


def dedupe_rows(rows: list) -> list:
    """Keep only the latest row per ``(git_sha, scale)``, order preserved.

    Re-running the trajectory on the same commit (CI retries, local
    experimentation) used to append a duplicate row each time, silently
    narrowing the gate's history to one commit.  Deduplication keeps the
    *last* row for each pair — the freshest measurement of that commit —
    and leaves rows with no usable sha (``unknown``/missing) alone, since
    distinct runs without git identity cannot be told apart.
    """

    latest: dict = {}
    keep = []
    for index, row in enumerate(rows):
        sha = row.get("git_sha")
        if not sha or sha == "unknown":
            keep.append(index)
            continue
        latest[(sha, row.get("scale"))] = index
    keep.extend(latest.values())
    return [rows[i] for i in sorted(keep)]


def load_rows(path: Path) -> list:
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        raise SystemExit(f"{path} is not a JSON list of trajectory rows")
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.0,
        help="multiplier on every metric's tolerance band (default 1.0)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="trajectory file to append to"
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="run the workload and the gate but do not append the row",
    )
    args = parser.parse_args(argv)

    metrics = collect_metrics(args.scale)
    row = make_row(args.scale, metrics)
    rows = load_rows(args.output)
    baseline = find_baseline(rows, args.scale)
    regressions = gate(baseline, row, args.tolerance)

    for name, value in sorted(metrics.items()):
        print(f"  {name} = {value}")
    if baseline is None:
        print(f"no prior {args.scale!r} row at schema v{SCHEMA_VERSION}: gate is green")
    elif regressions:
        print(f"REGRESSION vs {baseline['git_sha']} ({baseline['timestamp']}):")
        for message in regressions:
            print(f"  {message}")
    else:
        print(f"gate green vs {baseline['git_sha']} ({baseline['timestamp']})")

    if not args.dry_run:
        rows.append(row)
        deduped = dedupe_rows(rows)
        if len(deduped) < len(rows):
            print(f"dropped {len(rows) - len(deduped)} duplicate row(s)")
        args.output.write_text(json.dumps(deduped, indent=2) + "\n")
        print(f"appended row {len(deduped)} to {args.output}")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
