"""Extension benchmark: latency-aware consolidation (Section 8).

Measures average and priority-query broadcast latency under the sequential
baseline, default consolidation, and the priority-ordered fold.
"""

import pytest

from repro.experiments import run_latency_experiment
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

N = 10


def test_latency_extension(benchmark, stock_ds):
    programs = DOMAIN_QUERIES["stock"].make_batch(stock_ds, "Q1", n=N, seed=BENCH_SEED)
    priority = (programs[-1].pid,)

    def run():
        return run_latency_experiment(stock_ds, programs, priority=priority, row_limit=30)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = report.summary()
    print(f"[latency] {summary}")

    pid = priority[0]
    # Consolidation must not regress the designated query's latency, and
    # the priority order should tighten it further (or at least match).
    assert report.consolidated[pid] < report.sequential[pid]
    assert report.prioritized[pid] <= report.consolidated[pid] * 1.05
    assert report.mean(report.consolidated) < report.mean(report.sequential)

    benchmark.extra_info.update({"extension": "latency", **summary})
