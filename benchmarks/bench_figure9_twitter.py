"""Figure 9 bars for the twitter domain (Section 6.3).

Each parametrised case regenerates one UDF/Total speedup bar pair; the
speedups and consolidation time are attached as benchmark extra_info.
"""

import pytest

from repro.queries import DOMAIN_QUERIES

from _util import figure9_family_benchmark


@pytest.mark.parametrize("family", DOMAIN_QUERIES["twitter"].FAMILY_NAMES)
def test_figure9_twitter(benchmark, twitter_ds, family):
    figure9_family_benchmark(benchmark, twitter_ds, "twitter", family)
