"""Figure 10: scalability with the number of UDFs (Section 6.3).

The paper's claims, re-asserted here on the regenerated series:

* whereMany's time grows roughly linearly with the number of UDFs;
* whereConsolidated's stays roughly constant (sub-linear);
* consolidation time grows with n but remains practical.
"""

import pytest

from repro.experiments import render_figure10, run_figure10

SWEEP = (5, 10, 20, 40)


def test_figure10_scalability(benchmark):
    def run_sweep():
        return run_figure10(sweep=SWEEP, articles=300, seed=1)

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(render_figure10(report))

    growth = report.growth_ratios()
    n_ratio = growth["n_ratio"]

    # whereMany grows near-linearly: within 40% of proportional.
    assert growth["many_udf_growth"] > 0.6 * n_ratio
    # whereConsolidated grows clearly sub-linearly.  (The margin tightens
    # with n — at the full sweep to 300 UDFs the ratio is ~0.2x — but this
    # benchmark's quick sweep only reaches n=40.)
    assert growth["cons_udf_growth"] < 0.7 * n_ratio
    # And the gap widens with n (the paper's core scalability message).
    first, last = report.points[0], report.points[-1]
    gap_first = first.many_udf_cost / max(1, first.cons_udf_cost)
    gap_last = last.many_udf_cost / max(1, last.cons_udf_cost)
    assert gap_last > gap_first

    benchmark.extra_info.update(
        {
            "figure": "10",
            "sweep": list(SWEEP),
            "many_udf_growth": round(growth["many_udf_growth"], 2),
            "cons_udf_growth": round(growth["cons_udf_growth"], 2),
            "consolidation_s_at_max": round(report.points[-1].consolidation_seconds, 3),
        }
    )


def test_figure10_consolidation_time_growth(benchmark):
    """Consolidation time itself: grows with n, stays practical (<1s/UDF)."""

    def run_sweep():
        return run_figure10(sweep=(5, 20), articles=120, seed=2)

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    small, large = report.points
    assert large.consolidation_seconds >= small.consolidation_seconds * 0.5
    assert large.consolidation_seconds / large.n_udfs < 1.0
    benchmark.extra_info["consolidation_series"] = [
        (p.n_udfs, round(p.consolidation_seconds, 3)) for p in report.points
    ]
