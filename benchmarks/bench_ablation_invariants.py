"""Ablation: invariant engines — SMT probing vs Karr's affine domain.

Both engines feed the same Loop 2/3 premises and every candidate passes
the same inductiveness check; the ablation compares what each finds and
what it costs on the loop-heavy weather families.
"""

import pytest

from repro.consolidation import ConsolidationOptions, consolidate_all
from repro.naiad import run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

MODES = ("probe", "karr", "both")
N = 10


@pytest.mark.parametrize("mode", MODES)
def test_ablation_invariant_engine(benchmark, weather_ds, mode):
    programs = DOMAIN_QUERIES["weather"].make_batch(weather_ds, "Q3", n=N, seed=BENCH_SEED)
    options = ConsolidationOptions(invariant_engine=mode)
    rows = weather_ds.rows

    many = run_where_many(rows, programs, weather_ds.functions)

    def run():
        return run_where_consolidated(rows, programs, weather_ds.functions, options=options)

    cons, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert many.buckets == cons.buckets
    speedup = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    # Every engine proves the counter equality, so Loop 2 fuses and beats
    # sequential execution.  The probing engine additionally proves the
    # accumulator equality *through the library call* (congruence), which
    # pure Karr cannot (calls havoc), so it shares strictly more.
    assert speedup > 1.05
    if mode in ("probe", "both"):
        assert speedup > 1.5
    benchmark.extra_info.update(
        {
            "ablation": "invariant-engine",
            "mode": mode,
            "udf_speedup": round(speedup, 2),
            "consolidation_s": round(report.duration, 3),
        }
    )
    print(f"[ablation invariants {mode}] udf={speedup:.2f}x consol={report.duration:.2f}s")
