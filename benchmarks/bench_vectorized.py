"""Vectorized backend vs compiled per-row on a consolidated batch.

Times ``whereConsolidated`` end-to-end under the compiled and the
vectorized backends on a straight-line arithmetic batch — the shape the
columnar backend exists for: the consolidator merges every UDF into one
program, the vectorizer fuses the merged body into a single whole-column
kernel, and no per-record environment is ever materialised.  Results land
in ``BENCH_vectorized.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_vectorized.py

The guardrail this file exists for: the vectorized backend must keep the
consolidated batch at >= 5x lower wall-clock per record than the compiled
per-row backend (the roadmap asks for ~10x; the gate is conservative and
the JSON reports the real number).  The fallback ladder rides along: a
deliberately unbounded UDF in a ``whereMany`` batch must degrade exactly
its own records and nothing else, giving a deterministic fallback rate.

Run under pytest it performs a reduced-scale version of the same
comparison (asserting output parity and the deterministic fallback rate)
without touching the JSON file; wall-clock under pytest-parallel load is
noisy, so the reduced run only sanity-checks that vectorized wins.

Workload notes, so the numbers mean something:

* programs are straight-line chains ``x_j := x_{j-1} - x_{j-2} + j`` —
  values stay machine-word sized (no bignum drift that would flatten the
  ratio by making raw arithmetic dominate both backends equally);
* notify guards read the chain's final variable — every statement is
  live, the kernel does all the work — but are selective (almost no
  records notify), keeping result bucket appends — a cost both backends
  share — out of the measurement;
* a single worker runs one whole-partition batch, the vectorized
  backend's best case and the compiled backend's indifference point.
"""

import json
import sys
import time
from pathlib import Path

from repro.config import ExecutionConfig
from repro.consolidation import consolidate_all
from repro.lang import parse_program
from repro.lang.functions import FunctionTable
from repro.naiad.linq import from_collection, run_where_many
from repro.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_vectorized.json"

SPEEDUP_BAR = 5.0

UNBOUNDED_SRC = """
program ub(row) {
  s := 0;
  while (s < @row) {
    s := s + 7;
  }
  notify ub (s > 20);
}
"""


def _make_program(k: int, depth: int, rows: int):
    """One straight-line UDF: a bounded-magnitude chain, selective notify.

    The notify guard reads the chain's final variable, so every statement
    is live — the kernel cannot cheat by skipping work.  Each ``x_j`` is
    linear in ``@row`` (``x_j = a_j * row + b_j`` with ``a_j`` following
    the 6-cycle ``a_j = a_{j-1} - a_{j-2}``, never zero), so the guard
    threshold can be solved exactly for the wanted selectivity.
    """

    assert depth >= 2
    lines = [
        f"  x0 := @row * {2 + k} + {k};",
        f"  x1 := @row - x0 + {3 * k};",
    ]
    a, b = [2 + k, -(1 + k)], [k, 2 * k]
    for j in range(2, depth):
        lines.append(f"  x{j} := x{j - 1} - x{j - 2} + {j};")
        a.append(a[-1] - a[-2])
        b.append(b[-1] - b[-2] + j)
    body = "\n".join(lines)
    # Only rows above `cut` notify (~100 per program): invert the linear
    # map, flipping the comparison when the row coefficient is negative.
    cut = rows - 100 + k
    threshold = a[depth - 1] * cut + b[depth - 1]
    relation = ">" if a[depth - 1] > 0 else "<"
    return parse_program(
        f"program q{k}(row) {{\n{body}\n"
        f"  notify q{k} (x{depth - 1} {relation} {threshold});\n}}"
    )


def _buckets(result):
    return {pid: sorted(map(repr, rs)) for pid, rs in result.buckets.items()}


def measure(n_udfs=12, depth=10, rows=8000, repeats=7):
    """Measure the consolidated speedup and the fallback rate; return the report."""

    ft = FunctionTable({})
    records = list(range(rows))
    programs = [_make_program(k, depth, rows) for k in range(n_udfs)]

    # Consolidation happens once, outside every timed region: this file
    # compares *execution* backends, not the consolidator.
    started = time.perf_counter()
    merged = consolidate_all(programs, ft).program
    consolidation_seconds = time.perf_counter() - started
    pids = [p.pid for p in programs]

    def run_consolidated(backend):
        config = ExecutionConfig(backend=backend, max_workers=1)
        return (
            from_collection(records, config=config)
            .where_consolidated(merged, pids, ft)
            .run(config)
        )

    # Warm both plan caches before timing, then interleave the two
    # backends round by round: slow drift in machine speed (frequency
    # scaling, cache state) hits both sides equally instead of biasing
    # the ratio.  Best-of-N on each side discards transient stalls.
    run_consolidated("compiled")
    run_consolidated("vectorized")
    best = {"compiled": None, "vectorized": None}
    runs = {}
    for _ in range(repeats):
        for backend in best:
            t0 = time.perf_counter()
            runs[backend] = run_consolidated(backend)
            elapsed = time.perf_counter() - t0
            if best[backend] is None or elapsed < best[backend]:
                best[backend] = elapsed
    compiled_s, vectorized_s = best["compiled"], best["vectorized"]
    compiled_run, vectorized_run = runs["compiled"], runs["vectorized"]

    # Bit-identical observability, or the timing is meaningless.
    assert _buckets(vectorized_run) == _buckets(compiled_run), (
        "whereConsolidated: backends disagree — vectorized backend bug"
    )
    assert vectorized_run.metrics.udf_cost == compiled_run.metrics.udf_cost
    assert (
        vectorized_run.metrics.per_worker_total
        == compiled_run.metrics.per_worker_total
    )

    # Fallback ladder: 1 unbounded UDF in a batch of 8 must degrade exactly
    # its own records — a deterministic 1/8 of the batch, counted by the
    # fallback telemetry, with zero effect on the other programs' results.
    ladder = [_make_program(k, 4, rows) for k in range(7)] + [
        parse_program(UNBOUNDED_SRC)
    ]
    telemetry = Telemetry.capture()
    config = ExecutionConfig(
        backend="vectorized", max_workers=1, telemetry=telemetry
    )
    ladder_rows = records[: min(rows, 2000)]
    run_where_many(ladder_rows, ladder, ft, config=config)
    fallback_records = telemetry.counter("vectorized_fallback_records_total").value
    total_records = telemetry.counter("vectorized_records_total").value
    fallback_rate = fallback_records / max(1, total_records)

    speedup = compiled_s / vectorized_s
    return {
        "experiment": "vectorized_vs_compiled",
        "workload": "straight-line arithmetic chains",
        "n_udfs": n_udfs,
        "depth": depth,
        "rows": rows,
        "consolidation_seconds": round(consolidation_seconds, 4),
        "where_consolidated": {
            "compiled_s": round(compiled_s, 4),
            "vectorized_s": round(vectorized_s, 4),
            "compiled_us_per_record": round(compiled_s / rows * 1e6, 3),
            "vectorized_us_per_record": round(vectorized_s / rows * 1e6, 3),
            "speedup": round(speedup, 2),
        },
        "fallback": {
            "batch": len(ladder),
            "unbounded_udfs": 1,
            "fallback_records": fallback_records,
            "total_records": total_records,
            "rate": round(fallback_rate, 4),
        },
        "speedup_bar": SPEEDUP_BAR,
    }


def test_vectorized_parity_and_fallback_rate():
    """Reduced-scale pytest entry: parity always, speed sanity-checked."""

    report = measure(n_udfs=6, depth=8, rows=1500, repeats=2)
    # Parity is asserted inside measure(); the 5x bar is only enforced by
    # the standalone run (timing under pytest-parallel load is noisy), but
    # even here the vectorized backend should never lose outright.
    assert report["where_consolidated"]["speedup"] > 1.0
    # One unbounded UDF in a batch of 8: exactly 1/8 of records fall back.
    assert report["fallback"]["rate"] == 1 / 8


def main() -> int:
    report = measure()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    cons = report["where_consolidated"]
    fb = report["fallback"]
    print(f"wrote {OUTPUT}")
    print(
        f"whereConsolidated[{report['n_udfs']}x{report['depth']}]  "
        f"compiled {cons['compiled_us_per_record']:.2f} us/record  "
        f"vectorized {cons['vectorized_us_per_record']:.2f} us/record  "
        f"({cons['speedup']:.2f}x)"
    )
    print(
        f"fallback ladder: {fb['fallback_records']}/{fb['total_records']} records "
        f"degraded per-row (rate {fb['rate']:.4f})"
    )
    if cons["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: speedup {cons['speedup']:.2f}x is below the "
            f"{SPEEDUP_BAR:.0f}x guardrail"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
