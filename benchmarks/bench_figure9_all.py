"""Figure 9 aggregate statistics (Section 6.3's headline numbers).

The paper reports, over all 21 bar pairs: UDF speedups 2.6x-24.2x with an
average of 8.4x; total speedups 1.4x-23.1x averaging 6.0x; consolidation
averaging ~0.3 s per 50-UDF batch.  This benchmark regenerates the whole
figure once and asserts the qualitative shape: every experiment speeds up,
aggregate averages land in the same band, and the pure families beat the
mixed ones.
"""

import pytest

from repro.experiments import render_figure9, run_figure9

from conftest import BENCH_N_UDFS, BENCH_SEED


def test_figure9_aggregate(benchmark, datasets):
    def run_all():
        return run_figure9(
            n_udfs=BENCH_N_UDFS, seed=BENCH_SEED, datasets=datasets
        )

    report = benchmark.pedantic(run_all, rounds=1, iterations=1)
    agg = report.aggregates()
    print(render_figure9(report))

    # Shape assertions (paper: UDF 2.6-24.2 avg 8.4; total 1.4-23.1 avg 6.0).
    assert agg["udf_min"] >= 1.0
    assert agg["udf_max"] > 5.0
    assert 2.0 < agg["udf_avg"] < 30.0
    assert agg["total_avg"] <= agg["udf_avg"] + 1e-9

    # Pure single-family batches beat the mixed/combined ones on average.
    pure = [r.udf_speedup for r in report.results if r.family.startswith("Q")]
    mixed = [r.udf_speedup for r in report.results if r.family in ("Mix", "BC")]
    assert sum(pure) / len(pure) > sum(mixed) / len(mixed)

    benchmark.extra_info.update({"figure": "9-aggregate", **{k: round(v, 3) for k, v in agg.items()}})
