"""Shared fixtures for the benchmark suite.

Datasets are generated once per session at a reduced (but structurally
faithful) scale so that ``pytest benchmarks/ --benchmark-only`` completes
in minutes; speedups are ratios and therefore scale-independent.  The
paper-scale cardinalities are the generator defaults (see
``repro.datasets``) and can be restored with ``--bench-scale=1.0``.
"""

import pytest

from repro.datasets import (
    generate_flights,
    generate_news,
    generate_stocks,
    generate_twitter,
    generate_weather,
)

BENCH_N_UDFS = 20  # UDFs per family batch (50 in the paper; ratio-stable)
BENCH_SEED = 1


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="0.02",
        help="dataset scale factor relative to the paper's cardinalities",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return float(request.config.getoption("--bench-scale"))


@pytest.fixture(scope="session")
def weather_ds(bench_scale):
    return generate_weather(cities=max(30, int(500 * bench_scale)))


@pytest.fixture(scope="session")
def flight_ds(bench_scale):
    return generate_flights(airlines=max(30, int(500 * bench_scale)))


@pytest.fixture(scope="session")
def news_ds(bench_scale):
    return generate_news(articles=max(100, int(19043 * bench_scale)))


@pytest.fixture(scope="session")
def twitter_ds(bench_scale):
    return generate_twitter(tweets=max(100, int(31152 * bench_scale)))


@pytest.fixture(scope="session")
def stock_ds(bench_scale):
    return generate_stocks(
        companies=max(20, int(100 * bench_scale)), total_daily_rows=max(2000, int(377423 * bench_scale))
    )


@pytest.fixture(scope="session")
def datasets(weather_ds, flight_ds, news_ds, twitter_ds, stock_ds):
    return {
        "weather": weather_ds,
        "flight": flight_ds,
        "news": news_ds,
        "twitter": twitter_ds,
        "stock": stock_ds,
    }
