"""Figure 9 bars for the stock domain (Section 6.3).

Each parametrised case regenerates one UDF/Total speedup bar pair; the
speedups and consolidation time are attached as benchmark extra_info.
"""

import pytest

from repro.queries import DOMAIN_QUERIES

from _util import figure9_family_benchmark


@pytest.mark.parametrize("family", DOMAIN_QUERIES["stock"].FAMILY_NAMES)
def test_figure9_stock(benchmark, stock_ds, family):
    figure9_family_benchmark(benchmark, stock_ds, "stock", family)
