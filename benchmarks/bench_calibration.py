"""Calibrated planner vs the related heuristic (perf + cost guardrail).

The cost-driven planner's pitch: spend consolidation effort where a
calibrated cost model predicts wall-clock payoff, skip pairs it predicts
unprofitable, and lose nothing on the merged plan's runtime cost.  This
file measures that pitch as a paired, same-process A/B on the Weather
Mix family:

* **A** — ``consolidate_all(..., planner="related")`` (the default
  clustered/related pipeline);
* **B** — ``consolidate_all(..., planner="calibrated")`` with the
  uniform fallback model (no trace needed, so the benchmark is
  self-contained and deterministic).

Runs are interleaved A,B,A,B,… and each side keeps its best, so clock
drift hits both equally.  Beyond timing, both merged plans execute over
the dataset and must produce identical notification buckets (planning
must never change semantics); the runtime UDF cost ratio B/A is the
equal-or-better guardrail.

Bars: **speedup >= 1.15** (calibrated consolidation wall time at least
15% lower) and **cost_ratio <= 1.02** (merged-plan runtime cost within
noise of equal; in practice the loop-shape feature makes it better).

Standalone run writes ``BENCH_calibration.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_calibration.py

Under pytest (``pytest benchmarks/bench_calibration.py``) the same
scale runs once and enforces slightly relaxed bars (timing under suite
load is noisy); CI's bench smoke job runs the standalone entry.
"""

import json
import sys
import time
from pathlib import Path

from repro.config import ExecutionConfig
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.naiad.linq import from_collection, run_where_many
from repro.queries import DOMAIN_QUERIES

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_calibration.json"

SPEEDUP_BAR = 1.15  # calibrated planner consolidation wall-time speedup
COST_RATIO_BAR = 1.02  # merged-plan runtime UDF cost, calibrated / related


def measure(cities=50, years=1, n_udfs=24, seed=3, repeats=3, rows_limit=400):
    """Interleaved related-vs-calibrated timing + runtime cost parity."""

    dataset = generate_weather(cities=cities, years=years)
    programs = DOMAIN_QUERIES["weather"].make_batch(
        dataset, "Mix", n=n_udfs, seed=seed
    )
    pids = [p.pid for p in programs]
    rows = list(dataset.rows[:rows_limit])

    def consolidate(planner):
        started = time.perf_counter()
        report = consolidate_all(
            list(programs), dataset.functions, planner=planner
        )
        return time.perf_counter() - started, report

    # Warm both paths once (compile caches, SMT formula cache) so the
    # timed iterations compare planning strategies, not cold caches.
    consolidate("related")
    consolidate("calibrated")

    best = {"related": None, "calibrated": None}
    reports = {}
    for _ in range(repeats):
        for planner in ("related", "calibrated"):
            elapsed, report = consolidate(planner)
            reports[planner] = report
            if best[planner] is None or elapsed < best[planner]:
                best[planner] = elapsed

    many = run_where_many(rows, programs, dataset.functions)
    costs = {}
    for planner, report in reports.items():
        cfg = ExecutionConfig()
        result = (
            from_collection(rows, config=cfg)
            .where_consolidated(report.program, pids, dataset.functions)
            .run(cfg)
        )
        assert result.buckets == many.buckets, (
            f"{planner} planner changed notification buckets — soundness bug"
        )
        costs[planner] = result.metrics.udf_cost

    calibrated = reports["calibrated"]
    decisions = list(calibrated.planner_decisions)
    speedup = best["related"] / best["calibrated"]
    cost_ratio = costs["calibrated"] / max(1, costs["related"])
    return {
        "experiment": "calibration_planner",
        "domain": "weather",
        "family": "Mix",
        "n_udfs": n_udfs,
        "seed": seed,
        "rows": len(rows),
        "repeats": repeats,
        "related_consolidation_s": round(best["related"], 4),
        "calibrated_consolidation_s": round(best["calibrated"], 4),
        "weather_planner_consolidation_speedup": round(speedup, 4),
        "related_udf_cost": costs["related"],
        "calibrated_udf_cost": costs["calibrated"],
        "weather_planner_cost_ratio": round(cost_ratio, 4),
        "planner_merges": sum(1 for d in decisions if d["merged"]),
        "planner_skips": sum(1 for d in decisions if not d["merged"]),
        "planner_mispredictions": sum(1 for d in decisions if d["mispredicted"]),
        "speedup_bar": SPEEDUP_BAR,
        "cost_ratio_bar": COST_RATIO_BAR,
    }


def test_calibrated_planner_speedup_and_cost():
    """Pytest entry: parity always; relaxed bars against suite-load noise."""

    report = measure(repeats=2)
    # Bucket parity is asserted inside measure().  The standalone run and
    # CI's bench smoke enforce the full 1.15/1.02 bars.
    assert report["weather_planner_consolidation_speedup"] >= 1.05
    assert report["weather_planner_cost_ratio"] <= 1.05
    assert report["planner_skips"] >= 1, "planner never skipped a pair"


def main() -> int:
    report = measure()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"consolidate[{report['n_udfs']}] Weather Mix  "
        f"related {report['related_consolidation_s']:.3f}s  "
        f"calibrated {report['calibrated_consolidation_s']:.3f}s  "
        f"(speedup {report['weather_planner_consolidation_speedup']:.2f}x)"
    )
    print(
        f"merged-plan UDF cost  related {report['related_udf_cost']}  "
        f"calibrated {report['calibrated_udf_cost']}  "
        f"(ratio {report['weather_planner_cost_ratio']:.4f}); "
        f"{report['planner_merges']} merges, {report['planner_skips']} skips, "
        f"{report['planner_mispredictions']} mispredictions"
    )
    failed = False
    if report["weather_planner_consolidation_speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: planner speedup "
            f"{report['weather_planner_consolidation_speedup']:.3f} is under "
            f"the {SPEEDUP_BAR:.2f} bar",
            file=sys.stderr,
        )
        failed = True
    if report["weather_planner_cost_ratio"] > COST_RATIO_BAR:
        print(
            f"FAIL: planner cost ratio "
            f"{report['weather_planner_cost_ratio']:.4f} exceeds the "
            f"{COST_RATIO_BAR:.2f} bar",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
