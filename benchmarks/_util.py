"""Shared machinery for the Figure 9 family benchmarks."""

from repro.consolidation import consolidate_all
from repro.naiad import from_collection, run_where_many
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_N_UDFS, BENCH_SEED


def figure9_family_benchmark(benchmark, dataset, domain, family, n_udfs=BENCH_N_UDFS):
    """Benchmark whereConsolidated on one (domain, family) bar of Figure 9.

    The benchmarked target is the consolidated *execution*; the baseline
    (whereMany) is measured once and reported through ``extra_info`` along
    with the speedups and consolidation time, so a benchmark run regenerates
    the full bar pair.
    """

    module = DOMAIN_QUERIES[domain]
    programs = module.make_batch(dataset, family, n=n_udfs, seed=BENCH_SEED)
    rows = dataset.rows

    many = run_where_many(rows, programs, dataset.functions)
    report = consolidate_all(programs, dataset.functions)
    pids = [p.pid for p in programs]

    def run_consolidated():
        query = from_collection(rows).where_consolidated(
            report.program, pids, dataset.functions
        )
        return query.run(workers=4)

    cons = benchmark(run_consolidated)

    assert many.buckets == cons.buckets, "operators disagreed — soundness bug"
    udf_speedup = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    total_speedup = many.metrics.total_cost / max(1, cons.metrics.total_cost)
    assert udf_speedup >= 1.0, "consolidation must never slow UDF execution down"

    benchmark.extra_info.update(
        {
            "figure": "9",
            "domain": domain,
            "family": family,
            "n_udfs": n_udfs,
            "rows": len(rows),
            "udf_speedup": round(udf_speedup, 2),
            "total_speedup": round(total_speedup, 2),
            "consolidation_s": round(report.duration, 3),
        }
    )
    print(
        f"[fig9 {domain}/{family}] UDF {udf_speedup:.2f}x  total {total_speedup:.2f}x  "
        f"consolidation {report.duration:.2f}s ({n_udfs} UDFs, {len(rows)} rows)"
    )
    return udf_speedup, total_speedup
