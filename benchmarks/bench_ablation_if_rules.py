"""Ablation: If 3 vs If 4/5 — the simplification / code-size trade-off.

Section 4's remark: If 3 exposes the most cross-simplification but can blow
up program size; the derived If 4 and If 5 trade sharing for compactness.
This benchmark consolidates the same batch under the three policies and
compares merged-program size, execution cost and consolidation time.
"""

import pytest

from repro.consolidation import ConsolidationOptions, consolidate_all
from repro.lang.visitors import stmt_size
from repro.naiad import run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

MODES = ("heuristic", "always_if3", "always_if5")
N = 8  # small batch: always_if3 is intentionally explosive


@pytest.mark.parametrize("mode", MODES)
def test_ablation_if_rules(benchmark, news_ds, mode):
    programs = DOMAIN_QUERIES["news"].make_batch(news_ds, "Q2", n=N, seed=BENCH_SEED)
    options = ConsolidationOptions(if_rule_mode=mode)

    def consolidate():
        return consolidate_all(programs, news_ds.functions, options=options)

    report = benchmark.pedantic(consolidate, rounds=1, iterations=1)

    rows = news_ds.rows[:200]
    many = run_where_many(rows, programs, news_ds.functions)
    cons, _ = run_where_consolidated(rows, programs, news_ds.functions, options=options)
    assert many.buckets == cons.buckets
    assert cons.metrics.udf_cost <= many.metrics.udf_cost

    size = stmt_size(report.program.body)
    speedup = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    benchmark.extra_info.update(
        {
            "ablation": "if-rules",
            "mode": mode,
            "merged_size": size,
            "udf_speedup": round(speedup, 2),
        }
    )
    print(f"[ablation if-rules {mode}] size={size} udf_speedup={speedup:.2f}x")


def test_if3_largest_if5_smallest(news_ds):
    """The size ordering the paper predicts: if3 >= heuristic >= if5."""

    programs = DOMAIN_QUERIES["news"].make_batch(news_ds, "Q2", n=N, seed=BENCH_SEED)
    sizes = {}
    for mode in MODES:
        options = ConsolidationOptions(if_rule_mode=mode)
        report = consolidate_all(programs, news_ds.functions, options=options)
        sizes[mode] = stmt_size(report.program.body)
    assert sizes["always_if3"] >= sizes["heuristic"] >= sizes["always_if5"]
