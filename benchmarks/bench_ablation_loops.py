"""Ablation: Loop 2/Loop 3 fusion vs sequential loop execution.

Disabling the loop rules forces every loop pair down the Step/Seq path; the
weather yearly-aggregation family (explicit month loops) shows what fusion
is worth.
"""

import pytest

from repro.consolidation import ConsolidationOptions, consolidate_all
from repro.naiad import run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

N = 10


@pytest.mark.parametrize("loops_enabled", (True, False), ids=("fusion", "sequential"))
def test_ablation_loop_rules(benchmark, weather_ds, loops_enabled):
    programs = DOMAIN_QUERIES["weather"].make_batch(weather_ds, "Q3", n=N, seed=BENCH_SEED)
    options = ConsolidationOptions(enable_loop_rules=loops_enabled)
    rows = weather_ds.rows

    many = run_where_many(rows, programs, weather_ds.functions)

    def run_consolidated():
        return run_where_consolidated(
            rows, programs, weather_ds.functions, options=options
        )

    cons, report = benchmark.pedantic(run_consolidated, rounds=1, iterations=1)
    assert many.buckets == cons.buckets
    speedup = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    benchmark.extra_info.update(
        {
            "ablation": "loops",
            "fusion": loops_enabled,
            "udf_speedup": round(speedup, 2),
            "consolidation_s": round(report.duration, 3),
        }
    )
    print(f"[ablation loops fusion={loops_enabled}] udf_speedup={speedup:.2f}x")


def test_fusion_beats_sequential(weather_ds):
    programs = DOMAIN_QUERIES["weather"].make_batch(weather_ds, "Q3", n=N, seed=BENCH_SEED)
    rows = weather_ds.rows[:40]
    speedups = {}
    for enabled in (True, False):
        options = ConsolidationOptions(enable_loop_rules=enabled)
        many = run_where_many(rows, programs, weather_ds.functions)
        cons, _ = run_where_consolidated(rows, programs, weather_ds.functions, options=options)
        speedups[enabled] = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    assert speedups[True] > speedups[False]
