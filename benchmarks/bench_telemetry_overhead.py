"""No-op telemetry overhead on the Weather family (perf guardrail).

The observability layer promises that a run with the default
``NULL_TELEMETRY`` costs (essentially) nothing: the engine branches once
per *run* onto the pre-telemetry code path, never per record.  This file
enforces that promise with a paired, same-hardware A/B:

* **A** — the current engine: ``whereMany[50]`` over the Weather Mix
  batch through ``from_collection(...).where_many(...).run()`` with
  telemetry disabled (the default);
* **B** — a bare re-implementation of the seed's pre-telemetry push
  loop, embedded below, driving the *same* graph over the *same* rows.

Comparing A against B on the same machine in the same process sidesteps
the cross-hardware flakiness of comparing against the absolute numbers
in ``BENCH_compiled.json``.  The guardrail: **A/B <= 1.05** (best-of-5).
For context the report also times the fully instrumented path
(``Telemetry.capture(trace=True)``), which is allowed to be slower.

The same A measurement now also guards the *profiler-off* promise: the
sampling micro-profiler's hooks live on the very code paths A times
(``make_runner`` wraps per-record runners, the operators check the batch
hook), and with no profiler configured — the default — both reduce to
one attribute read per run.  A fourth context run times the engine with
a live :class:`repro.profiling.Profiler` attached (sampling every 32nd
invocation into a throwaway trace), which is allowed to cost more.

Standalone run writes ``BENCH_telemetry.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

Under pytest it performs a reduced-scale version, always asserting
output parity between the three paths; the 5% bar is only enforced by
the standalone run (timing under pytest-parallel load is noisy).
"""

import json
import sys
import time
from pathlib import Path
from time import perf_counter

from repro.config import ExecutionConfig
from repro.datasets import generate_weather
from repro.naiad.dataflow import Worker, _RunState
from repro.naiad.linq import from_collection
from repro.queries import DOMAIN_QUERIES
from repro.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_telemetry.json"

OVERHEAD_BAR = 1.05  # disabled-telemetry engine vs bare seed loop


def _best_of(repeats, fn):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _bare_push(dataflow, vertex, record, worker):
    # Mirrors the seed's ``Dataflow._push`` including its per-call
    # attribute lookups; caching them in locals here would make the
    # baseline artificially faster than the code it stands in for.
    worker.charge_overhead(dataflow.overhead_per_operator)
    for output in vertex.process(record, worker):
        for child in vertex.downstream:
            _bare_push(dataflow, child, output, worker)


def _bare_run(dataflow, records, workers):
    """The seed engine's run loop, verbatim modulo formatting.

    No telemetry branch existed before the observability layer; this is
    the baseline the current fast path is measured against.
    """

    state = _RunState()
    for index, part in enumerate(dataflow._partition(records, workers)):
        worker = Worker(index, state)
        for record in part:
            state.metrics.records += 1
            worker.charge_io(dataflow.io_cost_per_record)
            for root in dataflow._roots:
                _bare_push(dataflow, root, record, worker)
        for vertex in dataflow._vertices:
            vertex.on_flush(worker)
        state.metrics.per_worker_total.append(worker.total_clock)
        state.metrics.per_worker_udf.append(worker.udf_clock)
    return state


def measure(cities=120, n_udfs=50, family="Mix", seed=1, repeats=5, workers=4):
    """Time engine-vs-bare (and instrumented, for context); return report."""

    dataset = generate_weather(cities=cities)
    programs = DOMAIN_QUERIES["weather"].make_batch(dataset, family, n=n_udfs, seed=seed)
    rows = dataset.rows
    ft = dataset.functions

    def build(config=None):
        return from_collection(rows, config=config).where_many(programs, ft)

    # Build each graph once, outside every timed region, so all three
    # sides time the same thing: pushing the rows through an existing
    # graph.  Warm-up also fills the compile cache, so both loops execute
    # identical compiled closures and only the engine loop differs.
    engine_query = build()
    engine_query.run()

    engine_s, engine_run = _best_of(repeats, lambda: engine_query.run())

    bare_query = build()
    bare_s, bare_state = _best_of(
        repeats, lambda: _bare_run(bare_query._dataflow, rows, workers)
    )

    live = ExecutionConfig(telemetry=Telemetry.capture(trace=True))
    traced_query = build(live)
    traced_s, traced_run = _best_of(repeats, lambda: traced_query.run())

    import tempfile

    from repro.profiling import Profiler, TraceStore

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(Path(tmp) / "overhead_trace.jsonl")
        profiler = Profiler(store, domain="weather", sample_every=32)
        profiled_cfg = ExecutionConfig(profiler=profiler)
        profiled_query = build(profiled_cfg)
        profiled_s, profiled_run = _best_of(
            repeats, lambda: profiled_query.run(profiled_cfg)
        )
        store.close()
        samples_taken = profiler.samples_taken

    assert engine_run.buckets == bare_state.buckets, (
        "engine fast path and bare seed loop disagree — engine bug"
    )
    assert engine_run.buckets == traced_run.buckets, (
        "instrumented path changes outputs — telemetry bug"
    )
    assert engine_run.buckets == profiled_run.buckets, (
        "profiled path changes outputs — profiler bug"
    )
    assert samples_taken > 0, "live profiler took no samples"
    assert engine_run.metrics.per_operator == {}, (
        "disabled telemetry still allocated per-operator stats"
    )

    ratio = engine_s / bare_s
    return {
        "experiment": "telemetry_overhead",
        "domain": "weather",
        "family": family,
        "n_udfs": n_udfs,
        "rows": len(rows),
        "workers": workers,
        "repeats": repeats,
        "bare_ms_per_record": round(bare_s / len(rows) * 1e3, 4),
        "engine_ms_per_record": round(engine_s / len(rows) * 1e3, 4),
        "traced_ms_per_record": round(traced_s / len(rows) * 1e3, 4),
        "profiled_ms_per_record": round(profiled_s / len(rows) * 1e3, 4),
        "noop_overhead_ratio": round(ratio, 4),
        "traced_overhead_ratio": round(traced_s / bare_s, 4),
        "profiled_overhead_ratio": round(profiled_s / bare_s, 4),
        "profiler_samples": samples_taken,
        "bar": OVERHEAD_BAR,
    }


def test_noop_telemetry_is_free_and_paths_agree():
    """Reduced-scale pytest entry: parity always, the 5% bar standalone."""

    report = measure(cities=40, n_udfs=10, repeats=2)
    # Parity between all three paths is asserted inside measure().  Timing
    # under pytest load is noisy, so only sanity-check the ratio here; the
    # standalone run (and CI's bench smoke job) enforce OVERHEAD_BAR.
    assert report["noop_overhead_ratio"] < 2.0


def main() -> int:
    report = measure()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"whereMany[{report['n_udfs']}] Weather  bare {report['bare_ms_per_record']:.3f} ms/record  "
        f"engine(no-op) {report['engine_ms_per_record']:.3f} ms/record  "
        f"(ratio {report['noop_overhead_ratio']:.3f})"
    )
    print(
        f"instrumented (trace+metrics)          {report['traced_ms_per_record']:.3f} ms/record  "
        f"(ratio {report['traced_overhead_ratio']:.3f})"
    )
    print(
        f"live profiler (1/32 sampling)         {report['profiled_ms_per_record']:.3f} ms/record  "
        f"(ratio {report['profiled_overhead_ratio']:.3f}, "
        f"{report['profiler_samples']} samples)"
    )
    if report["noop_overhead_ratio"] > OVERHEAD_BAR:
        print(
            f"FAIL: no-op telemetry overhead {report['noop_overhead_ratio']:.3f} "
            f"exceeds the {OVERHEAD_BAR:.2f} bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
