"""Prefilter speedup on a Froid-style low-selectivity workload (perf gate).

The prefilter pass (:mod:`repro.analysis.prefilter`) pays off exactly when
a UDF couples a *cheap* guard with an *expensive* body: the synthesized
necessary condition keeps the cheap conjunct, drops the loop-carried one,
and rejected rows never pay for the loop.  This benchmark builds that
workload deliberately:

* each UDF reads one monthly temperature (cost 40), then scans all twelve
  months accumulating rainfall and temperature sums (24 calls, cost 960),
  and notifies on ``T < t and (X < s and W < w)``;
* the temperature thresholds ``T`` are drawn from the dataset's own
  distribution so that the *union* selectivity over the whole batch is at
  most :data:`TARGET_SELECTIVITY` (asserted, not assumed);
* the loop-carried sums ``s``/``w`` cannot appear in an argument-only
  guard, so the prefilter is exactly the cheap disjunction of temperature
  tests — one call per UDF instead of twenty-five.

The batch is consolidated once and run through ``whereConsolidated`` with
the prefilter off and on; buckets must match exactly and the per-record
UDF cost must improve by at least :data:`SPEEDUP_BAR` (2x).  Costs come
from the deterministic cost semantics, so the gate is machine-independent;
wall-clock numbers are reported for context only.

Standalone run writes ``BENCH_prefilter.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_prefilter.py

Under pytest it runs a reduced-scale version with the same 2x assertion
(the gate is cost-based, hence stable under parallel test load).
"""

import json
import sys
import time
from pathlib import Path

from repro.analysis.prefilter import synthesize_prefilter
from repro.config import ExecutionConfig
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.lang.ast import (
    Arg,
    BinOp,
    BoolOp,
    Call,
    Cmp,
    IntConst,
    Notify,
    Program,
    Var,
    While,
    seq,
)
from repro.lang.ast import Assign
from repro.naiad.linq import run_where_consolidated

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_prefilter.json"

SPEEDUP_BAR = 2.0  # per-record UDF cost, prefilter off / on
TARGET_SELECTIVITY = 0.10  # max fraction of rows the merged guard may pass


def _froid_udf(pid: str, month: int, t_thresh: int, s_thresh: int, w_thresh: int) -> Program:
    """One guarded-aggregate UDF: cheap temperature test, expensive scan."""

    row = Arg("row")
    body = seq(
        Assign("t", Call("monthly_avg_temp", (row, IntConst(month)))),
        Assign("s", IntConst(0)),
        Assign("w", IntConst(0)),
        Assign("i", IntConst(1)),
        While(
            Cmp("<=", Var("i"), IntConst(12)),
            seq(
                Assign("s", BinOp("+", Var("s"), Call("monthly_rainfall", (row, Var("i"))))),
                Assign("w", BinOp("+", Var("w"), Call("monthly_avg_temp", (row, Var("i"))))),
                Assign("i", BinOp("+", Var("i"), IntConst(1))),
            ),
        ),
        Notify(
            pid,
            BoolOp(
                "and",
                Cmp("<", IntConst(t_thresh), Var("t")),
                BoolOp(
                    "and",
                    Cmp("<", IntConst(s_thresh), Var("s")),
                    Cmp("<", IntConst(w_thresh), Var("w")),
                ),
            ),
        ),
    )
    return Program(pid=pid, params=("row",), body=body)


def build_low_selectivity_batch(
    dataset, n_udfs: int = 6, target_selectivity: float = TARGET_SELECTIVITY
):
    """Build the workload; return ``(programs, union_selectivity)``.

    Temperature thresholds are per-UDF upper percentiles of the actual
    per-month distribution, sized so the union of the cheap guards passes
    at most ``target_selectivity`` of the rows; the loop-sum thresholds
    sit near the median, so the expensive conjuncts still decide who
    notifies among the survivors.
    """

    temp = dataset.functions["monthly_avg_temp"].fn
    rain = dataset.functions["monthly_rainfall"].fn
    rows = dataset.rows
    rain_sums = sorted(sum(rain(c, m) for m in range(1, 13)) for c in rows)
    temp_sums = sorted(sum(temp(c, m) for m in range(1, 13)) for c in rows)
    s_thresh = rain_sums[len(rows) // 2]
    w_thresh = temp_sums[len(rows) // 2]

    per_udf = max(1, int(len(rows) * target_selectivity / n_udfs))
    programs = []
    guards = []  # (month, t_thresh) of each UDF's cheap conjunct
    for k in range(n_udfs):
        month = (k % 12) + 1
        temps = sorted(temp(c, month) for c in rows)
        t_thresh = temps[-per_udf]  # ~per_udf rows strictly above
        guards.append((month, t_thresh))
        programs.append(
            _froid_udf(f"q{k}", month, t_thresh, s_thresh + k, w_thresh + k)
        )

    passing = sum(
        1 for c in rows if any(temp(c, month) > t for month, t in guards)
    )
    return programs, passing / len(rows)


def measure(cities: int = 120, n_udfs: int = 6, workers: int = 4) -> dict:
    """Run the A/B (prefilter off vs on); return the report dict."""

    dataset = generate_weather(cities=cities)
    programs, selectivity = build_low_selectivity_batch(dataset, n_udfs=n_udfs)
    assert selectivity <= TARGET_SELECTIVITY, (
        f"workload construction failed: union selectivity {selectivity:.3f} "
        f"exceeds the {TARGET_SELECTIVITY:.0%} target"
    )
    rows = dataset.rows

    started = time.perf_counter()
    report = consolidate_all(programs, dataset.functions, prefilter=True)
    consolidation_seconds = time.perf_counter() - started
    pre = report.prefilter
    assert pre is not None and not pre.trivial, (
        "prefilter synthesis went trivial on the workload built for it: "
        f"{pre and pre.degraded_reason}"
    )

    started = time.perf_counter()
    off, _ = run_where_consolidated(
        rows, programs, dataset.functions, config=ExecutionConfig()
    )
    off_seconds = time.perf_counter() - started

    started = time.perf_counter()
    on, _ = run_where_consolidated(
        rows, programs, dataset.functions, config=ExecutionConfig(prefilter=True)
    )
    on_seconds = time.perf_counter() - started

    assert off.buckets == on.buckets, (
        "prefilter changed the buckets — soundness bug, not a perf problem"
    )

    off_per_record = off.metrics.udf_cost / len(rows)
    on_per_record = on.metrics.udf_cost / len(rows)
    return {
        "experiment": "prefilter_low_selectivity",
        "domain": "weather",
        "n_udfs": n_udfs,
        "rows": len(rows),
        "workers": workers,
        "selectivity": round(selectivity, 4),
        "phi": pre.to_dict()["phi"],
        "shape": pre.shape,
        "certificate": pre.certificate,
        "synthesis_seconds": round(pre.synthesis_seconds, 4),
        "consolidation_seconds": round(consolidation_seconds, 4),
        "cost_per_record_off": round(off_per_record, 2),
        "cost_per_record_on": round(on_per_record, 2),
        "cost_speedup": round(off_per_record / max(1e-9, on_per_record), 4),
        "wall_seconds_off": round(off_seconds, 4),
        "wall_seconds_on": round(on_seconds, 4),
        "bar": SPEEDUP_BAR,
    }


def test_prefilter_speedup_and_parity():
    """Reduced-scale pytest entry; the gate is cost-based so it holds here."""

    report = measure(cities=50, n_udfs=4)
    assert report["certificate"] == "proved"
    assert report["selectivity"] <= TARGET_SELECTIVITY
    assert report["cost_speedup"] >= SPEEDUP_BAR


def main() -> int:
    report = measure()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"whereConsolidated[{report['n_udfs']}] Weather, selectivity "
        f"{report['selectivity']:.1%}: {report['cost_per_record_off']:.0f} -> "
        f"{report['cost_per_record_on']:.0f} cost/record "
        f"({report['cost_speedup']:.2f}x), phi = {report['phi']}"
    )
    if report["cost_speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: prefilter speedup {report['cost_speedup']:.2f}x is below "
            f"the {SPEEDUP_BAR:.1f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
