"""Ablation: the SMT engine vs purely syntactic value numbering.

With ``use_smt=False`` the consolidator keeps only syntactic CSE — no
entailment checks (If 1/If 2, Bool 1/Bool 2), no semantic call sharing, no
loop fusion.  The gap quantifies what the paper's "symbolic SMT-based
techniques" contribute beyond a classical optimiser.
"""

import pytest

from repro.consolidation import ConsolidationOptions, consolidate_all
from repro.naiad import run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

N = 12


@pytest.mark.parametrize("use_smt", (True, False), ids=("smt", "syntactic"))
def test_ablation_smt(benchmark, weather_ds, use_smt):
    programs = DOMAIN_QUERIES["weather"].make_batch(weather_ds, "Mix", n=N, seed=BENCH_SEED)
    options = ConsolidationOptions(use_smt=use_smt)
    rows = weather_ds.rows

    many = run_where_many(rows, programs, weather_ds.functions)

    def run_consolidated():
        return run_where_consolidated(rows, programs, weather_ds.functions, options=options)

    cons, report = benchmark.pedantic(run_consolidated, rounds=1, iterations=1)
    assert many.buckets == cons.buckets
    speedup = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    benchmark.extra_info.update(
        {
            "ablation": "smt",
            "use_smt": use_smt,
            "udf_speedup": round(speedup, 2),
            "consolidation_s": round(report.duration, 3),
        }
    )
    print(f"[ablation smt={use_smt}] udf_speedup={speedup:.2f}x consol={report.duration:.2f}s")


def test_smt_beats_syntactic(weather_ds):
    programs = DOMAIN_QUERIES["weather"].make_batch(weather_ds, "Mix", n=N, seed=BENCH_SEED)
    rows = weather_ds.rows[:40]
    speedups = {}
    for use_smt in (True, False):
        options = ConsolidationOptions(use_smt=use_smt)
        many = run_where_many(rows, programs, weather_ds.functions)
        cons, _ = run_where_consolidated(rows, programs, weather_ds.functions, options=options)
        speedups[use_smt] = many.metrics.udf_cost / max(1, cons.metrics.udf_cost)
    assert speedups[True] >= speedups[False]
