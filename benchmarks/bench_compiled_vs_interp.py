"""Compiled backend vs interpreter on the Weather family (perf guardrail).

Times ``whereMany`` and ``whereConsolidated`` end-to-end under both
execution backends on the Weather Mix batch and records per-record
wall-clock plus speedups in ``BENCH_compiled.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_compiled_vs_interp.py

The guardrail this file exists for: the compiled backend must keep
``whereMany[50]`` at >= 5x lower wall-clock per record than the
interpreter on Weather.  Run under pytest it performs a reduced-scale
version of the same comparison (and asserts output parity) without
touching the JSON file.
"""

import json
import sys
import time
from pathlib import Path

from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.lang.compile import clear_compile_cache, compile_cached
from repro.naiad.linq import from_collection, run_where_many
from repro.queries import DOMAIN_QUERIES

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_compiled.json"


def _best_of(repeats, fn):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure(cities=120, n_udfs=50, family="Mix", seed=1, repeats=3):
    """Measure both operators under both backends; returns the report dict."""

    dataset = generate_weather(cities=cities)
    programs = DOMAIN_QUERIES["weather"].make_batch(dataset, family, n=n_udfs, seed=seed)
    rows = dataset.rows
    ft = dataset.functions

    # Consolidation happens once, outside every timed region: this file
    # compares *execution* backends, not the consolidator.
    merged = consolidate_all(programs, ft).program
    pids = [p.pid for p in programs]

    # One-time translation cost, then the cache serves every later run.
    clear_compile_cache()
    t0 = time.perf_counter()
    for p in programs:
        compile_cached(p, ft)
    compile_cached(merged, ft)
    compile_seconds = time.perf_counter() - t0

    report = {
        "experiment": "compiled_vs_interp",
        "domain": "weather",
        "family": family,
        "n_udfs": n_udfs,
        "rows": len(rows),
        "compile_seconds": round(compile_seconds, 4),
        "compile_seconds_per_udf": round(compile_seconds / (n_udfs + 1), 6),
    }

    def run_consolidated(backend):
        query = from_collection(rows).where_consolidated(
            merged, pids, ft, backend=backend
        )
        return query.run(workers=4)

    results = {}
    for label, run in (
        ("where_many", lambda b: run_where_many(rows, programs, ft, backend=b)),
        ("where_consolidated", run_consolidated),
    ):
        interp_s, interp_run = _best_of(repeats, lambda: run("interp"))
        compiled_s, compiled_run = _best_of(repeats, lambda: run("compiled"))
        assert interp_run.buckets == compiled_run.buckets, (
            f"{label}: backends disagree — compiled backend bug"
        )
        results[label] = (interp_run, compiled_run)
        report[label] = {
            "interp_s": round(interp_s, 4),
            "compiled_s": round(compiled_s, 4),
            "interp_ms_per_record": round(interp_s / len(rows) * 1e3, 4),
            "compiled_ms_per_record": round(compiled_s / len(rows) * 1e3, 4),
            "speedup": round(interp_s / compiled_s, 2),
        }

    return report, results


def test_backends_agree_and_compiled_is_faster():
    """Reduced-scale pytest entry: parity always, speed sanity-checked."""

    report, _ = measure(cities=40, n_udfs=10, repeats=1)
    # Parity is asserted inside measure(); the speedup bar is only enforced
    # by the standalone run (timing under pytest-parallel load is noisy),
    # but even here the compiled backend should never lose outright.
    assert report["where_many"]["speedup"] > 1.0


def main() -> int:
    report, _ = measure()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    many = report["where_many"]
    cons = report["where_consolidated"]
    print(f"wrote {OUTPUT}")
    print(
        f"whereMany[{report['n_udfs']}]        interp {many['interp_ms_per_record']:.3f} ms/record  "
        f"compiled {many['compiled_ms_per_record']:.3f} ms/record  ({many['speedup']:.1f}x)"
    )
    print(
        f"whereConsolidated[{report['n_udfs']}] interp {cons['interp_ms_per_record']:.3f} ms/record  "
        f"compiled {cons['compiled_ms_per_record']:.3f} ms/record  ({cons['speedup']:.1f}x)"
    )
    if many["speedup"] < 5.0:
        print("FAIL: whereMany compiled speedup below the 5x guardrail", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
