"""Micro-benchmarks of the core components (not a paper figure).

Tracks the throughput of the pieces the end-to-end numbers rest on: the
SMT solver's entailment checks, single-pair consolidation of the paper's
Example 1, and the interpreter's row throughput.
"""

import pytest

from repro.consolidation import Consolidator
from repro.lang import (
    FunctionTable,
    Interpreter,
    LibraryFunction,
    STR,
    arg,
    assign,
    call,
    eq,
    ge,
    if_,
    ite_notify,
    notify,
    program,
    var,
)
from repro.smt import Solver, app, eq_f, fand, le_f, lt_f, num, sym


def test_bench_smt_entailment_chain(benchmark):
    """A 12-step transitivity entailment, solved from scratch each time."""

    syms = [sym(f"x{i}") for i in range(13)]
    hyp = fand(*(le_f(syms[i], syms[i + 1]) for i in range(12)))
    goal = le_f(syms[0], syms[12])

    def check():
        solver = Solver()  # fresh: measure raw solving, not the cache
        assert solver.entails(hyp, goal)

    benchmark(check)


def test_bench_smt_congruence(benchmark):
    x, y, z = sym("x"), sym("y"), sym("z")
    hyp = fand(le_f(x, y), le_f(y, x), eq_f(z, app("f", x)))

    def check():
        solver = Solver()
        assert solver.entails(hyp, eq_f(app("f", y), z))

    benchmark(check)


@pytest.fixture(scope="module")
def example1():
    airlines = ["United", "Southwest", "Delta"]
    ft = FunctionTable(
        [
            LibraryFunction("airlineName", lambda fi: airlines[fi % 3], cost=20, result_sort=STR),
            LibraryFunction("toLower", lambda s: s.lower(), cost=15, result_sort=STR, arg_sorts=(STR,)),
            LibraryFunction("price", lambda fi: (fi * 37) % 400, cost=20),
        ]
    )
    f1 = program(
        "f1",
        ("fi",),
        assign("name", call("toLower", call("airlineName", arg("fi")))),
        if_(eq(var("name"), "united"), notify("f1", True), ite_notify("f1", eq(var("name"), "southwest"))),
    )
    f2 = program(
        "f2",
        ("fi",),
        if_(
            ge(call("price", arg("fi")), 200),
            notify("f2", False),
            ite_notify("f2", eq(call("toLower", call("airlineName", arg("fi"))), "united")),
        ),
    )
    return ft, f1, f2


def test_bench_consolidate_example1(benchmark, example1):
    """Single-pair consolidation latency (the paper: sub-second for 100s)."""

    ft, f1, f2 = example1

    def consolidate():
        return Consolidator(ft).consolidate(f1, f2)

    merged = benchmark(consolidate)
    assert merged.pid == "f1&f2"


def test_bench_interpreter_throughput(benchmark, example1):
    ft, f1, _f2 = example1
    interp = Interpreter(ft)

    def run_batch():
        total = 0
        for i in range(200):
            total += interp.run(f1, {"fi": i}).cost
        return total

    total = benchmark(run_batch)
    assert total > 0
