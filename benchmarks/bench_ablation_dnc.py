"""Ablation: divide-and-conquer order vs a left fold for n-UDF batches.

Section 6.1 amortises consolidation with a balanced pairwise tree.  A left
fold consolidates the ever-growing accumulator against each new UDF — same
final semantics, different consolidation-time profile.
"""

import pytest

from repro.consolidation import consolidate_all
from repro.lang.visitors import notified_pids
from repro.queries import DOMAIN_QUERIES

from conftest import BENCH_SEED

N = 16


@pytest.mark.parametrize("order", ("clustered", "tree", "fold"))
def test_ablation_dnc_order(benchmark, stock_ds, order):
    programs = DOMAIN_QUERIES["stock"].make_batch(stock_ds, "Q1", n=N, seed=BENCH_SEED)

    def consolidate():
        return consolidate_all(programs, stock_ds.functions, order=order)

    report = benchmark.pedantic(consolidate, rounds=1, iterations=1)
    assert notified_pids(report.program.body) == {p.pid for p in programs}
    benchmark.extra_info.update(
        {
            "ablation": "dnc-order",
            "order": order,
            "pairs": report.pair_consolidations,
            "depth": report.tree_depth,
            "consolidation_s": round(report.duration, 3),
        }
    )
    print(
        f"[ablation dnc {order}] {report.pair_consolidations} pairs, depth "
        f"{report.tree_depth}, {report.duration:.2f}s"
    )


def test_tree_is_shallower(stock_ds):
    programs = DOMAIN_QUERIES["stock"].make_batch(stock_ds, "Q1", n=N, seed=BENCH_SEED)
    tree = consolidate_all(programs, stock_ds.functions, order="tree")
    fold = consolidate_all(programs, stock_ds.functions, order="fold")
    assert tree.tree_depth < fold.tree_depth
    assert tree.pair_consolidations == fold.pair_consolidations == N - 1
