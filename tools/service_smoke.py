"""End-to-end smoke of the consolidation service across a restart.

What CI's ``service-smoke`` job runs:

1. start ``python -m repro serve`` as a real subprocess on an ephemeral
   port with an ``--event-log`` journal;
2. register one query from each of the weather domain's five families
   (Q1–Q4 and Mix) through the typed HTTP client;
3. record every query fingerprint and the consolidated plan fingerprint,
   run the plan once over dataset rows;
4. scrape ``/metrics`` twice — once as JSON, once with an ``Accept:
   text/plain`` header — and assert both content types serve the same
   counters (JSON document vs Prometheus text exposition);
5. kill the server, start a fresh one over the same journal;
6. assert the replayed registry serves byte-identical query and
   plan-cache fingerprints and an identical consolidated program.

Exit status 0 only when every assertion holds.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import generate_weather  # noqa: E402
from repro.lang.printer import program_to_str  # noqa: E402
from repro.queries import DOMAIN_QUERIES  # noqa: E402
from repro.service import Client  # noqa: E402

SERVE_PATTERN = re.compile(r"serving on http://[\d.]+:(\d+)")


def start_server(event_log: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on an ephemeral port; return (proc, port)."""

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--domain",
            "weather",
            "--port",
            "0",
            "--event-log",
            event_log,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"serve exited early with status {proc.wait()}"
            )
        match = SERVE_PATTERN.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise SystemExit("serve did not print its port within 60s")


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def check_metrics(port: int) -> None:
    """Scrape ``/metrics`` in both content types and cross-check them."""

    url = f"http://127.0.0.1:{port}/metrics"
    with urllib.request.urlopen(url) as response:
        assert response.headers.get_content_type() == "application/json", (
            f"default /metrics content type: {response.headers.get_content_type()}"
        )
        doc = json.loads(response.read())
    assert doc["registered_total"] >= 1, doc
    assert "planner" in doc, doc

    request = urllib.request.Request(url, headers={"Accept": "text/plain"})
    with urllib.request.urlopen(request) as response:
        assert response.headers.get_content_type() == "text/plain", (
            f"negotiated /metrics content type: {response.headers.get_content_type()}"
        )
        text = response.read().decode()
    assert "# TYPE service_registered_total counter" in text, text
    assert f'service_registered_total {doc["registered_total"]}' in text, text
    assert "service_info{" in text and 'planner="' in text, text
    print("  /metrics serves JSON by default and Prometheus text on Accept")


def main() -> int:
    dataset = generate_weather(cities=20)
    module = DOMAIN_QUERIES["weather"]
    sources = {}
    for index, family in enumerate(module.FAMILY_NAMES):
        program = module.make_batch(dataset, family, n=index + 1, seed=4)[index]
        sources[program.pid] = program_to_str(program)
    print(f"registering {len(sources)} queries, one per family: "
          f"{', '.join(module.FAMILY_NAMES)}")

    with tempfile.TemporaryDirectory() as tmp:
        event_log = os.path.join(tmp, "events.jsonl")

        proc, port = start_server(event_log)
        try:
            client = Client(port=port)
            fingerprints = {}
            for pid, source in sources.items():
                result = client.register(source)
                fingerprints[pid] = result.query.fingerprint
                print(f"  registered {pid}: fingerprint {result.query.fingerprint}, "
                      f"patch {result.patch.action} ({result.patch.pair_merges} merges)")
            plan = client.plan()
            print(f"plan {plan.fingerprint}: {plan.queries} queries, depth {plan.depth}")
            run = client.run(list(dataset.rows[:50]))
            print(f"run: buckets for {sorted(run.buckets)} (udf cost {run.udf_cost})")
            assert plan.queries == len(sources)
            check_metrics(port)
        finally:
            stop_server(proc)
        print("server killed; restarting over the journal")

        proc, port = start_server(event_log)
        try:
            revived = Client(port=port)
            assert revived.health().queries == len(sources), "membership lost"
            replayed = {q.pid: q.fingerprint for q in revived.queries()}
            assert replayed == fingerprints, (
                f"query fingerprints diverged after replay:\n"
                f"  before: {fingerprints}\n  after:  {replayed}"
            )
            replayed_plan = revived.plan()
            assert replayed_plan.fingerprint == plan.fingerprint, (
                f"plan fingerprint diverged: {plan.fingerprint} -> "
                f"{replayed_plan.fingerprint}"
            )
            assert replayed_plan.program == plan.program, "merged program diverged"
            rerun = revived.run(list(dataset.rows[:50]))
            assert rerun.buckets == run.buckets, "notification buckets diverged"
        finally:
            stop_server(proc)

    print("service smoke OK: restart replay restored identical fingerprints")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
