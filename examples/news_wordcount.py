"""WordCount over a consolidated filter (the Naiad tutorial workload).

The paper's News Q1 family "is modeled after the WordCount program provided
as part of the Naiad tutorial".  This example combines both halves: several
teams register article filters (consolidated into one UDF), and the
articles *any* team selected flow into a shared word-count aggregation —
a filter → flat_map → count_by_key dataflow.  Run with::

    python examples/news_wordcount.py
"""

from repro import ExecutionConfig, Telemetry
from repro.consolidation import consolidate_all
from repro.datasets import generate_news
from repro.lang import arg, call, eq, gt
from repro.naiad import CountByKey, from_collection
from repro.queries.families import expr_to_program


def main() -> None:
    # One config object carries every run-time knob (workers, backend,
    # executor) plus a live telemetry capturing metrics for the whole job.
    cfg = ExecutionConfig(workers=4, telemetry=Telemetry.capture())
    dataset = generate_news(articles=800)
    word_ids = dataset.meta["word_ids"]
    words = dataset.meta["words"]

    # Three teams' filters over the same corpus.
    filters = [
        expr_to_program("finance", eq(call("contains_word", arg("row"), word_ids["market"]), 1)),
        expr_to_program("energy", eq(call("contains_word", arg("row"), word_ids["oil"]), 1)),
        expr_to_program("longform", gt(call("avg_word_length", arg("row")), 46)),
    ]
    report = consolidate_all(filters, dataset.functions, config=cfg)
    print(
        f"consolidated {report.num_inputs} filters in {report.duration * 1000:.0f} ms "
        f"({report.pair_consolidations} merges)"
    )

    # Route every article selected by at least one team into the counter.
    # The consolidated UDF broadcasts each team's verdict per article; here
    # we tap the union through a small adapter stage.
    selected: set[int] = set()
    run1 = (
        from_collection(dataset.rows, config=cfg)
        .where_consolidated(report.program, [p.pid for p in filters], dataset.functions)
        .run()
    )
    for pid in ("finance", "energy", "longform"):
        rows = run1.buckets.get(pid, [])
        print(f"  {pid}: {len(rows)} articles")
        selected.update(rows)

    # WordCount over the union of selections: flat_map into words, count.
    run2 = (
        from_collection(sorted(selected), config=cfg)
        .flat_map(lambda article: words[article])
        .count_by_key("counts")
        .run()
    )
    totals = CountByKey.combine(run2.buckets["counts"])
    top = sorted(totals.items(), key=lambda kv: -kv[1])[:8]
    print(f"\n{len(selected)} articles selected; top words (by interned id):")
    for word, count in top:
        print(f"  word#{word:<5} x{count}")
    print(f"\nword-count stage cost: {run2.metrics.udf_cost} units over {run2.metrics.records} articles")

    # The telemetry registry aggregated both dataflow runs and the
    # consolidation's SMT work; the same data lands in --metrics-out files.
    reg = cfg.telemetry.metrics
    print(
        f"telemetry: {reg.counter('dataflow_runs_total').value:.0f} runs, "
        f"{reg.counter('dataflow_records_total').value:.0f} records, "
        f"{reg.counter('smt_checks').value:.0f} SMT checks"
    )


if __name__ == "__main__":
    main()
