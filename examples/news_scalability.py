"""Scalability demo: what happens as more and more queries pile up.

A compressed version of the paper's Figure 10 experiment: News-domain
boolean-combination queries are added in growing batches, and the cost of
``whereMany`` (grows with every query) is compared against
``whereConsolidated`` (stays nearly flat once the shared computations are
merged).  Run with::

    python examples/news_scalability.py
"""

from repro.experiments import render_figure10, run_figure10


def main() -> None:
    report = run_figure10(sweep=(5, 10, 20, 40), articles=300, seed=7)
    print(render_figure10(report))

    growth = report.growth_ratios()
    print(
        f"\nInterpretation: queries grew {growth['n_ratio']:.0f}x; the baseline's "
        f"UDF work grew {growth['many_udf_growth']:.1f}x with it, while the "
        f"consolidated operator's grew only {growth['cons_udf_growth']:.1f}x — "
        "the paper's Figure 10 shape."
    )


if __name__ == "__main__":
    main()
