"""A price-monitoring stream application (the paper's introduction scenario).

"Many queries issued by a popular price monitoring application may filter
airlines that fly between two cities and whose cost is lower than a certain
amount. Here, cities and cost are the query parameters."

This example registers 40 such queries (clustered on popular routes, as a
real app's traffic would be), runs them through the mini-Naiad engine with
the ``whereMany`` baseline and with ``whereConsolidated``, and reports the
speedup.  Run with::

    python examples/flight_price_monitor.py
"""

import random

from repro.datasets import generate_flights
from repro.lang import arg, call, eq, lt, and_
from repro.naiad import run_where_consolidated, run_where_many
from repro.queries.families import expr_to_program

POPULAR_ROUTES = [(0, 1), (0, 2), (1, 2), (3, 4)]
N_QUERIES = 40


def make_queries(rng: random.Random):
    """Draw parametrised direct-flight queries: route + price bound."""

    programs = []
    for i in range(N_QUERIES):
        src, dst = rng.choice(POPULAR_ROUTES)
        budget = rng.choice([120, 150, 180, 220, 260, 320])
        predicate = and_(
            eq(call("has_direct", arg("row"), src, dst), 1),
            lt(call("direct_price", arg("row"), src, dst), budget),
        )
        programs.append(expr_to_program(f"user{i}", predicate))
    return programs


def main() -> None:
    dataset = generate_flights(airlines=200)
    queries = make_queries(random.Random(42))

    print(f"dataset : {dataset.description}")
    print(f"queries : {len(queries)} direct-flight filters over {len(POPULAR_ROUTES)} routes\n")

    many = run_where_many(dataset.rows, queries, dataset.functions)
    cons, report = run_where_consolidated(dataset.rows, queries, dataset.functions)

    assert many.buckets == cons.buckets, "operators must select identical rows"

    print(f"whereMany        : UDF cost {many.metrics.udf_cost:>10}  total {many.metrics.total_cost:>10}")
    print(f"whereConsolidated: UDF cost {cons.metrics.udf_cost:>10}  total {cons.metrics.total_cost:>10}")
    print(
        f"\nspeedup: {many.metrics.udf_cost / cons.metrics.udf_cost:.2f}x (UDF), "
        f"{many.metrics.total_cost / cons.metrics.total_cost:.2f}x (total)"
    )
    print(
        f"consolidation: {report.duration * 1000:.0f} ms for {report.num_inputs} UDFs "
        f"({report.pair_consolidations} pairwise merges, tree depth {report.tree_depth})"
    )

    # A couple of example answers, to show per-query results survive merging.
    for pid in ("user0", "user1", "user2"):
        matches = cons.buckets.get(pid, [])
        print(f"  {pid}: {len(matches)} airlines match")


if __name__ == "__main__":
    main()
