"""Quickstart: consolidate two UDFs written as plain Python functions.

Reproduces the paper's opening example (Section 2, Example 1): two flight
filters that share the airline-name computation and have an implication
between their tests.  Run with::

    python examples/quickstart.py
"""

from repro import Consolidator, ExecutionConfig, Telemetry, consolidate_all, translate_udf
from repro.consolidation import check_soundness
from repro.lang import FunctionTable, LibraryFunction, STR, program_to_str

# ---------------------------------------------------------------------------
# 1. The library functions UDFs may call (pure and deterministic — the
#    paper's "well-behaved" requirement).  Costs drive the optimizer.
# ---------------------------------------------------------------------------

AIRLINES = ["United", "Southwest", "Delta", "JetBlue", "Alaska"]

functions = FunctionTable(
    [
        LibraryFunction("airline_name", lambda fi: AIRLINES[fi % 5], cost=20, result_sort=STR),
        LibraryFunction("to_lower", lambda s: s.lower(), cost=15, result_sort=STR, arg_sorts=(STR,)),
        LibraryFunction("price", lambda fi: (fi * 37) % 400, cost=20),
    ]
)

# ---------------------------------------------------------------------------
# 2. Two UDFs over the same input row. f1 filters for United/Southwest
#    flights; f2 for cheap United flights.
# ---------------------------------------------------------------------------


def f1(fi):
    name = to_lower(airline_name(fi))  # noqa: F821 - library call, resolved at translation
    if name == "united":
        return True
    return name == "southwest"


def f2(fi, budget=200):
    if price(fi) >= budget:  # noqa: F821
        return False
    return to_lower(airline_name(fi)) == "united"  # noqa: F821


def main() -> None:
    p1 = translate_udf(f1, pid="f1", functions=functions)
    p2 = translate_udf(f2, pid="f2", functions=functions)

    print("=== original f1 ===")
    print(program_to_str(p1))
    print("\n=== original f2 ===")
    print(program_to_str(p2))

    # -----------------------------------------------------------------------
    # 3. Consolidate. The merged program computes the airline name once,
    #    tests "united" once, and drops f2's dead price test in the branch
    #    where f1 already decided the outcome.
    # -----------------------------------------------------------------------
    consolidator = Consolidator(functions)
    merged = consolidator.consolidate(p1, p2)
    print("\n=== consolidated ===")
    print(program_to_str(merged))
    print(f"\ncalculus rules applied: {consolidator.trace}")

    # -----------------------------------------------------------------------
    # 4. Verify Theorem 1 dynamically: identical notifications, lower cost.
    # -----------------------------------------------------------------------
    inputs = [{"fi": i} for i in range(500)]
    report = check_soundness([p1, p2], merged, functions, inputs)
    assert report.ok, report.violations
    print(
        f"\nchecked {report.inputs_checked} inputs: identical results, "
        f"cost {report.sequential_cost} -> {report.consolidated_cost} "
        f"({report.speedup:.2f}x speedup)"
    )

    # -----------------------------------------------------------------------
    # 5. Observability: the same consolidation through the batch driver,
    #    with a live telemetry on the config capturing what the optimiser
    #    did (the CLI's --metrics-out / --trace flags write this to disk).
    # -----------------------------------------------------------------------
    cfg = ExecutionConfig(telemetry=Telemetry.capture())
    consolidate_all([p1, p2], functions, config=cfg)
    reg = cfg.telemetry.metrics
    print(
        f"telemetry: {reg.counter('consolidation_pairs_total').value:.0f} pair merge(s), "
        f"{reg.counter('smt_checks').value:.0f} SMT checks, "
        f"{reg.counter('smt_cache_hits').value:.0f} cache hits"
    )


if __name__ == "__main__":
    main()
