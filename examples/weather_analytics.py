"""Loop fusion across analytics scripts (the paper's Example 2 at scale).

Different teams run similar monthly-scan loops over the same weather data:
one script filters cold cities by *minimum* monthly temperature, another
warm cities by *maximum*, a third by the yearly *sum* of rainfall.  The
consolidator fuses the loops (Loop 2) and shares the per-month accessor
calls, so the merged program scans the twelve months once instead of three
times.  Run with::

    python examples/weather_analytics.py
"""

from repro import Consolidator, consolidate
from repro.consolidation import check_soundness
from repro.datasets import generate_weather
from repro.lang import (
    Interpreter,
    add,
    arg,
    assign,
    block,
    call,
    gt,
    if_,
    ite_notify,
    le,
    lt,
    program,
    program_to_str,
    var,
    while_,
)


def min_temp_filter(pid, threshold):
    """Cities whose coldest month stays above ``threshold`` (x10 degrees)."""

    return program(
        pid,
        ("row",),
        assign("m", 2),
        assign("mn", call("monthly_avg_temp", arg("row"), 1)),
        while_(
            le(var("m"), 12),
            block(
                assign("t", call("monthly_avg_temp", arg("row"), var("m"))),
                if_(lt(var("t"), var("mn")), assign("mn", var("t"))),
                assign("m", add(var("m"), 1)),
            ),
        ),
        ite_notify(pid, gt(var("mn"), threshold)),
    )


def max_temp_filter(pid, threshold):
    """Cities whose hottest month stays below ``threshold``."""

    return program(
        pid,
        ("row",),
        assign("k", 2),
        assign("mx", call("monthly_avg_temp", arg("row"), 1)),
        while_(
            le(var("k"), 12),
            block(
                assign("u", call("monthly_avg_temp", arg("row"), var("k"))),
                if_(gt(var("u"), var("mx")), assign("mx", var("u"))),
                assign("k", add(var("k"), 1)),
            ),
        ),
        ite_notify(pid, lt(var("mx"), threshold)),
    )


def rainfall_sum_filter(pid, threshold):
    """Cities with more than ``threshold`` mm total rainfall per year."""

    return program(
        pid,
        ("row",),
        assign("j", 1),
        assign("total", 0),
        while_(
            le(var("j"), 12),
            block(
                assign("total", add(var("total"), call("monthly_rainfall", arg("row"), var("j")))),
                assign("j", add(var("j"), 1)),
            ),
        ),
        ite_notify(pid, gt(var("total"), threshold)),
    )


def main() -> None:
    dataset = generate_weather(cities=120)
    team_queries = [
        min_temp_filter("cold_ok", 0),
        max_temp_filter("heat_ok", 85),
        rainfall_sum_filter("wet", 1100),
    ]

    # Show a single fused pair first.
    pairwise = Consolidator(dataset.functions)
    fused = pairwise.consolidate(team_queries[0], team_queries[1])
    print("=== min-temp (+) max-temp, loops fused ===")
    print(program_to_str(fused))
    print(f"\nrules applied: {[r for r in pairwise.trace if r.startswith('Loop')]}")

    # Merge all three and verify + measure.
    merged = consolidate(team_queries, dataset.functions)
    inputs = [{"row": c} for c in dataset.rows]
    report = check_soundness(team_queries, merged, dataset.functions, inputs)
    assert report.ok, report.violations
    print(
        f"\nall three scripts merged: cost {report.sequential_cost} -> "
        f"{report.consolidated_cost} ({report.speedup:.2f}x) over {len(inputs)} cities"
    )

    # Count accessor calls to demonstrate the scan-sharing directly.
    calls = {"n": 0}
    counting = dataset.functions["monthly_avg_temp"]
    original_fn = counting.fn
    object.__setattr__(counting, "fn", lambda c, m: calls.__setitem__("n", calls["n"] + 1) or original_fn(c, m))
    Interpreter(dataset.functions).run(merged, {"row": 0})
    print(f"monthly_avg_temp calls for one city in the merged program: {calls['n']} (24 before fusion)")
    object.__setattr__(counting, "fn", original_fn)


if __name__ == "__main__":
    main()
