"""Query-family machinery (Section 6.2).

A *query family* is a template with a realistic parameter distribution —
"many queries issued by a popular application, configured with different
parameters".  Each draw produces one UDF as an IR :class:`Program` whose
single parameter is the row handle.

Two family shapes exist:

* **expression families** produce a boolean filter expression; the UDF is
  the canonical ``if e then notify true else notify false`` epilogue
  (which exposes the predicate to If 3 cross-embedding);
* **program families** produce a whole statement body (the weather yearly
  aggregations are loops, for example).

``boolean_combination`` builds the paper's "BC" batches: UDFs whose filter
is a conjunction/disjunction of draws from the domain's base families.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..lang.ast import Assign, Call, Expr, Program, Stmt
from ..lang.builder import and_, ite_notify, not_, or_, program, var
from ..lang.visitors import subexpressions, substitute

__all__ = [
    "ExprMaker",
    "ProgramMaker",
    "hoist_calls",
    "expr_to_program",
    "batch_from_expr_family",
    "batch_from_program_family",
    "boolean_combination",
    "mixed_batch",
]

ExprMaker = Callable[[random.Random], Expr]
ProgramMaker = Callable[[str, random.Random], Program]

ROW = "row"


def hoist_calls(predicate: Expr) -> tuple[list[Stmt], Expr]:
    """Materialise each distinct library call into a local variable.

    ``contains(row, 5) == 1 and avg(row) > 40`` becomes::

        t0 := contains(row, 5); t1 := avg(row);  ...  t0 == 1 and t1 > 40

    This is how the paper's UDFs are written (``Airline c = fi.airline``)
    and it is what lets a later query reuse the value: a consumed
    assignment enters the consolidation context, so an identical call in
    another UDF cross-simplifies to the (cheap) variable.
    """

    stmts: list[Stmt] = []
    mapping: dict[Expr, Expr] = {}
    counter = 0
    # Innermost-first so nested calls hoist their arguments' hoists.
    calls: list[Call] = [e for e in subexpressions(predicate) if isinstance(e, Call)]
    for c in reversed(calls):
        if c in mapping:
            continue
        rewritten = substitute(c, {k: v for k, v in mapping.items() if k != c})
        name = f"t{counter}"
        counter += 1
        stmts.append(Assign(name, rewritten))
        mapping[c] = var(name)
    return stmts, substitute(predicate, mapping)


def expr_to_program(pid: str, predicate: Expr) -> Program:
    """Wrap a filter predicate in the canonical UDF shape (hoisted calls)."""

    stmts, rewritten = hoist_calls(predicate)
    return program(pid, (ROW,), *stmts, ite_notify(pid, rewritten))


def batch_from_expr_family(
    make: ExprMaker, n: int, seed: int, prefix: str = "q"
) -> list[Program]:
    """Draw ``n`` UDFs from an expression family (deterministic in seed)."""

    rng = random.Random(seed)
    return [expr_to_program(f"{prefix}{i}", make(rng)) for i in range(n)]


def batch_from_program_family(
    make: ProgramMaker, n: int, seed: int, prefix: str = "q"
) -> list[Program]:
    rng = random.Random(seed)
    return [make(f"{prefix}{i}", rng) for i in range(n)]


def boolean_combination(
    bases: Sequence[ExprMaker], rng: random.Random, max_terms: int = 3
) -> Expr:
    """A random and/or/not combination of 2..max_terms base-family draws."""

    k = rng.randint(2, max_terms)
    terms = [bases[rng.randrange(len(bases))](rng) for _ in range(k)]
    result = terms[0]
    for t in terms[1:]:
        if rng.random() < 0.25:
            t = not_(t)
        result = and_(result, t) if rng.random() < 0.6 else or_(result, t)
    return result


def mixed_batch(
    weighted_makers: Sequence[tuple[int, ProgramMaker]],
    n: int,
    seed: int,
    prefix: str = "q",
) -> list[Program]:
    """Sample ``n`` UDFs from several families with the given weights.

    This is the paper's "Mix": e.g. Weather Q5 samples queries from
    Q1..Q4 with distribution {15, 15, 10, 10}.
    """

    rng = random.Random(seed)
    total = sum(w for w, _ in weighted_makers)
    out: list[Program] = []
    for i in range(n):
        pick = rng.randrange(total)
        acc = 0
        maker = weighted_makers[-1][1]
        for w, m in weighted_makers:
            acc += w
            if pick < acc:
                maker = m
                break
        out.append(maker(f"{prefix}{i}", rng))
    return out
