"""The paper's query families, one module per evaluation domain."""

from . import (
    flight_queries,
    news_queries,
    stock_queries,
    twitter_queries,
    weather_queries,
)
from .families import (
    batch_from_expr_family,
    batch_from_program_family,
    boolean_combination,
    expr_to_program,
    mixed_batch,
)

DOMAIN_QUERIES = {
    "weather": weather_queries,
    "flight": flight_queries,
    "news": news_queries,
    "twitter": twitter_queries,
    "stock": stock_queries,
}
