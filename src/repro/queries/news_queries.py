"""News query families (Section 6.2, News Q1-Q3 and BC).

Q1 filters articles containing a word from a fixed list (after the paper's
WordCount-style tutorial program); Q2/Q3 filter by average / maximum word
length.  "BC" draws boolean combinations of the base families — the batch
used in the Figure 10 scalability sweep.
"""

from __future__ import annotations

import random

from ..datasets.records import Dataset
from ..lang.ast import Expr, Program
from ..lang.builder import arg, call, eq, gt, lt
from .families import (
    ROW,
    batch_from_expr_family,
    boolean_combination,
    expr_to_program,
)

__all__ = ["FAMILY_NAMES", "make_batch"]

FAMILY_NAMES = ["Q1", "Q2", "Q3", "BC"]

_AVG_GRID = [30, 38, 42, 46, 50, 58]  # fixed-point x10 characters
_MAX_GRID = [6, 7, 8, 9, 10]


def _families(dataset: Dataset):
    word_ids = list(dataset.meta["word_ids"].values())

    def q1(rng: random.Random) -> Expr:
        return eq(call("contains_word", arg(ROW), rng.choice(word_ids)), 1)

    def q2(rng: random.Random) -> Expr:
        return gt(call("avg_word_length", arg(ROW)), rng.choice(_AVG_GRID))

    def q3(rng: random.Random) -> Expr:
        return gt(call("max_word_length", arg(ROW)), rng.choice(_MAX_GRID))

    return [q1, q2, q3]


def make_batch(dataset: Dataset, family: str, n: int = 50, seed: int = 0) -> list[Program]:
    base = _families(dataset)
    if family == "Q1":
        return batch_from_expr_family(base[0], n, seed)
    if family == "Q2":
        return batch_from_expr_family(base[1], n, seed)
    if family == "Q3":
        return batch_from_expr_family(base[2], n, seed)
    if family == "BC":
        rng = random.Random(seed)
        return [
            expr_to_program(f"q{i}", boolean_combination(base, rng)) for i in range(n)
        ]
    raise ValueError(f"unknown news family {family!r}")
