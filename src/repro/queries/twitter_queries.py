"""Twitter query families (Section 6.2, Twitter Q1-Q3 and BC)."""

from __future__ import annotations

import random

from ..datasets.records import Dataset
from ..datasets.twitter import SENTIMENTS, TOPICS
from ..lang.ast import Expr, Program
from ..lang.builder import arg, call, ge, gt
from .families import (
    ROW,
    batch_from_expr_family,
    boolean_combination,
    expr_to_program,
)

__all__ = ["FAMILY_NAMES", "make_batch"]

FAMILY_NAMES = ["Q1", "Q2", "Q3", "BC"]

_SMILEY_GRID = [1, 1, 2, 2, 3, 4]
_SCORE_GRID = [40, 50, 60, 70, 80]
# Popular sentiments/topics dominate, as in the paper's examples.
_POPULAR_SENTIMENTS = [0, 0, 0, 1, 2, 5]
_POPULAR_TOPICS = [0, 0, 1, 1, 2, 4]


def _q1(rng: random.Random) -> Expr:
    return ge(call("smiley_count", arg(ROW)), rng.choice(_SMILEY_GRID))


def _q2(rng: random.Random) -> Expr:
    sid = rng.choice(_POPULAR_SENTIMENTS) % len(SENTIMENTS)
    return gt(call("sentiment_score", arg(ROW), sid), rng.choice(_SCORE_GRID))


def _q3(rng: random.Random) -> Expr:
    tid = rng.choice(_POPULAR_TOPICS) % len(TOPICS)
    return gt(call("topic_score", arg(ROW), tid), rng.choice(_SCORE_GRID))


def make_batch(dataset: Dataset, family: str, n: int = 50, seed: int = 0) -> list[Program]:
    if family == "Q1":
        return batch_from_expr_family(_q1, n, seed)
    if family == "Q2":
        return batch_from_expr_family(_q2, n, seed)
    if family == "Q3":
        return batch_from_expr_family(_q3, n, seed)
    if family == "BC":
        rng = random.Random(seed)
        bases = [_q1, _q2, _q3]
        return [
            expr_to_program(f"q{i}", boolean_combination(bases, rng)) for i in range(n)
        ]
    raise ValueError(f"unknown twitter family {family!r}")
