"""Flight query families (Section 6.2, Flight Q1-Q4).

Q1 filters airlines offering a *direct* flight between two cities under a
price bound; Q2 allows *connections* (a more expensive routing
computation); Q3 filters on the *average* price of the pair.  "Mix"
samples with the paper's {15, 20, 15} distribution.

City pairs cluster on popular routes — the price-monitoring app of the
paper's introduction — so many queries in a batch share the same
``(src, dst)`` accessor calls with different price bounds, which is where
cross-simplification (and the implication structure between bounds) pays.
"""

from __future__ import annotations

import random

from ..datasets.records import Dataset
from ..lang.ast import Expr, Program
from ..lang.builder import and_, arg, call, eq, lt, notify, program, if_
from .families import ROW, batch_from_expr_family, expr_to_program, mixed_batch

__all__ = ["FAMILY_NAMES", "make_batch", "MIX_WEIGHTS"]

FAMILY_NAMES = ["Q1", "Q2", "Q3", "Mix"]
MIX_WEIGHTS = (15, 20, 15)

# Popular routes dominate (hub-to-hub traffic).
_POPULAR_PAIRS = [(0, 1), (0, 1), (0, 2), (1, 2), (1, 0), (3, 4), (0, 5)]
_PRICE_GRID = [120, 150, 180, 200, 250, 300, 350]


def _route(rng: random.Random) -> tuple[int, int]:
    if rng.random() < 0.8:
        return rng.choice(_POPULAR_PAIRS)
    src = rng.randrange(10)
    dst = (src + 1 + rng.randrange(9)) % 10
    return src, dst


def _q1_expr(rng: random.Random) -> Expr:
    src, dst = _route(rng)
    price = rng.choice(_PRICE_GRID)
    return and_(
        eq(call("has_direct", arg(ROW), src, dst), 1),
        lt(call("direct_price", arg(ROW), src, dst), price),
    )


def _q2_expr(rng: random.Random) -> Expr:
    src, dst = _route(rng)
    price = rng.choice(_PRICE_GRID)
    return and_(
        eq(call("has_connection", arg(ROW), src, dst), 1),
        lt(call("connecting_price", arg(ROW), src, dst), price),
    )


def _q3_expr(rng: random.Random) -> Expr:
    src, dst = _route(rng)
    price = rng.choice(_PRICE_GRID)
    return lt(call("avg_price", arg(ROW), src, dst), price)


def _maker(expr_fn):
    def make(pid: str, rng: random.Random) -> Program:
        return expr_to_program(pid, expr_fn(rng))

    return make


def make_batch(dataset: Dataset, family: str, n: int = 50, seed: int = 0) -> list[Program]:
    if family == "Q1":
        return batch_from_expr_family(_q1_expr, n, seed)
    if family == "Q2":
        return batch_from_expr_family(_q2_expr, n, seed)
    if family == "Q3":
        return batch_from_expr_family(_q3_expr, n, seed)
    if family == "Mix":
        weighted = list(zip(MIX_WEIGHTS, (_maker(_q1_expr), _maker(_q2_expr), _maker(_q3_expr))))
        return mixed_batch(weighted, n, seed)
    raise ValueError(f"unknown flight family {family!r}")
