"""Stock query families (Section 6.2, Stock Q1-Q3 and BC).

Thresholds are drawn on grids spanning the generated distributions so the
filters have realistic, varied selectivities; prices/deviations are
fixed-point cents (x100) as produced by the dataset.
"""

from __future__ import annotations

import random

from ..datasets.records import Dataset
from ..lang.ast import Expr, Program
from ..lang.builder import arg, call, gt
from .families import (
    ROW,
    batch_from_expr_family,
    boolean_combination,
    expr_to_program,
)

__all__ = ["FAMILY_NAMES", "make_batch"]

FAMILY_NAMES = ["Q1", "Q2", "Q3", "BC"]

_VOLUME_GRID = [500_000, 1_000_000, 5_000_000, 10_000_000, 25_000_000]
_VALUE_GRID = [2_000, 5_000, 10_000, 20_000, 40_000]  # cents
_STDDEV_GRID = [200, 500, 1_000, 2_000, 5_000]  # cents


def _q1(rng: random.Random) -> Expr:
    return gt(call("avg_volume", arg(ROW)), rng.choice(_VOLUME_GRID))


def _q2(rng: random.Random) -> Expr:
    return gt(call("max_stock_value", arg(ROW)), rng.choice(_VALUE_GRID))


def _q3(rng: random.Random) -> Expr:
    return gt(call("stddev", arg(ROW)), rng.choice(_STDDEV_GRID))


def make_batch(dataset: Dataset, family: str, n: int = 50, seed: int = 0) -> list[Program]:
    if family == "Q1":
        return batch_from_expr_family(_q1, n, seed)
    if family == "Q2":
        return batch_from_expr_family(_q2, n, seed)
    if family == "Q3":
        return batch_from_expr_family(_q3, n, seed)
    if family == "BC":
        rng = random.Random(seed)
        bases = [_q1, _q2, _q3]
        return [
            expr_to_program(f"q{i}", boolean_combination(bases, rng)) for i in range(n)
        ]
    raise ValueError(f"unknown stock family {family!r}")
