"""Weather query families (Section 6.2, Weather Q1-Q5).

Q1/Q2 filter cities by a *monthly* average (temperature / rainfall); Q3/Q4
by a *yearly* aggregate computed with an explicit month loop — the shape
that exercises the Loop 2 fusion rule across queries.  Q5 ("Mix") samples
50 queries from Q1..Q4 with the paper's distribution {15, 15, 10, 10}.

Parameter realism: months cluster on a few popular choices (the paper's
motivating scenario is many users of the same app), and thresholds are
drawn from a small grid, so different queries often have *related*
predicates (one implies another) without being identical.
"""

from __future__ import annotations

import random

from ..datasets.records import Dataset
from ..lang.ast import Expr, Program
from ..lang.builder import (
    add,
    arg,
    assign,
    block,
    call,
    gt,
    ite_notify,
    le,
    lt,
    mul,
    program,
    var,
    while_,
)
from .families import (
    ROW,
    batch_from_expr_family,
    batch_from_program_family,
    expr_to_program,
    mixed_batch,
)

__all__ = ["FAMILY_NAMES", "make_batch", "MIX_WEIGHTS"]

FAMILY_NAMES = ["Q1", "Q2", "Q3", "Q4", "Mix"]
MIX_WEIGHTS = (15, 15, 10, 10)

_POPULAR_MONTHS = [1, 1, 6, 7, 7, 7, 12, 12]  # clustered app behaviour
_TEMP_GRID = [-10, 0, 20, 40, 50, 60, 80]  # fixed-point x10 degrees
_RAIN_GRID = [20, 50, 80, 110, 140, 170]


def _q1_expr(rng: random.Random) -> Expr:
    month = rng.choice(_POPULAR_MONTHS)
    threshold = rng.choice(_TEMP_GRID)
    return gt(call("monthly_avg_temp", arg(ROW), month), threshold)


def _q2_expr(rng: random.Random) -> Expr:
    month = rng.choice(_POPULAR_MONTHS)
    threshold = rng.choice(_RAIN_GRID)
    return lt(call("monthly_rainfall", arg(ROW), month), threshold)


def _yearly_loop(pid: str, accessor: str, threshold: int) -> Program:
    """``sum accessor(row, m) for m in 1..12; notify sum > 12*threshold``."""

    return program(
        pid,
        (ROW,),
        assign("s", 0),
        assign("m", 1),
        while_(
            le(var("m"), 12),
            block(
                assign("s", add(var("s"), call(accessor, arg(ROW), var("m")))),
                assign("m", add(var("m"), 1)),
            ),
        ),
        ite_notify(pid, gt(var("s"), 12 * threshold)),
    )


def _q3_program(pid: str, rng: random.Random) -> Program:
    return _yearly_loop(pid, "monthly_avg_temp", rng.choice(_TEMP_GRID))


def _q4_program(pid: str, rng: random.Random) -> Program:
    return _yearly_loop(pid, "monthly_rainfall", rng.choice(_RAIN_GRID))


def _q1_program(pid: str, rng: random.Random) -> Program:
    return expr_to_program(pid, _q1_expr(rng))


def _q2_program(pid: str, rng: random.Random) -> Program:
    return expr_to_program(pid, _q2_expr(rng))


def make_batch(dataset: Dataset, family: str, n: int = 50, seed: int = 0) -> list[Program]:
    """Draw a batch of ``n`` UDFs from the named weather family."""

    if family == "Q1":
        return batch_from_expr_family(_q1_expr, n, seed)
    if family == "Q2":
        return batch_from_expr_family(_q2_expr, n, seed)
    if family == "Q3":
        return batch_from_program_family(_q3_program, n, seed)
    if family == "Q4":
        return batch_from_program_family(_q4_program, n, seed)
    if family == "Mix":
        weighted = list(
            zip(MIX_WEIGHTS, (_q1_program, _q2_program, _q3_program, _q4_program))
        )
        return mixed_batch(weighted, n, seed)
    raise ValueError(f"unknown weather family {family!r}")
