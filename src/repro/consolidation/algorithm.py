"""The consolidation algorithm Ω/Ω′ (Figure 8 of the paper).

:class:`Consolidator` merges two programs over the same input into one
program that broadcasts both results at no greater cost (Definition 1 /
Theorem 1).  The strategy follows the paper line by line:

* assignments and notifications are *simplified and consumed* (Assign/Step
  rules), growing the context ``Ψ`` through strongest postconditions;
* conditionals are resolved by If 1/If 2 when ``Ψ`` decides the test, and
  otherwise dispatched between If 3 (embed the whole second program in both
  branches), the derived If 4 (embed it, but keep the continuation outside)
  and the derived If 5 (only cross-simplify the test) using the ``related``
  heuristic — the simplification-vs-code-size trade-off of Section 4;
* a pair of loops is fused by Loop 2 when the inferred invariant proves the
  loops run the same number of times, by Loop 3 when it proves one runs
  longer, and is otherwise executed sequentially (Step/Seq);
* commutativity (Com) is applied sparingly: when the first program is
  exhausted, or when only the first starts with a loop (lines 5 and 32).

Every rewrite is justified by an SMT validity check against ``Ψ`` and a
static cost comparison, so the output is never costlier than sequential
execution; the :mod:`repro.consolidation.verify` module re-checks this
dynamically on concrete inputs, and the property-based test-suite does so
on random programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.invariants import loop_invariant
from ..analysis.related import call_features, expr_features, is_trivial
from ..lang.ast import Cmp, Var
from ..lang.visitors import stmt_exprs, subexpressions, substitute
from ..analysis.sp import SpEngine
from ..lang.ast import (
    Assign,
    BoolConst,
    Expr,
    FALSE,
    If,
    Notify,
    Program,
    SKIP,
    Skip,
    Stmt,
    TRUE,
    While,
    seq,
    seq_head,
    seq_tail,
)
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..lang.visitors import (
    assigned_vars,
    expr_calls,
    expr_vars,
    notified_pids,
    rename_locals,
    stmt_size,
    stmt_vars,
)
from ..provenance.recorder import NULL_RECORDER
from ..provenance.render import clamp, format_expr, format_formula
from ..smt.solver import Solver
from ..smt.terms import TRUE_F, cone_of_influence, fand, fiff, fnot
from .simplifier import Context, SimplifyStats

__all__ = ["ConsolidationOptions", "Consolidator", "ConsolidationError"]


class ConsolidationError(Exception):
    """The inputs violate a precondition of consolidation."""


def _comparison_vars(e):
    """Bare variables used as comparison operands in ``e``."""

    for sub in subexpressions(e):
        if isinstance(sub, Cmp):
            for side in (sub.left, sub.right):
                if isinstance(side, Var):
                    yield side.name


@dataclass
class ConsolidationOptions:
    """Strategy knobs (the ablation benchmarks sweep these).

    ``if_rule_mode``:
        ``'heuristic'`` — the paper's algorithm (If 3/4/5 via ``related``);
        ``'always_if3'`` — maximal embedding (largest output, most sharing);
        ``'always_if5'`` — minimal embedding (smallest output, least sharing).
    ``enable_loop_rules``:
        When False, loop pairs always execute sequentially (ablation for
        Loop 2/Loop 3).
    ``use_smt``:
        When False, only syntactic value-numbering is used — no entailment
        checks, no If 1/If 2, no loop fusion (ablation for the SMT engine).
    ``max_embed_size``:
        Node-count guard above which If 3/If 4 are downgraded to If 5,
        taming the exponential blow-up the paper's Section 4 remark warns
        about.  Embedding pays when it can kill *expensive* computation in
        a branch; once programs grow past this size, cross-call sharing is
        already captured by the Assign rule (value numbering survives an
        If 5 join), so only cheap test elimination is forgone.
    ``simplify_loop_bodies``:
        Self-simplify loop bodies under their havoc context when a loop is
        stepped over.
    ``static_validate``:
        Run the abstract-interpretation translation validator
        (:func:`repro.analysis.static.validate_consolidation`) over every
        merged pair; a *refuted* certificate raises
        :class:`ConsolidationError` (it would mean an unsound rewrite),
        while ``unknown`` verdicts are recorded and left to the dynamic
        checker.
    """

    if_rule_mode: str = "heuristic"
    enable_loop_rules: bool = True
    use_smt: bool = True
    max_embed_size: int = 160
    simplify_loop_bodies: bool = True
    invariant_engine: str = "probe"  # 'probe' | 'karr' | 'both'
    static_validate: bool = False

    def __post_init__(self) -> None:
        if self.if_rule_mode not in ("heuristic", "always_if3", "always_if5"):
            raise ValueError(f"unknown if_rule_mode {self.if_rule_mode!r}")


class Consolidator:
    """Merges programs pairwise; reusable (and cache-sharing) across pairs."""

    def __init__(
        self,
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        options: ConsolidationOptions | None = None,
        solver: Solver | None = None,
        simplify_stats: SimplifyStats | None = None,
        recorder=None,
    ) -> None:
        self.functions = functions
        self.cost_model = cost_model
        self.options = options or ConsolidationOptions()
        self.solver = solver or Solver()
        self.simplify_stats = simplify_stats or SimplifyStats()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.trace: list[str] = []
        self.last_duration: float = 0.0
        self.last_validation = None
        self.last_derivation = None

    # -- public API ---------------------------------------------------------

    def consolidate(self, p1: Program, p2: Program) -> Program:
        """``Ω``: consolidate two whole programs (Figure 8, line 2)."""

        if p1.params != p2.params:
            raise ConsolidationError(
                f"programs take different inputs: {p1.params} vs {p2.params}"
            )
        pids1, pids2 = notified_pids(p1.body), notified_pids(p2.body)
        if pids1 & pids2:
            raise ConsolidationError(f"programs share notification ids: {pids1 & pids2}")

        started = time.perf_counter()
        self.trace = []
        recorder = self.recorder
        if recorder.enabled:
            recorder.begin_pair(p1.pid, p2.pid)
        # Establish the disjoint-locals precondition mechanically.
        q1 = rename_locals(p1)
        q2 = rename_locals(p2)
        engine = SpEngine(self.functions)
        ctx = Context(
            engine=engine,
            solver=self.solver,
            cost_model=self.cost_model,
            psi=TRUE_F,
            use_smt=self.options.use_smt,
            stats=self.simplify_stats,
            recorder=recorder,
        )
        body = self._omega(ctx, q1.body, q2.body)
        self.last_duration = time.perf_counter() - started
        merged = Program(f"{p1.pid}&{p2.pid}", p1.params, body)
        if recorder.enabled:
            self.last_derivation = recorder.end_pair(merged.pid, self.last_duration)
        self.last_validation = None
        if self.options.static_validate:
            from ..analysis.static import validate_consolidation

            self.last_validation = validate_consolidation(
                [p1, p2],
                merged,
                self.functions,
                self.cost_model,
                engine=engine,
                solver=self.solver,
            )
            if self.last_validation.refuted:
                raise ConsolidationError(
                    f"static validation refuted {merged.pid}: "
                    f"{'; '.join(self.last_validation.details)}"
                )
        return merged

    # -- Ω′ ----------------------------------------------------------------------

    def _omega(self, ctx: Context, s: Stmt, r: Stmt) -> Stmt:
        """``Ω′``: consolidate two statements under context ``ctx``."""

        # Line 4: both consumed.
        if isinstance(s, Skip) and isinstance(r, Skip):
            return SKIP
        # Line 5: first consumed — commute so the second gets simplified.
        if isinstance(s, Skip):
            self.trace.append("Com")
            if self.recorder.enabled:
                self.recorder.leaf("Com", "first program exhausted")
            return self._omega(ctx, r, SKIP)

        head, tail = seq_head(s), seq_tail(s)

        # Line 7: Assign rule — simplify, emit, absorb into the context.
        if isinstance(head, Assign):
            self.trace.append("Assign")
            rhs = ctx.simplify_for_sort(head.expr)
            if self.recorder.enabled:
                self.recorder.leaf("Assign", f"{head.var} := {format_expr(rhs)}")
                self._record_rewrite(ctx, "assign-rhs", head.expr, rhs)
            ctx.record_assign(head.var, rhs)
            rest = self._omega(ctx, tail, r)
            return seq(Assign(head.var, rhs), rest)

        # Line 8: Step over a notification (payload still cross-simplifies).
        if isinstance(head, Notify):
            self.trace.append("Step")
            payload = ctx.simplify_bool(head.expr)
            if self.recorder.enabled:
                self.recorder.leaf(
                    "Step", f"notify {head.pid} {format_expr(payload)}"
                )
                self._record_rewrite(ctx, "notify-payload", head.expr, payload)
            rest = self._omega(ctx, tail, r)
            return seq(Notify(head.pid, payload), rest)

        # Lines 9-18: conditionals.
        if isinstance(head, If):
            return self._consolidate_if(ctx, head, tail, r)

        # Lines 19-32: loops.
        if isinstance(head, While):
            return self._consolidate_while(ctx, head, tail, r)

        raise ConsolidationError(f"unhandled statement {head!r}")

    # -- conditionals --------------------------------------------------------------

    def _record_rewrite(self, ctx: Context, site: str, before: Expr, after: Expr) -> None:
        """Record one cross-simplification (recorder known to be enabled)."""

        if after == before:
            return
        self.recorder.rewrite(
            site,
            format_expr(before),
            format_expr(after),
            ctx.cost(before),
            ctx.cost(after),
        )

    def _consolidate_if(self, ctx: Context, head: If, cont: Stmt, other: Stmt) -> Stmt:
        cond = head.cond
        recorder = self.recorder

        # If 1: the context proves the test — drop it and the dead branch.
        if ctx.entails_expr(cond):
            self.trace.append("If1")
            if recorder.enabled:
                recorder.leaf("If1", f"Ψ proves {format_expr(cond)}")
            ctx.psi = ctx.assume(cond)
            ctx.observe(cond)
            return self._omega(ctx, seq(head.then, cont), other)

        # If 2: the context refutes the test.
        if ctx.entails_expr(cond, negate=True):
            self.trace.append("If2")
            if recorder.enabled:
                recorder.leaf("If2", f"Ψ refutes {format_expr(cond)}")
            ctx.psi = ctx.assume(cond, negate=True)
            ctx.observe(cond, negate=True)
            return self._omega(ctx, seq(head.orelse, cont), other)

        cond2 = ctx.simplify_bool(cond)
        if cond2 == TRUE:
            self.trace.append("If1")
            if recorder.enabled:
                recorder.leaf("If1", f"test simplified to true: {format_expr(cond)}")
            return self._omega(ctx.assuming(cond), seq(head.then, cont), other)
        if cond2 == FALSE:
            self.trace.append("If2")
            if recorder.enabled:
                recorder.leaf("If2", f"test simplified to false: {format_expr(cond)}")
            return self._omega(
                ctx.assuming(cond, negate=True), seq(head.orelse, cont), other
            )

        # Rule selection: If 3 vs the derived If 4 / If 5 (lines 14-18).
        mode = self.options.if_rule_mode
        if mode == "always_if3":
            use_if3, use_if4 = True, False
        elif mode == "always_if5":
            use_if3, use_if4 = False, False
        else:
            rel_cond = self._related(ctx, cond, other) if not isinstance(other, Skip) else False
            rel_cont = self._related(ctx, cont, other) if not isinstance(other, Skip) else False
            if recorder.enabled and not isinstance(other, Skip):
                recorder.heuristic(
                    "related",
                    f"test {format_expr(cond)} vs other program",
                    rel_cond,
                )
                recorder.heuristic("related", "continuation vs other program", rel_cont)
            # An empty continuation makes If 3 and If 4 coincide; report the
            # canonical (If 3) rule in that case.
            use_if3 = rel_cond and (rel_cont or isinstance(cont, Skip))
            use_if4 = rel_cond and not use_if3
        embedded_size = stmt_size(cont) + stmt_size(other)
        if use_if3 and embedded_size > self.options.max_embed_size:
            if recorder.enabled:
                recorder.heuristic(
                    "embed-guard",
                    f"If3 downgraded: embedded size {embedded_size} > "
                    f"max_embed_size {self.options.max_embed_size}",
                    False,
                )
            use_if3, use_if4 = False, True
        if use_if4 and stmt_size(other) > self.options.max_embed_size:
            if recorder.enabled:
                recorder.heuristic(
                    "embed-guard",
                    f"If4 downgraded: other size {stmt_size(other)} > "
                    f"max_embed_size {self.options.max_embed_size}",
                    False,
                )
            use_if4 = False

        then_ctx = ctx.assuming(cond)
        else_ctx = ctx.assuming(cond, negate=True)

        if use_if3:
            # If 3: embed the remainder of *both* programs in the branches.
            self.trace.append("If3")
            with recorder.rule("If3", f"if ({format_expr(cond2)}) — embed both"):
                if recorder.enabled:
                    self._record_rewrite(ctx, "if-test", cond, cond2)
                s1 = self._omega(then_ctx, seq(head.then, cont), other)
                s2 = self._omega(else_ctx, seq(head.orelse, cont), other)
            return self._make_if(cond2, s1, s2)

        if use_if4:
            # If 4 (derived): embed the other program, keep our continuation out.
            self.trace.append("If4")
            with recorder.rule("If4", f"if ({format_expr(cond2)}) — embed other"):
                if recorder.enabled:
                    self._record_rewrite(ctx, "if-test", cond, cond2)
                s1 = self._omega(then_ctx, head.then, other)
                s2 = self._omega(else_ctx, head.orelse, other)
            self._join_after(ctx, If(cond, head.then, head.orelse), other)
            rest = self._omega(ctx, cont, SKIP)
            return seq(self._make_if(cond2, s1, s2), rest)

        # If 5 (derived): simplify the test, keep everything else linear.
        self.trace.append("If5")
        with recorder.rule("If5", f"if ({format_expr(cond2)}) — test only"):
            if recorder.enabled:
                self._record_rewrite(ctx, "if-test", cond, cond2)
            s1 = self._omega(then_ctx, head.then, SKIP)
            s2 = self._omega(else_ctx, head.orelse, SKIP)
        self._join_after(ctx, If(cond, head.then, head.orelse), SKIP)
        rest = self._omega(ctx, cont, other)
        return seq(self._make_if(cond2, s1, s2), rest)

    @staticmethod
    def _make_if(cond: Expr, then: Stmt, orelse: Stmt) -> Stmt:
        """Build a conditional, eliding the test when both arms agree.

        ``S (+)e S`` is equivalent to ``S`` for our pure, total conditions,
        and strictly cheaper (the test and branch cost disappear) — this is
        how the dead ``price`` test vanishes from Example 1's else arm.
        """

        if then == orelse:
            return then
        return If(cond, then, orelse)

    def _expand_defs(self, ctx: Context, e: Expr, depth: int = 4) -> Expr:
        """Substitute consumed definitions into ``e``, transitively.

        ``q1.t -> q0.t -> has_direct(@row, 0, 1)`` must expand all the way
        for the sharing signal to surface after cross-rewrites chained
        variables together.
        """

        for _ in range(depth):
            mapping = {
                Var(n): d for n, d in ctx.defs.items() if n in expr_vars(e)
            }
            if not mapping:
                return e
            expanded = substitute(e, mapping)
            if expanded == e:
                return e
            e = expanded
        return e

    def _features(self, ctx: Context, x: Expr | Stmt) -> tuple[set, set[Expr], set[str]]:
        """``related`` features of ``x``, expanded through consumed definitions.

        After ``name := toLower(airline(@fi))`` has been consumed, a later
        test on ``name`` must still count as related to another program that
        calls ``toLower`` — the definition table restores that visibility.
        Returns (call signatures, comparison subjects, bare-var subjects).
        """

        exprs = [x] if isinstance(x, Expr) else list(stmt_exprs(x))
        expanded = [self._expand_defs(ctx, e) for e in exprs]
        calls, subjects = expr_features(x)
        for e in expanded:
            more_calls, more_subjects = expr_features(e)
            calls |= more_calls
            subjects |= more_subjects
        var_subjects: set[str] = set()
        for e in exprs:
            for sub in _comparison_vars(e):
                var_subjects.add(sub)
        return calls, subjects, var_subjects

    def _related(self, ctx: Context, a: Expr | Stmt, b: Expr | Stmt) -> bool:
        calls_a, subjects_a, vars_a = self._features(ctx, a)
        calls_b, subjects_b, vars_b = self._features(ctx, b)
        if (calls_a & calls_b) or (subjects_a & subjects_b):
            return True
        # Variables compared against bounds on both sides may be equal only
        # semantically (an invariant proved them so); probe a few pairs.
        if ctx.use_smt and vars_a and vars_b:
            pairs = [
                (u, v)
                for u in sorted(vars_a)
                for v in sorted(vars_b)
                if u != v
            ][:6]
            for u, v in pairs:
                if ctx.provably_equal(Var(u), Var(v)):
                    return True
        return False

    def _join_after(self, ctx: Context, executed: Stmt, absorbed: Stmt) -> None:
        """Advance ``ctx`` past statements whose effect happened in branches.

        The precise join would be the *disjunction* of the branch
        postconditions, but that doubles ``Ψ`` at every conditional and the
        solver cost compounds exponentially along a consolidated batch.  We
        havoc the branch-written variables instead — a sound weakening that
        keeps ``Ψ`` conjunctive and linear-sized; branch-local facts were
        already exploited while the branches themselves were consolidated.
        """

        killed = assigned_vars(executed)
        if not isinstance(absorbed, Skip):
            killed |= assigned_vars(absorbed)
        ctx.psi = ctx.engine.havoc(ctx.psi, killed)
        ctx.kill_vars(killed)

    # -- loops ------------------------------------------------------------------------

    def _consolidate_while(self, ctx: Context, head: While, cont: Stmt, other: Stmt) -> Stmt:
        other_head = seq_head(other)
        other_tail = seq_tail(other)

        if isinstance(other_head, While):
            if self.options.enable_loop_rules and ctx.use_smt:
                fused = self._try_loop_fusion(ctx, head, cont, other_head, other_tail)
                if fused is not None:
                    return fused
            # Lines 29-31: no provable relation (or loop rules disabled) —
            # run the loops sequentially.
            self.trace.append("Seq")
            if self.recorder.enabled:
                self.recorder.leaf("Seq", "loop pair not fusible — sequential")
            emitted = self._emit_loop(ctx, head)
            rest = self._omega(ctx, cont, other)
            return seq(emitted, rest)

        if isinstance(other, Skip):
            emitted = self._emit_loop(ctx, head)
            rest = self._omega(ctx, cont, SKIP)
            return seq(emitted, rest)

        # Line 32: only the first program starts with a loop — commute so the
        # other side is absorbed into the context first.
        self.trace.append("Com")
        if self.recorder.enabled:
            self.recorder.leaf("Com", "only first program starts with a loop")
        return self._omega(ctx, other, seq(head, cont))

    def _try_loop_fusion(
        self,
        ctx: Context,
        w1: While,
        cont1: Stmt,
        w2: While,
        cont2: Stmt,
    ) -> Stmt | None:
        """Loop 2 / Loop 3 (Figure 7); None when no relation is provable."""

        e1, s1 = w1.cond, w1.body
        e2, s2 = w2.cond, w2.body
        merged_body = seq(s1, s2)
        psi1 = loop_invariant(
            ctx.engine,
            ctx.solver,
            ctx.psi,
            [e1, e2],
            merged_body,
            mode=self.options.invariant_engine,
        )
        enc1 = ctx.engine.encode_bool(e1)
        enc2 = ctx.engine.encode_bool(e2)
        if enc1 is None or enc2 is None:
            return None

        recorder = self.recorder

        def proved(kind: str, psi_f, goal) -> bool:
            """One fusion goal against the solver, recorded when enabled."""

            if not recorder.enabled:
                return ctx.solver.entails(cone_of_influence(psi_f, goal), goal)
            started = time.perf_counter()
            verdict = ctx.solver.entails(cone_of_influence(psi_f, goal), goal)
            recorder.entailment(
                kind,
                clamp(format_formula(psi_f)),
                clamp(format_formula(goal)),
                verdict,
                time.perf_counter() - started,
                "smt",
            )
            return verdict

        # The env mirrors every direct Ψ replacement below: facts about the
        # fused body's variables no longer hold mid-loop, so they are
        # forgotten before the exit/body guard is observed.
        fused_vars = assigned_vars(merged_body)

        # Loop 2: Ψ1 |= e1 <-> e2 — both loops run the same number of times.
        iff_goal = fiff(enc1, enc2)
        if proved("loop2-iff", psi1, iff_goal):
            self.trace.append("Loop2")
            with recorder.rule("Loop2", f"while ({format_expr(e1)}) — fused bodies"):
                body_ctx = ctx.branch(fand(psi1, enc1))
                body_ctx.bindings = {}
                body_ctx.forget(fused_vars)
                body_ctx.observe(e1)
                body = self._omega(body_ctx, s1, s2)
            ctx.psi = fand(psi1, fnot(enc1))
            ctx.bindings = {}
            ctx.forget(fused_vars)
            ctx.observe(e1, negate=True)
            rest = self._omega(ctx, cont1, cont2)
            return seq(While(e1, body), rest)

        exit_ctx = fand(psi1, fnot(fand(enc1, enc2)))

        # Loop 3: the first loop provably runs at least as long.
        if proved("loop3-exit", exit_ctx, enc1):
            self.trace.append("Loop3")
            with recorder.rule("Loop3", f"while ({format_expr(e2)}) — first runs longer"):
                body_ctx = ctx.branch(fand(psi1, enc2))
                body_ctx.bindings = {}
                body_ctx.forget(fused_vars)
                body_ctx.observe(e2)
                body = self._omega(body_ctx, s1, s2)
            ctx.psi = fand(psi1, fnot(enc2))
            ctx.bindings = {}
            ctx.forget(fused_vars)
            ctx.observe(e2, negate=True)
            remainder = seq(s1, While(e1, s1), cont1)
            rest = self._omega(ctx, remainder, cont2)
            return seq(While(e2, body), rest)

        # Loop 3 with the arguments swapped (implicit Com, line 27-28).
        if proved("loop3-exit-swapped", exit_ctx, enc2):
            self.trace.append("Loop3")
            with recorder.rule("Loop3", f"while ({format_expr(e1)}) — second runs longer"):
                body_ctx = ctx.branch(fand(psi1, enc1))
                body_ctx.bindings = {}
                body_ctx.forget(fused_vars)
                body_ctx.observe(e1)
                body = self._omega(body_ctx, s2, s1)
            ctx.psi = fand(psi1, fnot(enc1))
            ctx.bindings = {}
            ctx.forget(fused_vars)
            ctx.observe(e1, negate=True)
            remainder = seq(s2, While(e2, s2), cont2)
            rest = self._omega(ctx, remainder, cont1)
            return seq(While(e1, body), rest)

        return None

    def _emit_loop(self, ctx: Context, w: While) -> Stmt:
        """Step over one loop, self-simplifying it under its havoc context.

        The guard and body may only be rewritten under a context that holds
        at *every* iteration entry: the entry context with all body-written
        variables havocked (plus the guard itself, for the body).
        """

        body_vars = assigned_vars(w.body)

        # A guard refuted by the *entry* context means the loop never runs
        # at all (its body cannot have executed first), so the whole loop —
        # including the first test — disappears (Loop-expand + If 2).
        if ctx.entails_expr(w.cond, negate=True):
            self.trace.append("LoopDrop")
            if self.recorder.enabled:
                self.recorder.leaf(
                    "LoopDrop", f"Ψ refutes guard {format_expr(w.cond)}"
                )
            return SKIP

        havocked = ctx.engine.havoc(ctx.psi, body_vars)
        inv_ctx = ctx.branch(havocked)
        inv_ctx.bindings = {}
        inv_ctx.forget(body_vars)
        cond2 = inv_ctx.simplify_bool(w.cond)

        if cond2 == FALSE:
            # False at every reachable loop head (proved under the havoc
            # context, which the entry state satisfies too).
            self.trace.append("LoopDrop")
            if self.recorder.enabled:
                self.recorder.leaf(
                    "LoopDrop",
                    f"guard false under havoc context: {format_expr(w.cond)}",
                )
            return SKIP

        if self.options.simplify_loop_bodies:
            body_ctx = inv_ctx.assuming(w.cond)
            body_ctx.bindings = {}
            body = self._omega(body_ctx, w.body, SKIP)
        else:
            body = w.body

        self.trace.append("Step")
        if self.recorder.enabled:
            guard = cond2 if cond2 != TRUE else w.cond
            self.recorder.leaf("Step", f"while ({format_expr(guard)})")
            self._record_rewrite(inv_ctx, "loop-guard", w.cond, guard)
        ctx.psi = ctx.engine.post(ctx.psi, w)
        ctx.kill_vars(body_vars)
        return While(cond2 if cond2 != TRUE else w.cond, body)
