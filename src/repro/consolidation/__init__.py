"""Program consolidation: the paper's primary contribution.

* :mod:`repro.consolidation.simplifier` — cross-simplification (Figure 3),
* :mod:`repro.consolidation.algorithm` — the Ω/Ω′ algorithm (Figures 5/7/8),
* :mod:`repro.consolidation.divide_conquer` — merging n UDFs pairwise,
* :mod:`repro.consolidation.verify` — dynamic Theorem 1 checking.
"""

from .algorithm import ConsolidationError, ConsolidationOptions, Consolidator
from .divide_conquer import ConsolidationReport, consolidate_all
from .simplifier import Context, fold_expr, ir_from_linear, ir_linear
from .verify import SoundnessReport, SoundnessViolation, check_soundness
