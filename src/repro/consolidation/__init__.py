"""Program consolidation: the paper's primary contribution.

* :mod:`repro.consolidation.simplifier` — cross-simplification (Figure 3),
* :mod:`repro.consolidation.algorithm` — the Ω/Ω′ algorithm (Figures 5/7/8),
* :mod:`repro.consolidation.divide_conquer` — merging n UDFs pairwise,
* :mod:`repro.consolidation.incremental` — patching the merge tree on
  add/remove of a single query (the service's re-consolidation engine),
* :mod:`repro.consolidation.verify` — dynamic Theorem 1 checking.
"""

from .algorithm import ConsolidationError, ConsolidationOptions, Consolidator
from .divide_conquer import ConsolidationReport, MergeNode, consolidate_all
from .incremental import (
    PatchError,
    PatchResult,
    add_query,
    merge_pair,
    rebuild,
    remove_query,
)
from .simplifier import Context, fold_expr, ir_from_linear, ir_linear
from .verify import SoundnessReport, SoundnessViolation, check_soundness
