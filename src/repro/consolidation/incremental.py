"""Incremental re-consolidation: patching the divide-and-conquer merge tree.

The batch driver (:func:`repro.consolidation.consolidate_all`) merges *n*
UDFs with *n − 1* pair consolidations.  When a long-running service adds
or removes a single query, re-running the whole batch wastes almost all
of that work: every subtree not containing the changed leaf is already a
correct, cost-bounded consolidation of its own leaves.  This module
patches the :class:`~repro.consolidation.divide_conquer.MergeNode` tree
instead:

* **add** — the new query is merged against the current root with one
  pair consolidation, producing a new root whose left subtree is the old
  tree (shared, not copied).  Repeated adds grow a spine; callers bound
  the degeneracy with a depth policy and rebuild when it trips.
* **remove** — the leaf is unlinked (its parent collapses into the
  sibling subtree) and only the internal nodes on the leaf-to-root path
  are re-merged, reusing every off-path intermediate program: ~log₂ *n*
  pair merges instead of *n − 1*.

Each patched pair merge can run the static translation validator
(:mod:`repro.analysis.static.validate`); a refuted certificate — or any
exception escaping the merge — raises :class:`PatchError`, and the caller
is expected to fall back to a full re-consolidation, recording the
fallback.  Unlike the batch driver, a patch never silently degrades to
the sequential composition: the service wants either a certified patch or
an honest rebuild.

Pair merges consult the batch driver's fault-injection seam
(``divide_conquer.FAULT_HOOK``, site ``consolidate.pair``) so the
existing fault battery exercises the fallback ladder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import Program
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..provenance.recorder import DerivationRecorder
from ..smt.solver import Solver
from ..telemetry import NULL_TELEMETRY
from .algorithm import ConsolidationOptions, Consolidator
from . import divide_conquer
from .divide_conquer import ConsolidationReport, MergeNode, consolidate_all

__all__ = [
    "PatchError",
    "PatchResult",
    "merge_pair",
    "add_query",
    "remove_query",
    "rebuild",
]


class PatchError(Exception):
    """A tree patch could not be completed (or certified) safely.

    Raised when a patched pair merge throws, or when the static validator
    refutes its certificate.  Callers fall back to a full
    re-consolidation; the message becomes the recorded fallback reason.
    """


@dataclass
class PatchResult:
    """What one incremental tree mutation did.

    ``pair_merges`` counts the pair consolidations the patch actually ran
    (the quantity a full re-consolidation would have spent *n − 1* on);
    ``derivations`` holds one provenance tree per merge when recording was
    requested, so the claim is auditable from provenance records alone.
    ``tree`` is ``None`` only when the last query was removed.
    """

    tree: Optional[MergeNode]
    action: str  # "add" | "remove" | "rebuild"
    pair_merges: int = 0
    seconds: float = 0.0
    validations: list = field(default_factory=list)
    derivations: list = field(default_factory=list)
    patched_pids: list[str] = field(default_factory=list)
    fallback: Optional[str] = None

    @property
    def program(self) -> Optional[Program]:
        return self.tree.program if self.tree is not None else None


def merge_pair(
    a: Program,
    b: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    solver: Solver | None = None,
    recorder: DerivationRecorder | None = None,
    telemetry=NULL_TELEMETRY,
) -> tuple[Program, object, object]:
    """Consolidate one pair; returns (merged, validation, derivation).

    Unlike the batch driver's per-pair wrapper this *raises* on failure —
    patching callers must fall back to a full rebuild, not quietly keep
    the pair sequential.
    """

    if divide_conquer.FAULT_HOOK is not None:
        divide_conquer.FAULT_HOOK("consolidate.pair", (a, b))
    worker = Consolidator(
        functions,
        cost_model,
        options or ConsolidationOptions(),
        solver or Solver(telemetry=telemetry),
        recorder=recorder,
    )
    with telemetry.span("consolidate.pair", left=a.pid, right=b.pid, patch=True):
        merged = worker.consolidate(a, b)
    return merged, worker.last_validation, worker.last_derivation


def _patch_merge(
    a: Program,
    b: Program,
    functions: FunctionTable,
    cost_model: CostModel,
    options: ConsolidationOptions,
    result: PatchResult,
    solver: Solver,
    record: bool,
    telemetry,
) -> Program:
    """One certified pair merge inside a patch, folded into ``result``."""

    recorder = DerivationRecorder() if record else None
    try:
        merged, validation, derivation = merge_pair(
            a, b, functions, cost_model, options, solver, recorder, telemetry
        )
    except Exception as exc:  # noqa: BLE001 - surfaced as a typed patch failure
        raise PatchError(f"pair merge {a.pid} ⊕ {b.pid} failed: "
                         f"{type(exc).__name__}: {exc}") from exc
    result.pair_merges += 1
    if validation is not None:
        result.validations.append(validation)
        if not validation.certified:
            raise PatchError(
                f"pair merge {a.pid} ⊕ {b.pid} refuted by the static validator"
            )
    if derivation is not None:
        result.derivations.append(derivation)
    result.patched_pids.append(merged.pid)
    return merged


def add_query(
    tree: Optional[MergeNode],
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    *,
    static_validate: bool = True,
    record: bool = True,
    telemetry=NULL_TELEMETRY,
) -> PatchResult:
    """Graft one new query onto the merge tree with a single pair merge.

    The old tree becomes the left child of a fresh root — every existing
    intermediate program is reused untouched.  Raises :class:`PatchError`
    when the merge fails or its validation is refuted; the caller should
    then fall back to :func:`rebuild`.
    """

    started = time.perf_counter()
    result = PatchResult(tree=tree, action="add")
    leaf = MergeNode(program)
    if tree is None:
        result.tree = leaf
        result.seconds = time.perf_counter() - started
        return result
    options = _options_with_validation(options, static_validate)
    solver = Solver(telemetry=telemetry)
    merged = _patch_merge(
        tree.program,
        program,
        functions,
        cost_model,
        options,
        result,
        solver,
        record,
        telemetry,
    )
    result.tree = MergeNode(merged, tree, leaf)
    result.seconds = time.perf_counter() - started
    return result


def remove_query(
    tree: MergeNode,
    pid: str,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    *,
    static_validate: bool = True,
    record: bool = True,
    telemetry=NULL_TELEMETRY,
) -> PatchResult:
    """Unlink the leaf for ``pid`` and re-merge only its root path.

    The leaf's parent collapses into the sibling subtree; each ancestor
    above it is re-consolidated from its (one new, one untouched)
    children, bottom-up.  Raises :class:`ValueError` when ``pid`` is not a
    leaf of ``tree`` and :class:`PatchError` when a path merge fails.
    """

    started = time.perf_counter()
    path = _path_to_leaf(tree, pid)
    if path is None:
        raise ValueError(f"query {pid!r} is not a leaf of the merge tree")
    result = PatchResult(tree=tree, action="remove")
    if len(path) == 1:
        # The tree was a single leaf; removing it empties the registry.
        result.tree = None
        result.seconds = time.perf_counter() - started
        return result

    options = _options_with_validation(options, static_validate)
    solver = Solver(telemetry=telemetry)
    parent = path[-2]
    sibling = parent.right if parent.left is path[-1] else parent.left
    # ``sibling`` takes the parent's place; every ancestor above is then
    # re-merged bottom-up with its untouched child.
    result.tree = _rebuild_path(
        path, sibling, functions, cost_model, options, result, solver, record, telemetry
    )
    result.seconds = time.perf_counter() - started
    return result


def _rebuild_path(
    path: list[MergeNode],
    replacement: Optional[MergeNode],
    functions: FunctionTable,
    cost_model: CostModel,
    options: ConsolidationOptions,
    result: PatchResult,
    solver: Solver,
    record: bool,
    telemetry,
) -> MergeNode:
    """Rebuild the ancestors of ``path[-1]`` with ``replacement`` spliced in.

    ``path`` runs root → … → parent → leaf.  ``replacement`` takes the
    *parent*'s place (the sibling subtree after a removal); every ancestor
    above is re-merged from its surviving child and the patched subtree.
    """

    patched = replacement
    swapped = path[-2]  # the node ``patched`` currently stands in for
    for ancestor in reversed(path[:-2]):
        other = ancestor.right if ancestor.left is swapped else ancestor.left
        left, right = (
            (patched, other) if ancestor.left is swapped else (other, patched)
        )
        merged = _patch_merge(
            left.program,
            right.program,
            functions,
            cost_model,
            options,
            result,
            solver,
            record,
            telemetry,
        )
        patched = MergeNode(merged, left, right)
        swapped = ancestor
    return patched


def rebuild(
    programs: list[Program],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    *,
    config=None,
    provenance: bool = True,
    telemetry=None,
) -> tuple[MergeNode, ConsolidationReport]:
    """Full re-consolidation, keeping the tree for future patches."""

    report = consolidate_all(
        programs,
        functions,
        cost_model,
        options,
        config=config,
        provenance=provenance,
        telemetry=telemetry,
        keep_tree=True,
    )
    return report.merge_tree, report


def _options_with_validation(
    options: ConsolidationOptions | None, static_validate: bool
) -> ConsolidationOptions:
    options = options or ConsolidationOptions()
    if static_validate and not options.static_validate:
        from dataclasses import replace

        options = replace(options, static_validate=True)
    return options


def _path_to_leaf(tree: MergeNode, pid: str) -> Optional[list[MergeNode]]:
    """Root-to-leaf node path for the leaf whose program is ``pid``."""

    if tree.is_leaf:
        return [tree] if tree.program.pid == pid else None
    for child in (tree.left, tree.right):
        if child is None:
            continue
        sub = _path_to_leaf(child, pid)
        if sub is not None:
            return [tree] + sub
    return None
