"""Cross-simplification of expressions (Figure 3 of the paper).

Implements the judgments ``Ψ ⊢i e : e'`` (Int rule) and ``Ψ ⊢b e : e'``
(Bool 1–5) together with ``fold``:

* **Bool 1/2** — if ``Ψ |= e`` the expression collapses to ``true``; if
  ``Ψ |= ¬e`` to ``false``.  These are direct SMT validity queries.
* **Int** — an integer expression may be replaced by any provably equal,
  no-more-expensive expression.  Candidates come from a *value-numbering
  table* maintained by the consolidation algorithm as it consumes
  assignments: when ``x := f(α)+1`` is consumed, ``f(α)+1 ↦ x`` (and
  ``f(α) ↦ x-1`` implicitly, via the linear-decomposition rewrite) become
  candidates for later occurrences.  Every accepted rewrite is re-verified
  against ``Ψ`` by the solver (the table is only a candidate generator), so
  soundness never depends on table bookkeeping.
* **Bool 3/4/5** — comparisons recurse into their integer operands;
  connectives recurse and are re-combined with constant folding.

The cost side condition ``cost(e') <= cost(e)`` is enforced with the static
cost function, exactly as the (Int) rule demands.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable

from ..analysis.costmodel import expr_cost
from ..analysis.sp import SpEngine
from ..analysis.static.values import StaticEnv
from ..lang.ast import (
    Arg,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    FALSE,
    IntConst,
    Not,
    StrConst,
    TRUE,
    Var,
)
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.visitors import expr_vars, subexpressions
from ..provenance.recorder import NULL_RECORDER
from ..provenance.render import clamp, format_expr, format_formula
from ..smt.solver import Solver
from ..smt.terms import Formula, TRUE_F, cone_of_influence, eq_f, fiff, fnot
from ..lang.functions import BOOL

__all__ = ["Context", "SimplifyStats", "fold_expr", "ir_linear", "ir_from_linear"]

_MAX_CALL_CANDIDATES = 8
_MAX_RECENT_ASSIGNS = 12
_MAX_RECENT_PROBES = 4
_PROBE_COST_THRESHOLD = 8


def _ground_args_compatible(a: "Call", b: "Call") -> bool:
    """Whether two same-function calls could plausibly return equal values.

    Positions where both arguments are ground literals must agree; a
    mismatch there means the solver could never prove equality anyway (and
    in practice the values differ), so the probe is skipped for free.
    """

    if a.func != b.func or len(a.args) != len(b.args):
        return False
    for x, y in zip(a.args, b.args):
        x_ground = isinstance(x, (IntConst, StrConst, BoolConst))
        y_ground = isinstance(y, (IntConst, StrConst, BoolConst))
        if x_ground and y_ground and x != y:
            return False
    return True


# ---------------------------------------------------------------------------
# IR-level linear decomposition (used for derived rewrites like f(a)-1 -> x-2)
# ---------------------------------------------------------------------------


def ir_linear(e: Expr) -> tuple[int, dict[Expr, int]] | None:
    """Decompose an integer expression into ``const + sum(coef * atom)``.

    Atoms are variables, arguments and calls.  Returns None when the
    expression contains non-linear structure we cannot decompose (e.g. a
    product of two non-constant subexpressions).
    """

    if isinstance(e, IntConst):
        return e.value, {}
    if isinstance(e, (Var, Arg, Call)):
        return 0, {e: 1}
    if isinstance(e, BinOp):
        left = ir_linear(e.left)
        right = ir_linear(e.right)
        if left is None or right is None:
            return None
        cl, ml = left
        cr, mr = right
        if e.op in ("+", "-"):
            sign = 1 if e.op == "+" else -1
            merged = dict(ml)
            for atom, coef in mr.items():
                merged[atom] = merged.get(atom, 0) + sign * coef
            return cl + sign * cr, {a: c for a, c in merged.items() if c != 0}
        # Multiplication: linear only when one side is constant.
        if not ml:
            return cl * cr, {a: cl * c for a, c in mr.items() if cl * c != 0}
        if not mr:
            return cr * cl, {a: cr * c for a, c in ml.items() if cr * c != 0}
        return None
    return None


def ir_from_linear(const: int, coeffs: dict[Expr, int]) -> Expr:
    """Rebuild an IR expression from a linear decomposition (canonical order)."""

    result: Expr | None = None
    for atom, coef in sorted(coeffs.items(), key=lambda p: repr(p[0])):
        if coef == 0:
            continue
        piece: Expr = atom if abs(coef) == 1 else BinOp("*", IntConst(abs(coef)), atom)
        if result is None:
            result = piece if coef > 0 else BinOp("-", IntConst(0), piece)
        else:
            result = BinOp("+" if coef > 0 else "-", result, piece)
    if result is None:
        return IntConst(const)
    if const > 0:
        return BinOp("+", result, IntConst(const))
    if const < 0:
        return BinOp("-", result, IntConst(-const))
    return result


# ---------------------------------------------------------------------------
# Constant folding (the paper's ``fold``)
# ---------------------------------------------------------------------------


def fold_expr(e: Expr) -> Expr:
    """One-level constant folding used by Bool 4/5 (and arithmetic peepholes)."""

    if isinstance(e, BoolOp):
        l, r = e.left, e.right
        if e.op == "and":
            if l == TRUE:
                return r
            if r == TRUE:
                return l
            if l == FALSE or r == FALSE:
                return FALSE
        else:
            if l == FALSE:
                return r
            if r == FALSE:
                return l
            if l == TRUE or r == TRUE:
                return TRUE
        return e
    if isinstance(e, Not):
        if e.operand == TRUE:
            return FALSE
        if e.operand == FALSE:
            return TRUE
        if isinstance(e.operand, Not):
            return e.operand.operand
        return e
    if isinstance(e, BinOp):
        l, r = e.left, e.right
        if isinstance(l, IntConst) and isinstance(r, IntConst):
            if e.op == "+":
                return IntConst(l.value + r.value)
            if e.op == "-":
                return IntConst(l.value - r.value)
            return IntConst(l.value * r.value)
        if e.op == "+" and r == IntConst(0):
            return l
        if e.op == "+" and l == IntConst(0):
            return r
        if e.op == "-" and r == IntConst(0):
            return l
        if e.op == "*" and (l == IntConst(0) or r == IntConst(0)):
            return IntConst(0)
        if e.op == "*" and l == IntConst(1):
            return r
        if e.op == "*" and r == IntConst(1):
            return l
        return e
    if isinstance(e, Cmp):
        l, r = e.left, e.right
        if isinstance(l, IntConst) and isinstance(r, IntConst):
            if e.op == "<":
                return TRUE if l.value < r.value else FALSE
            if e.op == "<=":
                return TRUE if l.value <= r.value else FALSE
            return TRUE if l.value == r.value else FALSE
        if isinstance(l, StrConst) and isinstance(r, StrConst) and e.op == "=":
            return TRUE if l.value == r.value else FALSE
        if l == r and e.op in ("=", "<="):
            return TRUE
        return e
    return e


# ---------------------------------------------------------------------------
# The consolidation context Ψ (+ value-numbering table)
# ---------------------------------------------------------------------------


@dataclass
class SimplifyStats:
    """Counters for the entailment fast paths (shared across a whole batch).

    ``entail_queries`` counts semantic questions asked of the context;
    ``precheck_skips`` the ones the abstract environment decided without
    the solver; ``memo_hits`` the repeats answered from the ``(Ψ, e)``
    memo; ``smt_queries`` the remainder that actually reached the solver.
    """

    entail_queries: int = 0
    smt_queries: int = 0
    precheck_skips: int = 0
    memo_hits: int = 0

    def snapshot(self) -> dict:
        total = self.entail_queries
        return {
            "entail_queries": total,
            "smt_queries": self.smt_queries,
            "precheck_skips": self.precheck_skips,
            "memo_hits": self.memo_hits,
            "memo_hit_rate": (self.memo_hits / total) if total else 0.0,
        }


@dataclass
class Context:
    """Everything the judgments of Figures 3/5 thread through a derivation.

    ``psi`` is the logical context; ``bindings`` maps previously computed
    expressions to the cheap expression (usually a variable) holding their
    value — the candidate generator for the (Int) rule.  Contexts are
    value-like: use :meth:`branch` when exploring conditional arms.

    ``env`` mirrors ``psi`` in the interval/constant abstract domain: every
    ``assume``/``assign``/``havoc`` applied to ``psi`` is applied to ``env``
    too, so ``env`` always over-approximates the states satisfying the path
    condition.  That makes two solver fast paths sound: an env-decided
    predicate settles ``Ψ ⊨ e`` without SMT, and env-decided truth of ``e``
    means ``Ψ ⊨ ¬e`` is hopeless (and vice versa).  ``stats`` and
    ``entail_memo`` are shared by reference across :meth:`branch` — the
    memo keys include ``psi``, so sharing across branches stays sound.
    """

    engine: SpEngine
    solver: Solver
    cost_model: CostModel = DEFAULT_COST_MODEL
    psi: Formula = TRUE_F
    bindings: dict[Expr, Expr] = field(default_factory=dict)
    defs: dict[str, Expr] = field(default_factory=dict)
    call_sites: dict[str, list[tuple[Expr, Call]]] = field(default_factory=dict)
    recent_assigns: list[tuple[str, Expr]] = field(default_factory=list)
    use_smt: bool = True
    env: StaticEnv = field(default_factory=StaticEnv)
    stats: SimplifyStats = field(default_factory=SimplifyStats)
    entail_memo: dict = field(default_factory=dict)
    recorder: object = NULL_RECORDER

    # -- plumbing -------------------------------------------------------------

    def _record_entail(
        self, kind: str, query: str, verdict: bool, seconds: float, source: str
    ) -> None:
        """Push one entailment event (caller checked ``recorder.enabled``)."""

        self.recorder.entailment(
            kind, clamp(format_formula(self.psi)), query, verdict, seconds, source
        )

    def branch(self, psi: Formula) -> "Context":
        return replace(
            self,
            psi=psi,
            bindings=dict(self.bindings),
            defs=dict(self.defs),
            call_sites={k: list(v) for k, v in self.call_sites.items()},
            recent_assigns=list(self.recent_assigns),
            env=self.env.copy(),
        )

    def observe(self, e: Expr, *, negate: bool = False) -> None:
        """Mirror an assumed branch outcome into the abstract environment."""

        self.env.assume(e, positive=not negate)

    def forget(self, names: Iterable[str]) -> None:
        """Drop abstract facts about ``names`` (the env side of a havoc)."""

        self.env.havoc(names)

    def assuming(self, e: Expr, *, negate: bool = False) -> "Context":
        """A branch context with both ``psi`` and ``env`` refined by ``e``."""

        out = self.branch(self.assume(e, negate=negate))
        out.observe(e, negate=negate)
        return out

    def cost(self, e: Expr) -> int:
        return expr_cost(e, self.engine.functions, self.cost_model)

    def entails_expr(self, e: Expr, *, negate: bool = False) -> bool:
        """``Ψ |= e`` (or ``Ψ |= ¬e``), False when outside the fragment.

        The hypothesis is pruned to the goal's cone of influence: sound
        (only weakening), and it keeps queries small and cacheable however
        large the accumulated context has grown.

        Two fast paths run first: a ``(Ψ, e, negate)`` memo, and the
        abstract environment — when ``env`` decides ``e`` either way, the
        answer follows without SMT (env truth of ``e`` proves the goal or
        shows it unprovable, because env over-approximates Ψ's states).
        """

        if not self.use_smt:
            return False
        rec = self.recorder
        kind = "entails-not" if negate else "entails"
        self.stats.entail_queries += 1
        key = (self.psi, e, negate)
        cached = self.entail_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            if rec.enabled:
                self._record_entail(kind, format_expr(e), cached, 0.0, "memo")
            return cached
        value = self.env.eval_bool(e)
        if value is not None:
            self.stats.precheck_skips += 1
            result = (value is True) if not negate else (value is False)
            self.entail_memo[key] = result
            if rec.enabled:
                self._record_entail(kind, format_expr(e), result, 0.0, "precheck")
            return result
        enc = self.engine.encode_bool(e)
        if enc is None:
            self.entail_memo[key] = False
            if rec.enabled:
                self._record_entail(kind, format_expr(e), False, 0.0, "syntactic")
            return False
        self.stats.smt_queries += 1
        started = time.perf_counter() if rec.enabled else 0.0
        hyp = cone_of_influence(self.psi, enc)
        if negate:
            result = self.solver.entails_not(hyp, enc)
        else:
            result = self.solver.entails(hyp, enc)
        self.entail_memo[key] = result
        if rec.enabled:
            self._record_entail(
                kind, format_expr(e), result, time.perf_counter() - started, "smt"
            )
        return result

    def provably_equal(self, a: Expr, b: Expr) -> bool:
        """``Ψ |= a = b`` for two integer/string-sorted expressions."""

        if a == b:
            return True
        if not self.use_smt:
            return False
        rec = self.recorder
        query = f"{format_expr(a)} = {format_expr(b)}" if rec.enabled else ""
        self.stats.entail_queries += 1
        key = (self.psi, "=", a, b)
        cached = self.entail_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            if rec.enabled:
                self._record_entail("equal", query, cached, 0.0, "memo")
            return cached
        result = self._precheck_equal(a, b)
        if result is not None:
            self.stats.precheck_skips += 1
            self.entail_memo[key] = result
            if rec.enabled:
                self._record_entail("equal", query, result, 0.0, "precheck")
            return result
        ta = self.engine.encode_int(a)
        tb = self.engine.encode_int(b)
        if ta is None or tb is None:
            self.entail_memo[key] = False
            if rec.enabled:
                self._record_entail("equal", query, False, 0.0, "syntactic")
            return False
        self.stats.smt_queries += 1
        started = time.perf_counter() if rec.enabled else 0.0
        goal = eq_f(ta, tb)
        result = self.solver.entails(cone_of_influence(self.psi, goal), goal)
        self.entail_memo[key] = result
        if rec.enabled:
            self._record_entail(
                "equal", query, result, time.perf_counter() - started, "smt"
            )
        return result

    def _precheck_equal(self, a: Expr, b: Expr) -> bool | None:
        """Env-decided equality: constant intervals or disjoint ranges/sets."""

        ia = self.env.eval_int(a)
        ib = self.env.eval_int(b)
        if ia.is_const and ib.is_const:
            return ia.lo == ib.lo
        if ia.never_overlaps(ib):
            return False
        sa = self.env.eval_str(a)
        sb = self.env.eval_str(b)
        if sa is not None and sb is not None:
            if len(sa) == 1 and sa == sb:
                return True
            if not (sa & sb):
                return False
        return None

    # -- table maintenance ------------------------------------------------------

    def kill_var(self, name: str) -> None:
        """Drop bindings invalidated by an assignment to ``name``."""

        dead = [
            k
            for k, v in self.bindings.items()
            if name in expr_vars(k) or name in expr_vars(v)
        ]
        for k in dead:
            del self.bindings[k]
        self.defs.pop(name, None)
        dead_defs = [n for n, d in self.defs.items() if name in expr_vars(d)]
        for n in dead_defs:
            del self.defs[n]
        # A reassigned variable no longer holds the call results it cached —
        # but variables holding calls whose *arguments* mention ``name`` stay:
        # they are semantic candidates, re-verified against Ψ on every use.
        for holders in self.call_sites.values():
            holders[:] = [(h, c) for h, c in holders if name not in expr_vars(h)]
        self.recent_assigns = [(n, r) for n, r in self.recent_assigns if n != name]
        self.env.havoc((name,))

    def kill_vars(self, names: set[str]) -> None:
        for n in names:
            self.kill_var(n)

    def record_assign(self, var: str, rhs: Expr) -> None:
        """After consuming ``var := rhs``: refresh the table and the context."""

        self.kill_var(var)
        target = Var(var)
        if isinstance(rhs, (IntConst, StrConst, BoolConst)):
            # Remember the constant value of the variable itself.
            self.bindings[target] = rhs
        elif var not in expr_vars(rhs) and self.cost(rhs) > self.cost(target):
            self.bindings[rhs] = target
        if var not in expr_vars(rhs):
            self.defs[var] = rhs
            self._record_derived_binding(target, rhs)
        if isinstance(rhs, Call):
            self.call_sites.setdefault(rhs.func, []).append((target, rhs))
        self.recent_assigns.append((var, rhs))
        if len(self.recent_assigns) > _MAX_RECENT_ASSIGNS:
            del self.recent_assigns[0]
        self.psi = self.engine.assign(self.psi, var, rhs)
        self.env.assign(var, rhs)

    def _record_derived_binding(self, target: Expr, rhs: Expr) -> None:
        """Solve ``x := const + k*c + rest`` for a lone unit-coefficient call.

        After ``x := f(a) + 1`` the table learns ``f(a) ↦ x - 1``, which is
        what lets a later ``f(a) - 1`` rewrite to ``x - 2`` (the paper's
        Figure 4 example).
        """

        if isinstance(rhs, Call):
            return  # the direct binding already covers this
        decomposition = ir_linear(rhs)
        if decomposition is None:
            return
        const, coeffs = decomposition
        calls = [(a, k) for a, k in coeffs.items() if isinstance(a, Call)]
        if len(calls) != 1 or abs(calls[0][1]) != 1:
            return
        call_atom, k = calls[0]
        solved: dict[Expr, int] = {target: k}
        for atom, coef in coeffs.items():
            if atom != call_atom:
                solved[atom] = solved.get(atom, 0) - k * coef
        derived = fold_expr(ir_from_linear(-k * const, solved))
        if self.cost(derived) <= self.cost(call_atom):
            self.bindings[call_atom] = derived
            self.call_sites.setdefault(call_atom.func, []).append((derived, call_atom))

    def assume(self, e: Expr, *, negate: bool = False) -> Formula:
        return self.engine.assume(self.psi, e, negate=negate)

    # -- the (Int) judgment:  Ψ ⊢i e : e' ---------------------------------------

    def simplify_int(self, e: Expr) -> Expr:
        best = self._simplify_int_once(e)
        return best

    def _candidates_for_call(self, e: Call) -> list[Expr]:
        out: list[Expr] = []
        exact = self.bindings.get(e)
        if exact is not None:
            out.append(exact)
        for key, value in self.bindings.items():
            if value in out:
                continue
            if isinstance(key, Call) and _ground_args_compatible(key, e):
                out.append(value)
            if len(out) >= _MAX_CALL_CANDIDATES:
                break
        # Variables that held a result of this function at some point; their
        # equality with ``e`` is decided semantically by the caller.  The
        # ground-argument prefilter rejects e.g. ``contains(row, 17)`` vs
        # ``contains(row, 23)`` without paying for a solver call.
        for holder, defining in reversed(self.call_sites.get(e.func, [])):
            if holder not in out and _ground_args_compatible(defining, e):
                out.append(holder)
            if len(out) >= _MAX_CALL_CANDIDATES:
                break
        return out

    def _probe_recent(self, e: Expr) -> Expr | None:
        """A recently assigned variable provably equal to ``e``, if any.

        Only attempted for *composite* expensive expressions embedding a
        call (bare calls are handled by the call-candidate path), and only
        against recent assignments whose right-hand side shares call
        structure — each surviving probe is one entailment query.
        """

        if not self.use_smt or self.cost(e) < _PROBE_COST_THRESHOLD:
            return None
        if isinstance(e, Call):
            return None
        e_calls = [sub for sub in subexpressions(e) if isinstance(sub, Call)]
        if not e_calls:
            return None
        try:
            e_sort = self.engine.sort_of(e)
        except Exception:  # noqa: BLE001 - ill-typed: no probing
            return None
        probes = 0
        for name, rhs in reversed(self.recent_assigns):
            if probes >= _MAX_RECENT_PROBES:
                break
            candidate = Var(name)
            if candidate == e:
                continue
            if self.engine.sorts.get(name) != e_sort:
                continue
            rhs_calls = [sub for sub in subexpressions(rhs) if isinstance(sub, Call)]
            if not rhs_calls:
                continue
            if not any(
                _ground_args_compatible(rc, ec)
                for rc in rhs_calls
                for ec in e_calls
            ):
                continue
            probes += 1
            if self.provably_equal(e, candidate):
                return candidate
        return None

    def _simplify_atom(self, e: Expr) -> Expr:
        """Simplify a linear atom (variable or call) to a cheaper equal expr."""

        if isinstance(e, Var):
            bound = self.bindings.get(e)
            if bound is not None and self.cost(bound) <= self.cost(e):
                return bound
            return e
        if isinstance(e, Call):
            new_args = tuple(self.simplify_int(a) for a in e.args)
            rebuilt = Call(e.func, new_args)
            exact = self.bindings.get(rebuilt) or self.bindings.get(e)
            if exact is not None and self.cost(exact) <= self.cost(rebuilt):
                if not self.use_smt or self.provably_equal(e, exact):
                    return exact
            if self.use_smt:
                for cand in self._candidates_for_call(rebuilt):
                    if self.cost(cand) <= self.cost(rebuilt) and self.provably_equal(e, cand):
                        return cand
            return rebuilt if self.cost(rebuilt) <= self.cost(e) else e
        return e

    def _simplify_int_once(self, e: Expr) -> Expr:
        if isinstance(e, (IntConst, StrConst, Arg)):
            return e
        # Whole-expression table hit first (cheapest possible outcome).
        exact = self.bindings.get(e)
        if exact is not None and self.cost(exact) <= self.cost(e):
            if not self.use_smt or self.provably_equal(e, exact):
                return exact

        # Probe recently assigned variables: catches accumulator patterns
        # like ``s1 + f(m1)`` equalling the just-updated ``s2`` (Example 6
        # rewrites ``f(j)`` to ``t1`` and ``j - 1`` to ``i`` this way).
        probed = self._probe_recent(e)
        if probed is not None:
            return probed

        decomposition = ir_linear(e)
        if decomposition is not None:
            const, coeffs = decomposition
            new_coeffs: dict[Expr, int] = {}
            new_const = const
            changed = False
            for atom, coef in coeffs.items():
                simplified = self._simplify_atom(atom)
                if simplified is not atom and simplified != atom:
                    changed = True
                if isinstance(simplified, IntConst):
                    new_const += coef * simplified.value
                    continue
                inner = ir_linear(simplified)
                if inner is None:
                    new_coeffs[simplified] = new_coeffs.get(simplified, 0) + coef
                    continue
                ic, im = inner
                new_const += coef * ic
                for a, c in im.items():
                    new_coeffs[a] = new_coeffs.get(a, 0) + coef * c
            if changed:
                rebuilt = fold_expr(ir_from_linear(new_const, new_coeffs))
                if self.cost(rebuilt) <= self.cost(e) and (
                    not self.use_smt or self.provably_equal(e, rebuilt)
                ):
                    return rebuilt
            return e

        if isinstance(e, BinOp):
            rebuilt = fold_expr(
                BinOp(e.op, self.simplify_int(e.left), self.simplify_int(e.right))
            )
            if self.cost(rebuilt) <= self.cost(e) and (
                rebuilt == e or not self.use_smt or self.provably_equal(e, rebuilt)
            ):
                return rebuilt
            return e
        if isinstance(e, Call):
            return self._simplify_atom(e)
        return e

    # -- the (Bool) judgments:  Ψ ⊢b e : e' ---------------------------------------

    def provably_equiv_bool(self, a: Expr, b: Expr) -> bool:
        """``Ψ |= a <-> b`` for two boolean-sorted expressions."""

        if a == b:
            return True
        if not self.use_smt:
            return False
        rec = self.recorder
        query = f"{format_expr(a)} <-> {format_expr(b)}" if rec.enabled else ""
        self.stats.entail_queries += 1
        key = (self.psi, "<->", a, b)
        cached = self.entail_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            if rec.enabled:
                self._record_entail("iff", query, cached, 0.0, "memo")
            return cached
        va = self.env.eval_bool(a)
        vb = self.env.eval_bool(b)
        if va is not None and vb is not None:
            self.stats.precheck_skips += 1
            self.entail_memo[key] = va == vb
            if rec.enabled:
                self._record_entail("iff", query, va == vb, 0.0, "precheck")
            return va == vb
        fa = self.engine.encode_bool(a)
        fb = self.engine.encode_bool(b)
        if fa is None or fb is None:
            self.entail_memo[key] = False
            if rec.enabled:
                self._record_entail("iff", query, False, 0.0, "syntactic")
            return False
        self.stats.smt_queries += 1
        started = time.perf_counter() if rec.enabled else 0.0
        goal = fiff(fa, fb)
        result = self.solver.entails(cone_of_influence(self.psi, goal), goal)
        self.entail_memo[key] = result
        if rec.enabled:
            self._record_entail(
                "iff", query, result, time.perf_counter() - started, "smt"
            )
        return result

    def simplify_bool(self, e: Expr) -> Expr:
        # Bool 1 / Bool 2: the whole predicate is decided by the context.
        folded = fold_expr(e)
        if isinstance(folded, BoolConst):
            return folded
        if self.entails_expr(folded):
            return TRUE
        if self.entails_expr(folded, negate=True):
            return FALSE
        e = folded
        # Boolean memoisation: a previously computed predicate held in a var.
        bound = self.bindings.get(e)
        if (
            bound is not None
            and self.cost(bound) <= self.cost(e)
            and (not self.use_smt or self.provably_equiv_bool(e, bound))
        ):
            return bound
        # Bool 3: comparisons simplify their integer operands.
        if isinstance(e, Cmp):
            left = self.simplify_int(e.left)
            right = self.simplify_int(e.right)
            return fold_expr(Cmp(e.op, left, right))
        # Bool 4: connectives recurse and fold.
        if isinstance(e, BoolOp):
            left = self.simplify_bool(e.left)
            right = self.simplify_bool(e.right)
            return fold_expr(BoolOp(e.op, left, right))
        # Bool 5: negation recurses and folds.
        if isinstance(e, Not):
            return fold_expr(Not(self.simplify_bool(e.operand)))
        if isinstance(e, Var):
            bound = self.bindings.get(e)
            if isinstance(bound, BoolConst):
                return bound
            return e
        return e

    def simplify_for_sort(self, e: Expr) -> Expr:
        """Dispatch on the expression's sort (booleans vs integers)."""

        try:
            sort = self.engine.sort_of(e)
        except Exception:  # noqa: BLE001 - ill-typed: leave untouched
            return e
        if sort == BOOL:
            return self.simplify_bool(e)
        return self.simplify_int(e)
