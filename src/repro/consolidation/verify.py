"""Dynamic soundness checking of consolidation (Theorem 1, executed).

Given the original programs and their consolidation, re-run both sides on
concrete inputs and check Definition 1:

* identical notification environments (``N1 ⊎ N2``), and
* consolidated cost ≤ the sum of the individual costs.

This is used three ways: by the property-based test-suite on random
programs, by the experiment harness as a sanity gate before timing runs,
and as a debugging aid (`explain=True` renders a counter-example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..lang.ast import Program
from ..lang.interp import Interpreter, RunResult, run_sequentially
from ..lang.printer import program_to_str

__all__ = ["SoundnessViolation", "SoundnessReport", "check_soundness"]


@dataclass
class SoundnessViolation:
    """One input on which consolidation broke Definition 1."""

    args: dict
    kind: str  # 'notifications' | 'cost' | 'error'
    detail: str


@dataclass
class SoundnessReport:
    """Aggregate outcome over a batch of inputs."""

    inputs_checked: int = 0
    sequential_cost: int = 0
    consolidated_cost: int = 0
    violations: list[SoundnessViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def speedup(self) -> float:
        """Sequential-over-consolidated cost ratio, always finite.

        Costs are integer cost-clock units, so a zero consolidated cost is
        clamped to one unit rather than returning ``inf`` (which poisons
        the averages and ``:.2f`` renderings downstream).  Zero work on
        both sides is a speedup of exactly 1.
        """

        if self.sequential_cost == 0 and self.consolidated_cost == 0:
            return 1.0
        return self.sequential_cost / max(1, self.consolidated_cost)


def check_soundness(
    originals: list[Program],
    consolidated: Program,
    functions: FunctionTable,
    inputs: Iterable[Mapping[str, object]],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    explain: bool = False,
    max_violations: int = 5,
) -> SoundnessReport:
    """Check Definition 1 on every input; never raises on violation."""

    interp = Interpreter(functions, cost_model)
    report = SoundnessReport()
    for args in inputs:
        report.inputs_checked += 1
        try:
            seq_result = run_sequentially(originals, args, functions, cost_model)
            con_result = interp.run(consolidated, args)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            report.violations.append(
                SoundnessViolation(dict(args), "error", f"{type(exc).__name__}: {exc}")
            )
            if len(report.violations) >= max_violations:
                break
            continue
        report.sequential_cost += seq_result.cost
        report.consolidated_cost += con_result.cost
        if con_result.notifications != seq_result.notifications:
            detail = (
                f"expected {seq_result.notifications}, got {con_result.notifications}"
            )
            if explain:
                detail += "\n" + program_to_str(consolidated)
            report.violations.append(SoundnessViolation(dict(args), "notifications", detail))
        elif con_result.cost > seq_result.cost:
            report.violations.append(
                SoundnessViolation(
                    dict(args),
                    "cost",
                    f"consolidated {con_result.cost} > sequential {seq_result.cost}",
                )
            )
        if len(report.violations) >= max_violations:
            break
    return report
