"""Consolidating *n* UDFs: the divide-and-conquer driver (Section 6.1).

The paper amortises consolidation cost over many queries by merging UDFs
pairwise in a balanced tree: 50 leaf UDFs → 25 pairs → 13 → … → 1.  Each
internal node consolidates two already-consolidated programs, so "the last
iteration typically consolidates a pair of programs each containing a few
thousand lines of code".

Four orders are provided (the ablation benchmark compares them):

* ``clustered`` (default) — the balanced tree over programs first sorted
  by call-feature signature, so same-family queries merge while small;
* ``tree``  — the paper's balanced divide-and-conquer in given order;
* ``fold``  — a left fold (accumulate one growing program), which exposes
  the same optimisations but consolidates the big accumulator n−1 times;
* ``priority`` — a fold with the queries named in ``priority`` first (the
  Section 8 latency extension).

``parallel=True`` runs each tree level's pair consolidations in a thread
pool, mirroring the paper's parallel driver.  (CPython threads do not speed
up this CPU-bound work, but the structure — and the measured *tree depth*
— is what the scalability experiment reports.)
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..lang.ast import Program
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..smt.solver import Solver
from .algorithm import ConsolidationOptions, Consolidator
from .simplifier import SimplifyStats

__all__ = ["ConsolidationReport", "consolidate_all"]


@dataclass
class ConsolidationReport:
    """What happened while merging a batch of UDFs.

    ``parallel``/``max_workers`` record how the driver was configured, so
    scalability experiments can attribute a duration to the pool it used.

    ``simplify_stats`` aggregates the entailment fast-path counters
    (abstract-env pre-check skips, memo hits) over every pair;
    ``validations`` holds one static-validation certificate per pair when
    ``options.static_validate`` is on.
    """

    program: Program
    num_inputs: int
    pair_consolidations: int = 0
    tree_depth: int = 0
    duration: float = 0.0
    solver_stats: dict[str, int] = field(default_factory=dict)
    parallel: bool = False
    max_workers: int = 1
    simplify_stats: dict = field(default_factory=dict)
    validations: list = field(default_factory=list)

    @property
    def all_certified(self) -> bool:
        """Every pair statically certified (vacuously True when not validated)."""

        return all(v.certified for v in self.validations)


def _cluster_by_features(programs: list[Program]) -> list[Program]:
    """Order programs so UDFs with shared computations sit adjacently.

    The balanced tree pairs neighbours; in a mixed batch, random adjacency
    makes many early pairs share nothing.  Sorting by the call-feature
    signature (the same notion the ``related`` heuristic uses) clusters
    each family's queries together, so they merge while still small —
    where the If 3 embedding that eliminates redundant tests is cheapest.
    The reordering is semantics-preserving: every program still broadcasts
    through its own identifier.
    """

    from ..analysis.related import call_features
    from ..lang.visitors import stmt_exprs

    def signature(p: Program) -> str:
        keys = sorted(repr(k) for k in call_features(stmt_exprs(p.body)))
        return "|".join(keys)

    return sorted(programs, key=lambda p: (signature(p), p.pid))


def consolidate_all(
    programs: list[Program],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    order: str = "clustered",
    parallel: bool = False,
    max_workers: int = 4,
    priority: Sequence[str] | None = None,
) -> ConsolidationReport:
    """Merge ``programs`` into one program broadcasting every result.

    ``order='priority'`` implements the paper's Section 8 extension sketch:
    a (partial) query execution order.  Programs are folded left-to-right
    with the queries named in ``priority`` placed first; since Ω′ consumes
    the first program's statements — including its ``notify`` — before the
    second's, a higher-priority query's result is broadcast earlier in the
    merged program, bounding its latency.
    """

    if not programs:
        raise ValueError("need at least one program")
    if order not in ("tree", "fold", "priority", "clustered"):
        raise ValueError(f"unknown order {order!r}")
    if order == "priority":
        rank = {pid: i for i, pid in enumerate(priority or [])}
        programs = sorted(programs, key=lambda p: rank.get(p.pid, len(rank)))
        order = "fold"
    elif order == "clustered":
        programs = _cluster_by_features(programs)
        order = "tree"

    solver = Solver()
    options = options or ConsolidationOptions()
    stats = SimplifyStats()
    validations: list = []
    started = time.perf_counter()
    pairs = 0
    depth = 0

    def merge(a: Program, b: Program) -> Program:
        # A fresh Consolidator per pair keeps traces separate; the shared
        # solver keeps the entailment cache warm across pairs, and the
        # shared stats object aggregates fast-path counters batch-wide.
        worker = Consolidator(functions, cost_model, options, solver, stats)
        merged = worker.consolidate(a, b)
        if worker.last_validation is not None:
            validations.append(worker.last_validation)
        return merged

    level = list(programs)
    if order == "fold":
        acc = level[0]
        for nxt in level[1:]:
            acc = merge(acc, nxt)
            pairs += 1
            depth += 1
        result = acc
    else:
        while len(level) > 1:
            depth += 1
            pairings = [(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
            carried = [level[-1]] if len(level) % 2 else []
            if parallel and len(pairings) > 1:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    merged = list(pool.map(lambda ab: merge(*ab), pairings))
            else:
                merged = [merge(a, b) for a, b in pairings]
            pairs += len(pairings)
            level = merged + carried
        result = level[0]

    return ConsolidationReport(
        program=result,
        num_inputs=len(programs),
        pair_consolidations=pairs,
        tree_depth=depth,
        duration=time.perf_counter() - started,
        solver_stats=solver.stats.snapshot(),
        parallel=parallel,
        max_workers=max_workers if parallel else 1,
        simplify_stats=stats.snapshot(),
        validations=validations,
    )
