"""Consolidating *n* UDFs: the divide-and-conquer driver (Section 6.1).

The paper amortises consolidation cost over many queries by merging UDFs
pairwise in a balanced tree: 50 leaf UDFs → 25 pairs → 13 → … → 1.  Each
internal node consolidates two already-consolidated programs, so "the last
iteration typically consolidates a pair of programs each containing a few
thousand lines of code".

Four orders are provided (the ablation benchmark compares them):

* ``clustered`` (default) — the balanced tree over programs first sorted
  by call-feature signature, so same-family queries merge while small;
* ``tree``  — the paper's balanced divide-and-conquer in given order;
* ``fold``  — a left fold (accumulate one growing program), which exposes
  the same optimisations but consolidates the big accumulator n−1 times;
* ``priority`` — a fold with the queries named in ``priority`` first (the
  Section 8 latency extension).

Each tree level's pair consolidations can run on an ``executor``:

* ``"serial"`` (default) — inline, one after the other;
* ``"thread"`` — a thread pool, mirroring the paper's parallel driver
  structure (CPython threads cannot speed up this CPU-bound work, but the
  measured *tree depth* is what the scalability experiment reports);
* ``"process"`` — a process pool that actually uses multiple cores:
  programs are picklable ASTs, and consolidation never calls the library
  *implementations* (it is a static transformation), so each worker gets a
  callable-free copy of the function table.  Child-process counters are
  folded back into the parent's report; per-query SMT latency histograms
  are process-local and therefore only recorded for serial/thread runs.

The legacy ``parallel=True`` flag is a deprecated alias for
``executor="thread"``.  :class:`ConsolidationReport.executor` records
which executor actually ran.

Telemetry (``telemetry=`` or ``config.telemetry``): per-pair merge time
histogram, calculus rule application counts, SMT query counters and the
entailment fast-path counters all land in the metrics registry; tracing
adds ``consolidate.batch`` / ``consolidate.pair`` spans.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace as dc_replace
from typing import Iterator, Optional, Sequence

from ..lang.ast import Program, seq
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable, LibraryFunction
from ..lang.visitors import notified_pids, rename_locals
from ..smt.solver import Solver
from ..provenance.recorder import DerivationRecorder, Heuristic
from ..telemetry import NULL_TELEMETRY
from .algorithm import ConsolidationError, ConsolidationOptions, Consolidator
from .simplifier import SimplifyStats

_PLANNERS = ("related", "calibrated")

__all__ = [
    "ConsolidationReport",
    "MergeNode",
    "consolidate_all",
    "FAULT_HOOK",
    "SMT_UNKNOWN_NOTE",
]

_EXECUTORS = ("serial", "thread", "process")

# Prefix of the ConsolidationReport.degradations entry recording that the
# SMT solver answered "unknown" during the batch.  Unlike a skipped pair or
# a broken pool, this degradation is deterministic (the same batch always
# produces it) and purely a precision loss, so differential checks that
# compare executors can recognise and ignore it.
SMT_UNKNOWN_NOTE = "SMT solver returned unknown"

# Fault-injection seam (see repro.testing.faults).  Sites:
#   ("consolidate.pair", (a, b))   — consulted before each in-process pair
#                                    merge; raising simulates a mid-batch
#                                    failure, which must *degrade* (keep the
#                                    pair unmerged), never escape;
#   ("consolidate.worker", (a, b)) — consulted inside the process-pool
#                                    worker; raising (or ``os._exit``-ing,
#                                    which kills the worker and breaks the
#                                    pool) must make the driver redo the
#                                    level serially.
# None — the production value — costs one attribute read per pair.
FAULT_HOOK = None


@dataclass
class MergeNode:
    """One node of the divide-and-conquer merge tree.

    Leaves hold the original (unmerged) programs; an internal node holds
    the program produced by consolidating its two children.  The tree is
    treated as immutable: the incremental re-consolidation engine
    (:mod:`repro.consolidation.incremental`) patches it by rebuilding only
    the nodes on the path it touched, sharing every untouched subtree.
    """

    program: Program
    left: Optional["MergeNode"] = None
    right: Optional["MergeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> Iterator["MergeNode"]:
        """The leaf nodes in left-to-right order."""

        if self.is_leaf:
            yield self
            return
        for child in (self.left, self.right):
            if child is not None:
                yield from child.leaves()

    def leaf_pids(self) -> list[str]:
        return [leaf.program.pid for leaf in self.leaves()]

    def depth(self) -> int:
        """Height of the tree (a single leaf has depth 1)."""

        if self.is_leaf:
            return 1
        children = [c for c in (self.left, self.right) if c is not None]
        return 1 + max(c.depth() for c in children)

    def internal_count(self) -> int:
        """Number of internal nodes, i.e. pair merges the tree embodies."""

        if self.is_leaf:
            return 0
        count = 1
        for child in (self.left, self.right):
            if child is not None:
                count += child.internal_count()
        return count

    def shape(self) -> object:
        """A JSON-friendly rendering of the tree's structure (pids only)."""

        if self.is_leaf:
            return self.program.pid
        return {
            "pid": self.program.pid,
            "children": [
                c.shape() for c in (self.left, self.right) if c is not None
            ],
        }


@dataclass
class ConsolidationReport:
    """What happened while merging a batch of UDFs.

    ``executor``/``max_workers`` record how the driver was configured, so
    scalability experiments can attribute a duration to the pool it used
    (``parallel`` is kept as a derived legacy field).

    ``simplify_stats`` aggregates the entailment fast-path counters
    (abstract-env pre-check skips, memo hits) over every pair;
    ``validations`` holds one static-validation certificate per pair when
    ``options.static_validate`` is on.

    ``derivations`` holds one
    :class:`repro.provenance.DerivationTree` per successfully merged pair
    when provenance recording was requested (``provenance=True`` or
    ``config.provenance``); it is empty otherwise.

    ``prefilter`` holds the :class:`repro.analysis.prefilter.Prefilter`
    synthesized for the merged program when requested (``prefilter=True``
    or ``config.prefilter``), and ``prefilter_seconds`` its synthesis
    time — reported separately from ``duration`` (and spanned as
    ``consolidate.prefilter``) so guard synthesis can be banded apart
    from merge time.

    ``planner`` records the pair-ordering strategy that ran (``"related"``
    — the default heuristic adjacency — or ``"calibrated"``), and
    ``planner_decisions`` one dict per calibrated-planner decision:
    ``{"left", "right", "merged", "predicted_savings_seconds",
    "observed_savings_seconds", "mispredicted", "used_smt"}``.  A *skip*
    decision (``"merged": False``) means the planner predicted zero
    cross-simplification value and composed the pair sequentially without
    invoking the consolidator at all — semantically the exact result a
    merge of unrelated programs produces, minus its cost.

    ``skipped_pairs`` records every pair merge that failed mid-batch and
    was replaced by the sequential composition of its two inputs (one
    ``{"left", "right", "reason"}`` dict per skip); ``degradations`` is a
    log of coarser fallbacks (a broken process pool redone serially, or the
    :data:`SMT_UNKNOWN_NOTE` entry when the solver answered "unknown" and
    rewrites were skipped conservatively).  The driver *never* raises for
    these — the result is still a correct program, just less consolidated —
    so callers must consult :attr:`degraded` when they care.
    """

    program: Program
    num_inputs: int
    pair_consolidations: int = 0
    tree_depth: int = 0
    duration: float = 0.0
    prefilter: object = None
    prefilter_seconds: float = 0.0
    solver_stats: dict[str, int] = field(default_factory=dict)
    parallel: bool = False
    max_workers: int = 1
    executor: str = "serial"
    simplify_stats: dict = field(default_factory=dict)
    validations: list = field(default_factory=list)
    skipped_pairs: list = field(default_factory=list)
    degradations: list = field(default_factory=list)
    derivations: list = field(default_factory=list)
    merge_tree: Optional[MergeNode] = None
    planner: str = "related"
    planner_decisions: list = field(default_factory=list)

    @property
    def all_certified(self) -> bool:
        """Every pair statically certified (vacuously True when not validated)."""

        return all(v.certified for v in self.validations)

    @property
    def degraded(self) -> bool:
        """True when any pair was kept unmerged or any executor fell back."""

        return bool(self.skipped_pairs or self.degradations)


def _cluster_by_features(programs: list[Program]) -> list[Program]:
    """Order programs so UDFs with shared computations sit adjacently.

    The balanced tree pairs neighbours; in a mixed batch, random adjacency
    makes many early pairs share nothing.  Sorting by the call-feature
    signature (the same notion the ``related`` heuristic uses) clusters
    each family's queries together, so they merge while still small —
    where the If 3 embedding that eliminates redundant tests is cheapest.
    The reordering is semantics-preserving: every program still broadcasts
    through its own identifier.
    """

    from ..analysis.related import call_features
    from ..lang.visitors import stmt_exprs

    def signature(p: Program) -> str:
        keys = sorted(repr(k) for k in call_features(stmt_exprs(p.body)))
        return "|".join(keys)

    return sorted(programs, key=lambda p: (signature(p), p.pid))


# ---------------------------------------------------------------------------
# Process-pool plumbing.  Consolidation never *calls* library functions, so
# the child rebuilds the table from a picklable (name, cost, sorts) spec
# with a stub callable — lambdas and closures in the real table would not
# survive pickling.
# ---------------------------------------------------------------------------


def _stub_fn(*_args):  # pragma: no cover - consolidation never calls it
    raise RuntimeError("library implementations are not shipped to consolidation workers")


def _table_spec(functions: FunctionTable) -> tuple:
    return tuple((f.name, f.cost, f.result_sort, f.arg_sorts) for f in functions)


def _table_from_spec(spec: tuple) -> FunctionTable:
    return FunctionTable(
        LibraryFunction(name, _stub_fn, cost=cost, result_sort=sort, arg_sorts=args)
        for name, cost, sort, args in spec
    )


def _sequential_pair(a: Program, b: Program) -> Program:
    """The sequential baseline for one pair: run ``a`` then ``b`` unmerged.

    This is exactly what the paper's Ω produces when no rule applies — the
    two bodies concatenated after the mechanical disjoint-locals renaming —
    so notifications are the disjoint union and the cost is the sum of the
    originals, never worse than running the pair separately.  It is the
    fallback the driver substitutes when a pair merge fails mid-batch.
    """

    qa, qb = rename_locals(a), rename_locals(b)
    return Program(f"{a.pid}&{b.pid}", a.params, seq(qa.body, qb.body))


def _merge_pair_task(payload: tuple):
    """Top-level (hence picklable) pair-merge job for the process pool."""

    a, b, spec, cost_model, options, provenance = payload
    if FAULT_HOOK is not None:
        FAULT_HOOK("consolidate.worker", (a, b))
    recorder = DerivationRecorder() if provenance else None
    worker = Consolidator(
        _table_from_spec(spec), cost_model, options, recorder=recorder
    )
    merged = worker.consolidate(a, b)
    # Derivation events are plain string/number dataclasses, so the tree
    # pickles back to the parent unchanged.
    return (
        merged,
        worker.simplify_stats,
        worker.solver.stats.snapshot(),
        worker.last_validation,
        tuple(worker.trace),
        worker.last_duration,
        worker.last_derivation,
    )


def consolidate_all(
    programs: list[Program],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    options: ConsolidationOptions | None = None,
    order: str = "clustered",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    priority: Sequence[str] | None = None,
    executor: Optional[str] = None,
    telemetry=None,
    config=None,
    provenance: Optional[bool] = None,
    prefilter: Optional[bool] = None,
    keep_tree: bool = False,
    planner: Optional[str] = None,
    calibration=None,
    smt_budget_seconds: Optional[float] = None,
) -> ConsolidationReport:
    """Merge ``programs`` into one program broadcasting every result.

    ``order='priority'`` implements the paper's Section 8 extension sketch:
    a (partial) query execution order.  Programs are folded left-to-right
    with the queries named in ``priority`` placed first; since Ω′ consumes
    the first program's statements — including its ``notify`` — before the
    second's, a higher-priority query's result is broadcast earlier in the
    merged program, bounding its latency.

    ``executor`` selects how each tree level's pair merges run (see module
    docstring); ``config`` (an :class:`repro.config.ExecutionConfig`)
    supplies defaults for ``executor``, ``max_workers``, ``telemetry`` and
    ``provenance``.

    ``provenance=True`` records one
    :class:`~repro.provenance.DerivationTree` per merged pair onto the
    report's ``derivations`` — every rule application, entailment, rewrite
    and heuristic decision of the batch.

    ``prefilter=True`` additionally synthesizes a sound reject-early guard
    for the final merged program (see :mod:`repro.analysis.prefilter`);
    the result and its timing land on ``report.prefilter`` /
    ``report.prefilter_seconds``.

    ``keep_tree=True`` records the divide-and-conquer structure itself: the
    report's ``merge_tree`` holds one :class:`MergeNode` per original
    program (leaves) and per pair merge (internal nodes, each carrying its
    intermediate merged program).  The incremental re-consolidation engine
    (:mod:`repro.consolidation.incremental`) patches this tree on
    add/remove of a single query instead of re-running the whole batch.

    ``planner="calibrated"`` replaces the level's fixed adjacent pairing
    with the cost-driven plan of :mod:`repro.profiling.planner`: pairs
    are ranked by predicted wall-seconds saved under ``calibration`` (a
    :class:`repro.profiling.CalibratedCostModel`; the static-prior
    ``uniform()`` model when none is supplied), executed highest-savings
    first, and pairs predicted unprofitable are composed sequentially
    without invoking the consolidator.  ``smt_budget_seconds`` caps the
    wall time spent on SMT-backed merges: once the budget is gone, the
    remaining (lowest-savings) pairs merge with ``use_smt=False``.
    Calibrated planning applies to the tree orders (``tree`` /
    ``clustered``) and runs its pair merges in-process and in plan order
    — budget accounting is sequential by construction — so ``executor``
    only shapes the ``related`` planner's levels.  Every decision lands
    on ``report.planner_decisions`` and, for provenance-recorded merges,
    as a ``planner`` heuristic entry on the pair's derivation tree
    (rendered by ``repro explain``).
    """

    if not programs:
        raise ValueError("need at least one program")
    if order not in ("tree", "fold", "priority", "clustered"):
        raise ValueError(f"unknown order {order!r}")

    # Batch-level preconditions are checked up front so misuse still raises
    # eagerly; once they hold, any *mid-batch* failure (solver crash, refuted
    # validation, dead worker) degrades to the sequential baseline instead.
    seen_pids: dict[str, str] = {}
    for p in programs:
        if p.params != programs[0].params:
            raise ConsolidationError(
                f"programs take different inputs: {programs[0].params} vs {p.params}"
            )
        for pid in notified_pids(p.body):
            if pid in seen_pids:
                raise ConsolidationError(
                    f"programs {seen_pids[pid]!r} and {p.pid!r} share notification id {pid!r}"
                )
            seen_pids[pid] = p.pid

    if parallel is not None:
        from ..config import deprecated_kwarg

        deprecated_kwarg("parallel", "executor='thread'")
        if executor is None:
            executor = "thread" if parallel else "serial"
    if executor is None:
        executor = config.executor if config is not None else "serial"
    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {_EXECUTORS}")
    if max_workers is None:
        max_workers = config.max_workers if config is not None else 4
    if telemetry is None:
        telemetry = config.telemetry if config is not None else NULL_TELEMETRY
    if provenance is None:
        provenance = bool(config.provenance) if config is not None else False
    if prefilter is None:
        prefilter = bool(config.prefilter) if config is not None else False
    if planner is None:
        planner = config.planner if config is not None else "related"
    if planner not in _PLANNERS:
        raise ValueError(f"unknown planner {planner!r}; choose from {_PLANNERS}")
    if calibration is None and config is not None:
        calibration = config.calibration
    if smt_budget_seconds is None and config is not None:
        smt_budget_seconds = config.smt_budget_seconds

    if order == "priority":
        rank = {pid: i for i, pid in enumerate(priority or [])}
        programs = sorted(programs, key=lambda p: rank.get(p.pid, len(rank)))
        order = "fold"
    elif order == "clustered":
        programs = _cluster_by_features(programs)
        order = "tree"

    solver = Solver(telemetry=telemetry)
    options = options or ConsolidationOptions()
    stats = SimplifyStats()
    validations: list = []
    extra_solver_stats: dict[str, int] = {}
    registry = telemetry.metrics
    pair_seconds = registry.histogram("consolidation_pair_seconds")
    rule_counts: dict[str, int] = {}
    started = time.perf_counter()
    pairs = 0
    depth = 0

    def record_pair(trace, duration: float) -> None:
        pair_seconds.observe(duration)
        for rule in trace:
            rule_counts[rule] = rule_counts.get(rule, 0) + 1

    skipped: list[dict] = []
    degradations: list[str] = []
    derivations: list = []

    # Calibrated-planner state (inert under planner="related").
    calib_model = None
    planner_decisions: list[dict] = []
    planner_skips = 0
    planner_mispredictions = 0
    planner_budget_exhausted = 0
    smt_spent = 0.0
    if planner == "calibrated":
        from ..profiling import CalibratedCostModel

        calib_model = (
            calibration
            if calibration is not None
            else CalibratedCostModel.uniform(cost_model)
        )

    def merge(
        a: Program, b: Program, pair_options: ConsolidationOptions | None = None
    ) -> Program:
        # A fresh Consolidator per pair keeps traces separate; the shared
        # solver keeps the entailment cache warm across pairs, and the
        # shared stats object aggregates fast-path counters batch-wide.
        # (The recorder is per-pair too: its node stack is not re-entrant,
        # and the thread executor runs pairs concurrently; list.append on
        # the shared derivations list is atomic under the GIL.)
        # Any failure here — a solver crash escaping as an exception, a
        # refuted static validation, an injected fault — keeps the pair
        # unmerged (the sequential baseline is always correct) and records
        # the skip; the batch never dies for one pair.
        try:
            if FAULT_HOOK is not None:
                FAULT_HOOK("consolidate.pair", (a, b))
            recorder = DerivationRecorder() if provenance else None
            worker = Consolidator(
                functions,
                cost_model,
                pair_options if pair_options is not None else options,
                solver,
                stats,
                recorder=recorder,
            )
            with telemetry.span("consolidate.pair", left=a.pid, right=b.pid):
                merged = worker.consolidate(a, b)
        except Exception as exc:  # noqa: BLE001 - degrade, never crash mid-batch
            skipped.append(
                {
                    "left": a.pid,
                    "right": b.pid,
                    "reason": f"{type(exc).__name__}: {exc}",
                }
            )
            if telemetry.enabled:
                registry.counter("consolidation_skipped_pairs_total").inc()
            return _sequential_pair(a, b)
        record_pair(worker.trace, worker.last_duration)
        if worker.last_validation is not None:
            validations.append(worker.last_validation)
        if worker.last_derivation is not None:
            derivations.append(worker.last_derivation)
        return merged

    def absorb_task(result) -> Program:
        """Fold one :func:`_merge_pair_task` result into the batch state."""

        merged, child_stats, child_solver, validation, trace, duration, tree = result
        stats.entail_queries += child_stats.entail_queries
        stats.smt_queries += child_stats.smt_queries
        stats.precheck_skips += child_stats.precheck_skips
        stats.memo_hits += child_stats.memo_hits
        for key, value in child_solver.items():
            extra_solver_stats[key] = extra_solver_stats.get(key, 0) + value
        if validation is not None:
            validations.append(validation)
        if tree is not None:
            derivations.append(tree)
        record_pair(trace, duration)
        return merged

    spec = _table_spec(functions) if executor == "process" else None
    pool = None
    try:
        with telemetry.span(
            "consolidate.batch", n=len(programs), order=order, executor=executor
        ):
            level = list(programs)
            # ``nodes`` mirrors ``level`` one-to-one while keep_tree is on,
            # so every intermediate merged program lands on a MergeNode.
            nodes: list[MergeNode] | None = (
                [MergeNode(p) for p in level] if keep_tree else None
            )
            if order == "fold":
                acc = level[0]
                acc_node = nodes[0] if nodes is not None else None
                for i, nxt in enumerate(level[1:], start=1):
                    acc = merge(acc, nxt)
                    if nodes is not None:
                        acc_node = MergeNode(acc, acc_node, nodes[i])
                    pairs += 1
                    depth += 1
                result = acc
                if nodes is not None:
                    nodes = [acc_node]
            else:
                pool_broken = False
                while len(level) > 1:
                    depth += 1
                    if calib_model is not None:
                        # The cost-driven plan: highest predicted savings
                        # first, zero-savings pairs composed sequentially
                        # without touching the consolidator, SMT budget
                        # spent down the ranking.  Sequential by
                        # construction (budget accounting needs the order).
                        from ..profiling.planner import plan_level

                        plan = plan_level(level, functions, calib_model)
                        merged = []
                        for decision in plan.decisions:
                            a = level[decision.left]
                            b = level[decision.right]
                            if not decision.merge:
                                m = _sequential_pair(a, b)
                                planner_skips += 1
                                planner_decisions.append(
                                    {
                                        "left": a.pid,
                                        "right": b.pid,
                                        "merged": False,
                                        "predicted_savings_seconds": decision.predicted_savings,
                                        "observed_savings_seconds": 0.0,
                                        "mispredicted": False,
                                        "used_smt": False,
                                    }
                                )
                            else:
                                pair_options = options
                                use_smt = options.use_smt
                                if (
                                    use_smt
                                    and smt_budget_seconds is not None
                                    and smt_spent >= smt_budget_seconds
                                ):
                                    pair_options = dc_replace(
                                        options, use_smt=False
                                    )
                                    use_smt = False
                                    planner_budget_exhausted += 1
                                before_derivations = len(derivations)
                                merge_started = time.perf_counter()
                                m = merge(a, b, pair_options)
                                if use_smt:
                                    smt_spent += (
                                        time.perf_counter() - merge_started
                                    )
                                # Realized savings under the same model:
                                # predicted cost of the two inputs minus the
                                # merged program's.  A positive prediction
                                # that realizes nothing is a misprediction —
                                # flagged, counted, rendered by explain.
                                observed = (
                                    calib_model.predict_program_seconds(a, functions)
                                    + calib_model.predict_program_seconds(b, functions)
                                    - calib_model.predict_program_seconds(m, functions)
                                )
                                mispredicted = (
                                    decision.predicted_savings > 0.0
                                    and observed <= 0.0
                                )
                                if mispredicted:
                                    planner_mispredictions += 1
                                planner_decisions.append(
                                    {
                                        "left": a.pid,
                                        "right": b.pid,
                                        "merged": True,
                                        "predicted_savings_seconds": decision.predicted_savings,
                                        "observed_savings_seconds": observed,
                                        "mispredicted": mispredicted,
                                        "used_smt": use_smt,
                                    }
                                )
                                if provenance and len(derivations) > before_derivations:
                                    detail = (
                                        f"predicted={decision.predicted_savings:.3e}s "
                                        f"observed={observed:.3e}s"
                                    )
                                    if not use_smt:
                                        detail += " (smt budget exhausted)"
                                    if mispredicted:
                                        detail += " MISPREDICTED"
                                    derivations[-1].root.heuristics.append(
                                        Heuristic(
                                            "planner", detail, not mispredicted
                                        )
                                    )
                            merged.append(m)
                        pairs += len(plan.decisions)
                        if nodes is not None:
                            merged_nodes = [
                                MergeNode(m, nodes[d.left], nodes[d.right])
                                for d, m in zip(plan.decisions, merged)
                            ]
                            nodes = merged_nodes + [
                                nodes[i] for i in plan.carried
                            ]
                        level = merged + [level[i] for i in plan.carried]
                        continue
                    pairings = [
                        (level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
                    ]
                    carried = [level[-1]] if len(level) % 2 else []
                    if executor != "serial" and len(pairings) > 1 and not pool_broken:
                        if pool is None:
                            pool_cls = (
                                ThreadPoolExecutor
                                if executor == "thread"
                                else ProcessPoolExecutor
                            )
                            pool = pool_cls(max_workers=max_workers)
                        if executor == "thread":
                            merged = list(pool.map(lambda ab: merge(*ab), pairings))
                        else:
                            payloads = [
                                (a, b, spec, cost_model, options, provenance)
                                for a, b in pairings
                            ]
                            try:
                                # Drain the whole level before absorbing any
                                # result, so a failure absorbs nothing and the
                                # serial redo cannot double-count stats.
                                raw = list(pool.map(_merge_pair_task, payloads))
                            except Exception as exc:  # noqa: BLE001 - dead worker / task crash
                                # A worker died (BrokenProcessPool) or a task
                                # raised; the pool is no longer trustworthy.
                                # Redo this level in-process — merge() still
                                # degrades per pair — and stay serial for the
                                # remaining levels.
                                degradations.append(
                                    f"process pool failed at depth {depth} "
                                    f"({type(exc).__name__}: {exc}); completed serially"
                                )
                                if telemetry.enabled:
                                    registry.counter(
                                        "consolidation_executor_degradations_total"
                                    ).inc()
                                pool.shutdown(wait=False)
                                pool = None
                                pool_broken = True
                                merged = [merge(a, b) for a, b in pairings]
                            else:
                                merged = [absorb_task(r) for r in raw]
                    else:
                        merged = [merge(a, b) for a, b in pairings]
                    pairs += len(pairings)
                    if nodes is not None:
                        merged_nodes = [
                            MergeNode(m, nodes[2 * i], nodes[2 * i + 1])
                            for i, m in enumerate(merged)
                        ]
                        nodes = merged_nodes + ([nodes[-1]] if carried else [])
                    level = merged + carried
                result = level[0]
    finally:
        if pool is not None:
            pool.shutdown()

    # Prefilter synthesis runs on the final merged program, inside its own
    # span and timed separately, so trajectory banding can tell guard
    # synthesis apart from merge time.  It reuses the batch solver (before
    # the stats snapshot below, so its certificate queries are counted).
    prefilter_obj = None
    prefilter_seconds = 0.0
    if prefilter:
        from ..analysis.prefilter import synthesize_prefilter

        recorder = DerivationRecorder() if provenance else None
        prefilter_started = time.perf_counter()
        with telemetry.span("consolidate.prefilter", program=result.pid):
            prefilter_obj = synthesize_prefilter(
                result,
                functions,
                cost_model,
                solver=solver,
                recorder=recorder,
                telemetry=telemetry,
            )
        prefilter_seconds = time.perf_counter() - prefilter_started
        if prefilter_obj.certificate == "degraded":
            degradations.append(
                f"prefilter degraded to true: {prefilter_obj.degraded_reason}"
            )

    solver_stats = solver.stats.snapshot()
    for key, value in extra_solver_stats.items():
        solver_stats[key] = solver_stats.get(key, 0) + value
    simplify_snapshot = stats.snapshot()

    if solver_stats.get("unknowns"):
        # "unknown" is answered as "not entailed": each affected rewrite is
        # conservatively skipped, never mis-applied.  Surface the precision
        # loss so callers can tell a clean batch from a degraded one.
        degradations.append(
            f"{SMT_UNKNOWN_NOTE} {solver_stats['unknowns']} time(s); "
            "the affected rewrites were skipped conservatively"
        )

    if telemetry.enabled:
        registry.counter("consolidation_batches_total").inc()
        registry.counter("consolidation_pairs_total").inc(pairs)
        registry.counter("consolidation_seconds_total").inc(
            time.perf_counter() - started
        )
        for rule, count in rule_counts.items():
            registry.counter("consolidation_rule_applications_total", rule=rule).inc(count)
        registry.merge_counts(solver_stats, prefix="smt_")
        registry.merge_counts(
            {k: v for k, v in simplify_snapshot.items() if k != "memo_hit_rate"},
            prefix="consolidation_",
        )
        registry.gauge("consolidation_memo_hit_rate").set(
            simplify_snapshot.get("memo_hit_rate", 0.0)
        )
        if planner == "calibrated":
            registry.counter("planner_pairs_total").inc(
                sum(1 for d in planner_decisions if d["merged"])
            )
            registry.counter("planner_skips_total").inc(planner_skips)
            registry.counter("planner_mispredictions_total").inc(
                planner_mispredictions
            )
            registry.counter("planner_smt_budget_exhausted_total").inc(
                planner_budget_exhausted
            )
            registry.gauge("planner_predicted_savings_seconds").set(
                sum(d["predicted_savings_seconds"] for d in planner_decisions)
            )
            if calib_model is not None:
                registry.gauge("calibration_staleness_seconds").set(
                    calib_model.staleness_seconds()
                )
                registry.gauge("calibration_r2").set(calib_model.r2)

    if prefilter_obj is not None and prefilter_obj.derivation is not None:
        derivations.append(prefilter_obj.derivation)

    return ConsolidationReport(
        program=result,
        num_inputs=len(programs),
        pair_consolidations=pairs,
        tree_depth=depth,
        duration=time.perf_counter() - started,
        prefilter=prefilter_obj,
        prefilter_seconds=prefilter_seconds,
        solver_stats=solver_stats,
        parallel=executor != "serial",
        max_workers=max_workers if executor != "serial" else 1,
        executor=executor,
        simplify_stats=simplify_snapshot,
        validations=validations,
        skipped_pairs=skipped,
        degradations=degradations,
        derivations=derivations,
        merge_tree=nodes[0] if keep_tree else None,
        planner=planner,
        planner_decisions=planner_decisions,
    )
