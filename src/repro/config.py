"""Execution configuration: one object for every run-time knob.

Before this module, each layer grew its own keyword arguments —
``backend=`` on the operators, ``workers=`` on ``Query.run``,
``cost_model=`` everywhere, ``parallel=`` on ``consolidate_all`` — and
they drifted (a knob added to one entry point was forgotten on the next).
:class:`ExecutionConfig` replaces them with a single immutable value
threaded through :meth:`repro.naiad.linq.Query.run`,
:func:`repro.naiad.linq.from_collection`, ``run_where_many`` /
``run_where_consolidated``, :func:`repro.consolidation.consolidate_all`,
the experiment harness and the CLI.

The old keyword arguments still work but emit :class:`DeprecationWarning`
(see :func:`resolve_config`, the shared shim); they will be removed in
2.0.

Telemetry rides in the config too: ``telemetry`` is the
:class:`repro.telemetry.Telemetry` facade every instrumented layer
reports into (default: the no-op ``NULL_TELEMETRY``), and ``sink`` is an
optional :class:`repro.telemetry.sinks.TelemetrySink` that
:meth:`flush_telemetry` exports snapshots to.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from .lang.compile import BACKENDS, DEFAULT_BACKEND
from .lang.cost import DEFAULT_COST_MODEL, CostModel
from .lang.functions import FunctionTable
from .telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "ExecutionConfig",
    "ServiceConfig",
    "EXECUTORS",
    "PLANNERS",
    "LEGACY_KWARG_REMOVAL",
    "resolve_config",
    "deprecated_kwarg",
]

EXECUTORS = ("serial", "thread", "process")

# Consolidation pair-ordering strategies (see repro.profiling.planner for
# the calibrated one).
PLANNERS = ("related", "calibrated")

# The version in which every legacy per-function keyword disappears; the
# deprecation warnings name it so callers can plan, and
# tests/test_api_surface.py pins the message shape.
LEGACY_KWARG_REMOVAL = "2.0"


def deprecated_kwarg(name: str, instead: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a legacy keyword.

    ``instead`` names the exact :class:`ExecutionConfig` field (and value)
    that replaces the keyword, e.g. ``"workers=2"`` or
    ``"executor='thread'"``; the warning also states the scheduled
    removal version so the deprecation cycle is actionable.
    """

    warnings.warn(
        f"the {name!r} keyword is deprecated and will be removed in repro "
        f"{LEGACY_KWARG_REMOVAL}; set ExecutionConfig({instead}) and pass it "
        f"via config= instead",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything a query run needs beyond the data and the programs.

    ``backend``
        UDF execution backend: ``"compiled"`` (default), ``"interp"``, or
        ``"vectorized"`` — struct-of-arrays column batches executed from
        the operators' flush path, per-row compiled fallback for programs
        the shape classifier cannot bound (see :mod:`repro.lang.vectorize`).
    ``workers``
        Data-parallel dataflow shards.
    ``cost_model``
        The Figure-2 cost model used by interpreter, compiler and
        consolidator alike.
    ``functions``
        Optional default :class:`FunctionTable`; entry points that take an
        explicit table fall back to this one when it is omitted.
    ``io_cost_per_record`` / ``overhead_per_operator``
        The dataflow engine's virtual-clock charges.
    ``memoize_calls``
        Per-run memoisation of library calls in both backends.
    ``executor`` / ``max_workers``
        How the divide-and-conquer consolidation driver runs its pair
        merges: ``"serial"``, ``"thread"`` (the paper's structure; no
        CPython speedup) or ``"process"`` (actually uses cores — programs
        are picklable ASTs).
    ``telemetry`` / ``sink``
        The observability handle and an optional export target.
    ``provenance``
        When True, the consolidation driver records a full
        :class:`repro.provenance.DerivationTree` per pair merge (rule
        applications, entailments, rewrites, heuristics) onto
        ``ConsolidationReport.derivations``.  Off by default — recording
        follows the NULL-twin pattern, so the disabled path costs one
        boolean check per decision point.
    ``prefilter``
        When True, ``consolidate_all`` synthesizes a sound reject-early
        guard (:func:`repro.analysis.prefilter.synthesize_prefilter`) for
        the merged program and the Where operators evaluate it before the
        full UDF, skipping rows that provably notify nobody.  Off by
        default — the disabled hot path costs one ``None`` check per
        record, mirroring the telemetry discipline.
    ``profiler``
        Optional :class:`repro.profiling.Profiler`.  When set, the
        backends sample executions (every Nth invocation / column batch)
        into its trace store for offline calibration (``repro
        calibrate``).  ``None`` (the default) keeps every hot path
        unwrapped — the zero-cost-when-off discipline again.
    ``planner``
        Consolidation pair-ordering strategy: ``"related"`` (the paper's
        heuristic, default) or ``"calibrated"`` — rank candidate pairs by
        predicted wall-seconds saved under ``calibration``, skip pairs
        predicted unprofitable, and spend ``smt_budget_seconds`` on the
        highest-savings merges first (see
        :mod:`repro.profiling.planner`).
    ``calibration``
        Optional :class:`repro.profiling.CalibratedCostModel` backing the
        calibrated planner.  When the planner is ``"calibrated"`` and no
        model is supplied, the driver falls back to
        ``CalibratedCostModel.uniform()`` (static Figure-2 priors).
    ``smt_budget_seconds``
        Wall-time budget for SMT-backed pair merges per
        ``consolidate_all`` call under the calibrated planner; once
        exhausted, the remaining (lower-savings) pairs merge without the
        solver.  ``None`` = unbudgeted.
    """

    backend: str = DEFAULT_BACKEND
    workers: int = 4
    cost_model: CostModel = DEFAULT_COST_MODEL
    functions: Optional[FunctionTable] = None
    io_cost_per_record: int = 25
    overhead_per_operator: int = 2
    memoize_calls: bool = False
    executor: str = "serial"
    max_workers: int = 4
    telemetry: Telemetry = NULL_TELEMETRY
    sink: object = None
    provenance: bool = False
    prefilter: bool = False
    profiler: object = None
    planner: str = "related"
    calibration: object = None
    smt_budget_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; choose from {EXECUTORS}")
        if self.planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {self.planner!r}; choose from {PLANNERS}"
            )
        if self.smt_budget_seconds is not None and self.smt_budget_seconds < 0:
            raise ValueError(
                f"smt_budget_seconds must be >= 0 (or None for unbudgeted), "
                f"got {self.smt_budget_seconds!r}"
            )
        if self.workers < 1:
            raise ValueError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be an integer >= 1, got {self.max_workers!r}"
            )

    def evolve(self, **changes) -> "ExecutionConfig":
        """A copy with ``changes`` applied (the config is immutable)."""

        return replace(self, **changes)

    def resolve_functions(self, functions: Optional[FunctionTable]) -> FunctionTable:
        """The explicit table if given, else the config's, else empty."""

        if functions is not None:
            return functions
        if self.functions is not None:
            return self.functions
        return FunctionTable()

    def flush_telemetry(self) -> None:
        """Export one snapshot to ``sink`` (no-op without a sink)."""

        if self.sink is not None:
            self.telemetry.export(self.sink)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for the consolidation service (``repro serve``).

    ``host`` / ``port``
        Bind address; port 0 asks the OS for an ephemeral port.
    ``event_log``
        Path of the append-only registry journal.  ``None`` keeps the
        registry in-memory only (no durability, no replay on restart).
    ``static_validate_patches``
        Run the abstract-interpretation translation validator on every
        incremental pair merge; an uncertified patch falls back to a full
        re-consolidation (recorded, never silent).
    ``record_derivations``
        Record one provenance :class:`~repro.provenance.DerivationTree`
        per patched pair merge, so ``/v1/explain`` (and the equivalence
        suite) can count pair merges from provenance records alone.
    ``rebalance_factor``
        Incremental adds graft at the root and slowly grow a spine; when
        the tree's depth exceeds ``rebalance_factor × ⌈log₂ n⌉ + 1`` the
        registry rebuilds the balanced tree instead (a recorded rebuild,
        not a failure).  Must be ≥ 1.0.
    ``plan_cache_size``
        Maximum retained consolidated plans, evicted least-recently-used.
        0 disables the cache.
    ``admit_warnings``
        When False, a lint *warning* rejects a submission just like an
        error (the default only rejects on errors).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    event_log: Optional[str] = None
    static_validate_patches: bool = True
    record_derivations: bool = True
    rebalance_factor: float = 2.0
    plan_cache_size: int = 128
    admit_warnings: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(
                f"port must be an integer in 0..65535 (0 = ephemeral), "
                f"got {self.port!r}"
            )
        if self.rebalance_factor < 1.0:
            raise ValueError(
                f"rebalance_factor must be a float >= 1.0, got "
                f"{self.rebalance_factor!r}"
            )
        if self.plan_cache_size < 0:
            raise ValueError(
                f"plan_cache_size must be an integer >= 0 (0 disables the "
                f"cache), got {self.plan_cache_size!r}"
            )

    def evolve(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (the config is immutable)."""

        return replace(self, **changes)


def resolve_config(
    config: Optional[ExecutionConfig],
    *,
    stacklevel: int = 3,
    **legacy,
) -> ExecutionConfig:
    """Merge deprecated per-function kwargs into an :class:`ExecutionConfig`.

    ``legacy`` holds the old keyword arguments with ``None`` meaning "not
    passed".  Every explicitly passed one emits a
    :class:`DeprecationWarning` and overrides the config field of the same
    name.  Behaviour is otherwise identical to pre-config code — the shim
    tests assert byte-for-byte equal results.
    """

    resolved = config if config is not None else ExecutionConfig()
    overrides = {name: value for name, value in legacy.items() if value is not None}
    for name, value in overrides.items():
        deprecated_kwarg(name, f"{name}={value!r}", stacklevel=stacklevel)
    if overrides:
        resolved = resolved.evolve(**overrides)
    return resolved
