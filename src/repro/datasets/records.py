"""Common dataset machinery.

A :class:`Dataset` is a collection of opaque *row handles* (integers)
plus a :class:`~repro.lang.functions.FunctionTable` of accessor functions
that UDFs call on a handle (``monthly_avg_temp(row, month)``, …).  This is
exactly how the IR sees data: rows are argument values, field access is a
pure library call.

Accessor *costs* model the paper's execution economics: accessors that
aggregate or scan (string containment, yearly averages, standard
deviations) are expensive, plain field reads cheap.  The Python
implementations are O(1) dictionary lookups over values precomputed at
generation time, so the declared IR cost — which the cost semantics
charges — is decoupled from host-interpreter speed; both the cost clock
and wall-clock then reward executing *fewer IR operations*, which is the
effect consolidation produces.

All generators are seeded and deterministic: the same seed yields the same
dataset, making every benchmark run reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang.functions import FunctionTable

__all__ = ["Dataset", "zipf_sample"]


@dataclass
class Dataset:
    """Rows (opaque integer handles) plus the accessors UDFs may call."""

    name: str
    rows: list[int]
    functions: FunctionTable
    description: str = ""
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


def zipf_sample(rng: random.Random, vocabulary: int, s: float = 1.1) -> int:
    """A Zipf-distributed index in [0, vocabulary) via inverse CDF sampling.

    Word frequencies in natural-language corpora follow Zipf's law; the news
    and twitter generators use this so that containment-query selectivities
    resemble the real Reuters/Many-Eyes data the paper used.
    """

    # Precompute (and cache) the harmonic normaliser per (vocabulary, s).
    key = (vocabulary, s)
    cdf = _ZIPF_CACHE.get(key)
    if cdf is None:
        weights = [1.0 / ((i + 1) ** s) for i in range(vocabulary)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        _ZIPF_CACHE[key] = cdf
    u = rng.random()
    lo, hi = 0, vocabulary - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


_ZIPF_CACHE: dict[tuple[int, float], list[float]] = {}
