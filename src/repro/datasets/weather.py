"""Synthetic weather data (Section 6.2, Weather).

The paper generated hourly weather for two years across 500 cities, with
average hourly temperature in [-1, 10] and rainfall in [0, 200] mm.  We
generate the same population: per-city hourly series are drawn with a
seasonal sinusoid plus noise, then the per-month and per-year aggregates
the query families consume are materialised.  Accessor costs reflect that
aggregating a month of hourly data is expensive and a year more so.

Rows are city handles ``0..cities-1``.
"""

from __future__ import annotations

import math
import random

from ..lang.functions import FunctionTable, LibraryFunction
from .records import Dataset

__all__ = ["generate_weather", "MONTHS"]

MONTHS = list(range(1, 13))

_HOURS_PER_MONTH = 30 * 24


def generate_weather(cities: int = 500, years: int = 2, seed: int = 2014) -> Dataset:
    """Deterministic weather dataset with per-month / per-year aggregates."""

    rng = random.Random(seed)
    monthly_temp: dict[tuple[int, int], int] = {}
    monthly_rain: dict[tuple[int, int], int] = {}
    yearly_temp: dict[int, int] = {}
    yearly_rain: dict[int, int] = {}

    for city in range(cities):
        base = rng.uniform(1.0, 8.0)  # city's climate offset
        wet = rng.uniform(20.0, 160.0)
        temp_total = 0.0
        rain_total = 0.0
        for month in MONTHS:
            season = 4.0 * math.sin((month - 1) / 12.0 * 2 * math.pi)
            # Average the (simulated) hourly draws analytically: the mean of
            # `base + season + noise` over a month of hours is the mean plus
            # an O(1/sqrt(n)) wobble, which we draw directly.
            wobble = rng.gauss(0.0, 0.4)
            t = max(-1.0, min(10.0, base + season + wobble))
            r = max(0.0, min(200.0, wet + 40.0 * math.sin(month / 12.0 * 2 * math.pi) + rng.gauss(0, 15)))
            # Aggregates are exposed as integers (fixed-point x10 for temp).
            monthly_temp[(city, month)] = round(t * 10)
            monthly_rain[(city, month)] = round(r)
            temp_total += t * years
            rain_total += r * years
        yearly_temp[city] = round(temp_total / (12 * years) * 10)
        yearly_rain[city] = round(rain_total / years)

    functions = FunctionTable(
        [
            LibraryFunction(
                "monthly_avg_temp",
                lambda c, m: monthly_temp[(c, m)],
                cost=40,
            ),
            LibraryFunction(
                "monthly_rainfall",
                lambda c, m: monthly_rain[(c, m)],
                cost=40,
            ),
            LibraryFunction(
                "yearly_avg_temp",
                lambda c: yearly_temp[c],
                cost=150,
            ),
            LibraryFunction(
                "yearly_rainfall",
                lambda c: yearly_rain[c],
                cost=150,
            ),
        ]
    )
    return Dataset(
        name="weather",
        rows=list(range(cities)),
        functions=functions,
        description=(
            f"{cities} cities x {years} years of synthetic hourly weather, "
            "exposed through monthly/yearly aggregate accessors "
            "(temperatures are fixed-point x10 integers)"
        ),
        meta={
            "hours_simulated": cities * years * 12 * _HOURS_PER_MONTH,
            "temp_scale": 10,
        },
    )
