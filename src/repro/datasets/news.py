"""Synthetic news corpus (Section 6.2, News).

The paper used Reuters-21578 (19,043 English news articles).  We generate a
corpus with the same cardinality and Zipf-distributed vocabulary so that
word-containment selectivities match a real corpus: frequent words appear
in most articles, rare words in few.  Per-article word statistics (average
and maximum word length) are materialised at generation time.

Rows are article handles.  ``contains_word`` takes an interned word id —
the query modules expose :data:`QUERY_WORDS` with ids for the word list the
containment family samples from.
"""

from __future__ import annotations

import random

from ..lang.functions import FunctionTable, LibraryFunction
from .records import Dataset, zipf_sample

__all__ = ["generate_news", "QUERY_WORDS"]

# The containment family's word list (Section 6.2 News Q1); frequency rank
# determines selectivity through the Zipf draw below.
QUERY_WORDS = [
    "market", "oil", "trade", "bank", "profit", "shares", "grain",
    "dollar", "tonnes", "merger", "crude", "wheat", "acquisition",
]

_VOCABULARY = 5000


def _word_length(word_id: int, rng: random.Random) -> int:
    # Common (low-id) words are short, rare words longer — as in English.
    return 2 + (word_id % 5) + (1 if word_id > 200 else 0) + (word_id % 7 == 0) * 3


def generate_news(articles: int = 19043, seed: int = 21578) -> Dataset:
    rng = random.Random(seed)

    word_ids = {w: i * 37 % _VOCABULARY for i, w in enumerate(QUERY_WORDS, start=3)}
    contains: list[set[int]] = []
    avg_len_x10: list[int] = []
    max_len: list[int] = []
    word_counts: list[int] = []
    words: list[list[int]] = []

    for _ in range(articles):
        n_words = max(20, int(rng.gauss(130, 60)))
        seen: set[int] = set()
        sequence: list[int] = []
        total_len = 0
        longest = 0
        for _ in range(n_words):
            w = zipf_sample(rng, _VOCABULARY)
            seen.add(w)
            sequence.append(w)
            length = _word_length(w, rng)
            total_len += length
            longest = max(longest, length)
        contains.append(seen)
        words.append(sequence)
        word_counts.append(n_words)
        avg_len_x10.append(round(total_len / n_words * 10))
        max_len.append(longest)

    functions = FunctionTable(
        [
            # Scanning an article for a word is proportional to its length;
            # we charge a representative fixed cost for the family.
            LibraryFunction(
                "contains_word",
                lambda a, w: 1 if w in contains[a] else 0,
                cost=90,
            ),
            LibraryFunction("avg_word_length", lambda a: avg_len_x10[a], cost=120),
            LibraryFunction("max_word_length", lambda a: max_len[a], cost=120),
            LibraryFunction("word_count", lambda a: word_counts[a], cost=60),
        ]
    )
    return Dataset(
        name="news",
        rows=list(range(articles)),
        functions=functions,
        description=(
            f"{articles} synthetic articles with Zipf vocabulary "
            f"(Reuters-21578 scale); avg word length fixed-point x10"
        ),
        meta={"word_ids": word_ids, "vocabulary": _VOCABULARY, "words": words},
    )
