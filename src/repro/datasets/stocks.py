"""Synthetic stock data (Section 6.2, Stock).

The paper used Yahoo Finance history for the Nasdaq-100: 377,423 daily
rows, each with open/close/adjusted-close, high/low and volume.  Queries
filter *companies*, so rows here are company handles and the daily series
live behind aggregate accessors (average volume, maximum value, standard
deviation) computed at generation time over a seeded geometric-random-walk
price history of the same total row count.

Prices are fixed-point cents; standard deviation is likewise x100.
"""

from __future__ import annotations

import math
import random

from ..lang.functions import FunctionTable, LibraryFunction
from .records import Dataset

__all__ = ["generate_stocks"]


def generate_stocks(
    companies: int = 100, total_daily_rows: int = 377423, seed: int = 100
) -> Dataset:
    rng = random.Random(seed)
    days = max(2, total_daily_rows // companies)

    avg_volume: list[int] = []
    max_close: list[int] = []
    min_close: list[int] = []
    stddev_x100: list[int] = []
    last_close: list[int] = []

    for _ in range(companies):
        price = rng.uniform(5.0, 400.0)
        drift = rng.gauss(0.0002, 0.0004)
        vol = rng.uniform(0.005, 0.04)
        base_volume = rng.uniform(2e5, 5e7)
        closes: list[float] = []
        volumes: list[float] = []
        for _d in range(days):
            price = max(0.5, price * math.exp(drift + vol * rng.gauss(0, 1)))
            closes.append(price)
            volumes.append(base_volume * math.exp(rng.gauss(0, 0.4)))
        mean = sum(closes) / len(closes)
        var = sum((c - mean) ** 2 for c in closes) / len(closes)
        avg_volume.append(int(sum(volumes) / len(volumes)))
        max_close.append(round(max(closes) * 100))
        min_close.append(round(min(closes) * 100))
        stddev_x100.append(round(math.sqrt(var) * 100))
        last_close.append(round(closes[-1] * 100))

    functions = FunctionTable(
        [
            # Aggregations over ~3,800 daily rows per company are the
            # expensive operations in this domain.
            LibraryFunction("avg_volume", lambda c: avg_volume[c], cost=130),
            LibraryFunction("max_stock_value", lambda c: max_close[c], cost=130),
            LibraryFunction("min_stock_value", lambda c: min_close[c], cost=130),
            LibraryFunction("stddev", lambda c: stddev_x100[c], cost=200),
            LibraryFunction("last_close", lambda c: last_close[c], cost=30),
        ]
    )
    return Dataset(
        name="stock",
        rows=list(range(companies)),
        functions=functions,
        description=(
            f"{companies} companies x {days} trading days "
            f"(~{companies * days} daily rows, Nasdaq-100 scale); "
            "prices fixed-point cents"
        ),
        meta={"days": days},
    )
