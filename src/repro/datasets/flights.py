"""Synthetic flight data (Section 6.2, Flight).

The paper generated flights for the first half of November 2013: 500
airlines, 10 world cities, 12 daily flights between all city pairs, a
quarter of them domestic, with price computed by "a multiple arithmetic
progression dependent on the airline and the identifiers of the origin and
destination cities".  We reproduce exactly that price law — prices are a
deterministic arithmetic function of (airline, src, dst) — plus route
availability drawn per airline.

Rows are airline handles ``0..airlines-1``; query parameters are city
identifiers ``0..cities-1`` and price bounds.
"""

from __future__ import annotations

import random

from ..lang.functions import FunctionTable, LibraryFunction
from .records import Dataset

__all__ = ["generate_flights"]


def generate_flights(airlines: int = 500, cities: int = 10, seed: int = 2013) -> Dataset:
    rng = random.Random(seed)

    # Which city pairs each airline serves directly.
    serves: dict[int, set[tuple[int, int]]] = {}
    hub: dict[int, int] = {}
    for a in range(airlines):
        hub[a] = rng.randrange(cities)
        pairs: set[tuple[int, int]] = set()
        # Every airline serves its hub fan-out plus a random assortment.
        for c in range(cities):
            if c != hub[a]:
                pairs.add((hub[a], c))
                pairs.add((c, hub[a]))
        for _ in range(rng.randrange(4, 14)):
            s, d = rng.randrange(cities), rng.randrange(cities)
            if s != d:
                pairs.add((s, d))
        serves[a] = pairs

    def direct_price(a: int, src: int, dst: int) -> int:
        # The paper's "multiple arithmetic progression" on identifiers.
        return 60 + 13 * (a % 29) + 21 * src + 17 * dst + 7 * ((a + src * dst) % 11)

    def has_direct(a: int, src: int, dst: int) -> int:
        return 1 if (src, dst) in serves[a] else 0

    def has_connection(a: int, src: int, dst: int) -> int:
        if (src, dst) in serves[a]:
            return 1
        via = hub[a]
        return 1 if (src, via) in serves[a] and (via, dst) in serves[a] else 0

    def connecting_price(a: int, src: int, dst: int) -> int:
        if (src, dst) in serves[a]:
            return direct_price(a, src, dst)
        via = hub[a]
        return direct_price(a, src, via) + direct_price(a, via, dst) - 25

    def avg_price(a: int, src: int, dst: int) -> int:
        # Average over the 12 daily departures (deterministic fare spread).
        base = direct_price(a, src, dst)
        return base + 6  # the arithmetic fare ladder averages +6 over base

    functions = FunctionTable(
        [
            LibraryFunction("has_direct", has_direct, cost=25),
            LibraryFunction("direct_price", direct_price, cost=30),
            LibraryFunction("has_connection", has_connection, cost=60),
            LibraryFunction("connecting_price", connecting_price, cost=80),
            LibraryFunction("avg_price", avg_price, cost=120),
        ]
    )
    return Dataset(
        name="flight",
        rows=list(range(airlines)),
        functions=functions,
        description=(
            f"{airlines} airlines x {cities} cities, 12 daily flights per "
            "served pair (Nov 1-15 2013 style); prices follow the paper's "
            "arithmetic-progression law"
        ),
        meta={"cities": cities},
    )
