"""Synthetic tweet corpus (Section 6.2, Twitter).

The paper used 11 IBM Many Eyes datasets totalling 31,152 tweets in
English, Spanish and Portuguese.  We generate tweets with the same
cardinality, a language mix, a smiley count distribution, and per-tweet
sentiment/topic scores — the quantities the paper's three query families
consume.  Sentiments and topics are fixed small vocabularies addressed by
id, mirroring "a list of common sentiments, e.g. happiness".
"""

from __future__ import annotations

import random

from ..lang.functions import FunctionTable, LibraryFunction
from .records import Dataset

__all__ = ["generate_twitter", "SENTIMENTS", "TOPICS", "LANGUAGES"]

SENTIMENTS = ["happiness", "anger", "sadness", "surprise", "fear", "joy"]
TOPICS = ["movies", "sports", "politics", "music", "tech", "food", "travel"]
LANGUAGES = ["en", "es", "pt"]


def generate_twitter(tweets: int = 31152, seed: int = 1152) -> Dataset:
    rng = random.Random(seed)

    smileys: list[int] = []
    language: list[int] = []
    sentiment_scores: list[list[int]] = []
    topic_scores: list[list[int]] = []
    lengths: list[int] = []

    for _ in range(tweets):
        # Most tweets have no smiley; a long tail has several.
        s = 0
        while rng.random() < 0.35 and s < 6:
            s += 1
        smileys.append(s)
        language.append(rng.choices(range(3), weights=[0.6, 0.25, 0.15])[0])
        lengths.append(rng.randrange(10, 141))
        # Scores in [0, 100]; each tweet leans toward one sentiment/topic.
        lean_s = rng.randrange(len(SENTIMENTS))
        sentiment_scores.append(
            [
                min(100, max(0, int(rng.gauss(70 if i == lean_s else 20, 15))))
                for i in range(len(SENTIMENTS))
            ]
        )
        lean_t = rng.randrange(len(TOPICS))
        topic_scores.append(
            [
                min(100, max(0, int(rng.gauss(65 if i == lean_t else 15, 18))))
                for i in range(len(TOPICS))
            ]
        )

    functions = FunctionTable(
        [
            LibraryFunction("smiley_count", lambda t: smileys[t], cost=50),
            LibraryFunction("tweet_language", lambda t: language[t], cost=20),
            LibraryFunction("tweet_length", lambda t: lengths[t], cost=20),
            # Sentiment/topic analysis is the expensive text-mining step.
            LibraryFunction(
                "sentiment_score", lambda t, s: sentiment_scores[t][s], cost=140
            ),
            LibraryFunction("topic_score", lambda t, k: topic_scores[t][k], cost=140),
        ]
    )
    return Dataset(
        name="twitter",
        rows=list(range(tweets)),
        functions=functions,
        description=(
            f"{tweets} synthetic tweets (Many-Eyes scale), en/es/pt mix, "
            "smiley counts and per-sentiment/topic scores in [0, 100]"
        ),
        meta={"sentiments": SENTIMENTS, "topics": TOPICS},
    )
