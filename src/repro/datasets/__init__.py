"""Seeded synthetic datasets matching the paper's five evaluation domains."""

from .flights import generate_flights
from .news import QUERY_WORDS, generate_news
from .records import Dataset, zipf_sample
from .stocks import generate_stocks
from .twitter import LANGUAGES, SENTIMENTS, TOPICS, generate_twitter
from .weather import MONTHS, generate_weather
