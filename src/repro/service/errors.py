"""The service's exception vocabulary, shared by both transports.

The offline facade (:mod:`repro.api`), the registry and the HTTP client
all raise the *same* classes: a caller migrating from in-process use to
the service changes how it connects, not how it handles failures.  Each
class carries a stable ``code`` string; the HTTP server puts that code in
every error payload, and :func:`error_for` maps it back to the class on
the client side.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "RegistryError",
    "AdmissionError",
    "DuplicateQueryError",
    "UnknownQueryError",
    "error_for",
]


class ServiceError(Exception):
    """Base class for every service-surface failure."""

    code = "service"


class RegistryError(ServiceError):
    """A registry operation could not be applied."""

    code = "registry"


class AdmissionError(RegistryError):
    """A submitted query was rejected by the admission pipeline.

    ``diagnostics`` is a SARIF 2.1.0 document (a plain dict) describing
    every finding that contributed to the rejection — parse errors, lint
    errors, type errors — so tooling on either side of the wire can
    render the rejection without bespoke parsing.
    """

    code = "admission"

    def __init__(self, message: str, diagnostics: dict | None = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class DuplicateQueryError(RegistryError):
    """The pid (or one of its notification ids) is already registered."""

    code = "duplicate-query"


class UnknownQueryError(RegistryError):
    """No registered query has the requested pid."""

    code = "unknown-query"


_BY_CODE = {
    cls.code: cls
    for cls in (
        ServiceError,
        RegistryError,
        AdmissionError,
        DuplicateQueryError,
        UnknownQueryError,
    )
}


def error_for(code: str, message: str, diagnostics: dict | None = None) -> ServiceError:
    """Rebuild the typed exception a server error payload describes."""

    cls = _BY_CODE.get(code, ServiceError)
    if cls is AdmissionError:
        return AdmissionError(message, diagnostics)
    return cls(message)
