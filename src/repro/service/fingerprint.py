"""Canonical program fingerprints for the plan cache.

Two queries that differ only in local-variable names or in their program
identifier are the *same* query to the consolidator — the merge it
produces is identical up to the same renaming.  The plan cache therefore
keys on a canonical form:

* locals are alpha-renamed to ``_c0, _c1, …`` in order of first syntactic
  appearance (reads before the write in an assignment, matching the
  evaluation order);
* program identifiers (the program's own pid and every ``notify`` target)
  are renamed to ``_p0, _p1, …`` in order of first appearance, the
  program's own pid always first;
* the canonical program is printed to concrete syntax and hashed together
  with the cost-model identifier — the same program consolidated under a
  different cost model may merge differently, so it must not share a
  cache line.

:func:`plan_key` folds a whole registry's member fingerprints into one
order-independent key: a batch containing the same multiset of canonical
programs reuses the prior consolidated plan regardless of registration
order.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Iterable

from ..lang.ast import (
    Assign,
    If,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
    seq,
)
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.printer import program_to_str
from ..lang.visitors import rename_vars, subexpressions

__all__ = [
    "canonicalize",
    "cost_model_id",
    "fingerprint",
    "plan_key",
    "rename_pids",
]


def _ordered_locals(s: Stmt, out: list[str], seen: set[str]) -> None:
    """Collect local names in order of first appearance (reads first)."""

    def from_expr(e) -> None:
        for sub in subexpressions(e):
            if isinstance(sub, Var) and sub.name not in seen:
                seen.add(sub.name)
                out.append(sub.name)

    if isinstance(s, Assign):
        from_expr(s.expr)
        if s.var not in seen:
            seen.add(s.var)
            out.append(s.var)
    elif isinstance(s, Notify):
        from_expr(s.expr)
    elif isinstance(s, Seq):
        for sub in s.stmts:
            _ordered_locals(sub, out, seen)
    elif isinstance(s, If):
        from_expr(s.cond)
        _ordered_locals(s.then, out, seen)
        _ordered_locals(s.orelse, out, seen)
    elif isinstance(s, While):
        from_expr(s.cond)
        _ordered_locals(s.body, out, seen)


def _ordered_pids(s: Stmt, out: list[str], seen: set[str]) -> None:
    """Collect notify targets in order of first appearance."""

    if isinstance(s, Notify):
        if s.pid not in seen:
            seen.add(s.pid)
            out.append(s.pid)
    elif isinstance(s, Seq):
        for sub in s.stmts:
            _ordered_pids(sub, out, seen)
    elif isinstance(s, If):
        _ordered_pids(s.then, out, seen)
        _ordered_pids(s.orelse, out, seen)
    elif isinstance(s, While):
        _ordered_pids(s.body, out, seen)


def rename_pids(s: Stmt, mapping: dict[str, str]) -> Stmt:
    """Rebuild ``s`` with every ``notify`` target renamed via ``mapping``."""

    if isinstance(s, Notify):
        return Notify(mapping.get(s.pid, s.pid), s.expr)
    if isinstance(s, Seq):
        return seq(*(rename_pids(sub, mapping) for sub in s.stmts))
    if isinstance(s, If):
        return If(s.cond, rename_pids(s.then, mapping), rename_pids(s.orelse, mapping))
    if isinstance(s, While):
        return While(s.cond, rename_pids(s.body, mapping))
    if isinstance(s, (Assign, Skip)):
        return s
    return s


def canonicalize(program: Program) -> Program:
    """The alpha-renamed normal form used for fingerprinting.

    The renamings are applied simultaneously (the substitution machinery
    replaces whole subtrees in one pass), so canonical target names may
    collide with source names without corruption.
    """

    names: list[str] = []
    _ordered_locals(program.body, names, set())
    body = rename_vars(program.body, {n: f"_c{i}" for i, n in enumerate(names)})

    pids: list[str] = [program.pid]
    _ordered_pids(program.body, pids, {program.pid})
    pid_map = {p: f"_p{i}" for i, p in enumerate(pids)}
    body = rename_pids(body, pid_map)
    return Program(pid_map[program.pid], program.params, body)


def cost_model_id(cost_model: CostModel = DEFAULT_COST_MODEL) -> str:
    """A short stable identifier for one cost model's weights."""

    text = ",".join(f"{k}={v}" for k, v in sorted(asdict(cost_model).items()))
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def fingerprint(
    program: Program, cost_model: CostModel = DEFAULT_COST_MODEL
) -> str:
    """Canonical fingerprint of one query under one cost model."""

    text = program_to_str(canonicalize(program))
    payload = f"{cost_model_id(cost_model)}\n{','.join(program.params)}\n{text}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def plan_key(fingerprints: Iterable[str]) -> str:
    """Order-independent key for a whole registry's membership."""

    return hashlib.sha256("|".join(sorted(fingerprints)).encode()).hexdigest()[:16]
