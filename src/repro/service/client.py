"""A typed stdlib client for the consolidation service.

:class:`Client` wraps :mod:`http.client` (no third-party dependencies)
and speaks the JSON protocol of :mod:`repro.service.server`.  Two
promises make it feel like the in-process facade:

* every response is a frozen result dataclass, not a raw dict;
* every error response is rebuilt into the *same* exception type the
  offline :mod:`repro.api` facade raises — an
  :class:`~repro.service.errors.AdmissionError` from ``client.register``
  carries the same SARIF ``diagnostics`` whether the linter ran in your
  process or on the server.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import Any, Optional
from urllib.parse import quote

from .errors import ServiceError, error_for

__all__ = [
    "Client",
    "HealthInfo",
    "PlanInfo",
    "PatchInfo",
    "QueryInfo",
    "RegisterResult",
    "RunInfo",
    "UnregisterResult",
]


@dataclass(frozen=True)
class QueryInfo:
    """One registered query as the server reports it."""

    pid: str
    tenant: str
    fingerprint: str
    seq: int


@dataclass(frozen=True)
class PlanInfo:
    """The consolidated plan: fingerprint, membership, shape, text."""

    fingerprint: str
    pids: tuple[str, ...]
    queries: int
    depth: int
    program: str


@dataclass(frozen=True)
class PatchInfo:
    """How the plan absorbed the last mutation."""

    action: str
    pair_merges: int
    fallback: Optional[str] = None


@dataclass(frozen=True)
class RegisterResult:
    query: QueryInfo
    plan: Optional[PlanInfo]
    patch: Optional[PatchInfo]


@dataclass(frozen=True)
class UnregisterResult:
    removed: str
    plan: Optional[PlanInfo]


@dataclass(frozen=True)
class RunInfo:
    """One consolidated execution: notification buckets plus costs."""

    buckets: dict[str, list[Any]]
    udf_cost: int
    io_cost: int
    overhead_cost: int
    total_cost: int


@dataclass(frozen=True)
class HealthInfo:
    status: str
    queries: int


def _plan(doc: Optional[dict]) -> Optional[PlanInfo]:
    if doc is None:
        return None
    return PlanInfo(
        fingerprint=doc["fingerprint"],
        pids=tuple(doc["pids"]),
        queries=doc["queries"],
        depth=doc["depth"],
        program=doc["program"],
    )


def _patch(doc: Optional[dict]) -> Optional[PatchInfo]:
    if doc is None:
        return None
    return PatchInfo(
        action=doc["action"],
        pair_merges=doc["pair_merges"],
        fallback=doc.get("fallback"),
    )


def _query(doc: dict) -> QueryInfo:
    return QueryInfo(
        pid=doc["pid"],
        tenant=doc["tenant"],
        fingerprint=doc["fingerprint"],
        seq=doc["seq"],
    )


class Client:
    """Talk to one ``repro serve`` instance.

    >>> client = Client("127.0.0.1", 8765)
    >>> client.register("program q1(row) { notify q1 (row > 10); }")
    RegisterResult(query=QueryInfo(pid='q1', …), plan=PlanInfo(…), …)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"{method} {path}: server sent invalid JSON "
                    f"(status {response.status}): {raw[:200]!r}"
                ) from exc
            if response.status >= 400:
                raise error_for(
                    doc.get("error", "service"),
                    doc.get("message", f"{method} {path} failed "
                                       f"with status {response.status}"),
                    diagnostics=doc.get("diagnostics"),
                )
            return doc
        finally:
            conn.close()

    # -- operations --------------------------------------------------------

    def health(self) -> HealthInfo:
        doc = self._request("GET", "/healthz")
        return HealthInfo(status=doc["status"], queries=doc["queries"])

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def queries(self) -> list[QueryInfo]:
        doc = self._request("GET", "/v1/queries")
        return [_query(q) for q in doc["queries"]]

    def register(self, program: str, tenant: str = "default") -> RegisterResult:
        """Submit one query (concrete syntax or restricted Python).

        Raises :class:`~repro.service.errors.AdmissionError` (with SARIF
        diagnostics), :class:`DuplicateQueryError` or
        :class:`RegistryError` exactly as the offline facade would.
        """

        doc = self._request(
            "POST", "/v1/queries", {"program": program, "tenant": tenant}
        )
        return RegisterResult(
            query=_query(doc["query"]),
            plan=_plan(doc.get("plan")),
            patch=_patch(doc.get("patch")),
        )

    def unregister(self, pid: str) -> UnregisterResult:
        doc = self._request("DELETE", f"/v1/queries/{quote(pid, safe='')}")
        return UnregisterResult(removed=doc["removed"], plan=_plan(doc.get("plan")))

    def plan(self) -> PlanInfo:
        return _plan(self._request("GET", "/v1/plan"))  # type: ignore[return-value]

    def run(self, rows: list) -> RunInfo:
        doc = self._request("POST", "/v1/run", {"rows": rows})
        metrics = doc["metrics"]
        return RunInfo(
            buckets=doc["buckets"],
            udf_cost=metrics["udf_cost"],
            io_cost=metrics["io_cost"],
            overhead_cost=metrics["overhead_cost"],
            total_cost=metrics["total_cost"],
        )

    def explain(self) -> dict:
        return self._request("GET", "/v1/explain")
