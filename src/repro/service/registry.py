"""The dynamic query registry: consolidation as a long-running service.

A :class:`QueryRegistry` owns the mutable state the offline pipeline
never needed: which queries are currently registered (per tenant), the
live divide-and-conquer merge tree, a plan cache keyed by canonical
fingerprints, and the append-only event log that makes all of it
replayable.  Mutations take one path::

    admit ──► duplicate / precondition checks ──► journal append
          ──► plan cache probe ──► incremental patch ──► (fallback: rebuild)

* **Admission** (:mod:`repro.service.admission`) rejects malformed or
  lint-failing queries with SARIF diagnostics before any state changes.
* **Plan cache**: the registry keys each consolidated plan by the
  multiset of member fingerprints (:func:`repro.service.fingerprint.plan_key`).
  Re-registering an alpha-equivalent batch — same queries, new names or
  pids — reuses the prior merge tree wholesale; only the notify targets
  are structurally renamed, no pair is re-consolidated.
* **Incremental patching** (:mod:`repro.consolidation.incremental`): a
  cache miss on add/remove of one query patches the merge tree instead of
  re-running ``consolidate_all``.  A failed or uncertified patch — and a
  tree grown too spindly by repeated root grafts — falls back to a full
  rebuild, recorded on the patch result and counted in telemetry.
* **Event log** (:mod:`repro.service.events`): every applied mutation is
  journalled first; a registry constructed over an existing journal
  replays it through this same path, so restart recovers byte-identical
  plan fingerprints.

All public methods are safe under concurrent callers (one re-entrant
lock serialises mutations and plan reads — consolidation itself is the
expensive part and is already parallelised internally via
``ExecutionConfig.executor``).

Telemetry lands under ``service_*``: registrations, admission rejects,
plan-cache hits/misses, incremental patches, fallbacks, rebuilds, pair
merges, and patch/rebuild seconds histograms.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import RLock
from typing import Iterable, Optional, Sequence

from ..config import ExecutionConfig, ServiceConfig
from ..consolidation.divide_conquer import MergeNode
from ..consolidation.incremental import (
    PatchError,
    PatchResult,
    add_query,
    rebuild,
    remove_query,
)
from ..lang.ast import Program
from ..lang.functions import FunctionTable
from ..lang.printer import program_to_str
from ..lang.visitors import notified_pids
from ..naiad.linq import from_collection
from .admission import admit
from .errors import DuplicateQueryError, RegistryError, UnknownQueryError
from .events import EventLog
from .fingerprint import fingerprint, plan_key, rename_pids

__all__ = ["RegisteredQuery", "PlanSnapshot", "QueryRegistry"]


@dataclass(frozen=True)
class RegisteredQuery:
    """One admitted query's registry entry."""

    pid: str
    tenant: str
    program: Program
    fingerprint: str
    seq: int

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "seq": self.seq,
        }


@dataclass(frozen=True)
class PlanSnapshot:
    """The current consolidated plan, as served by ``/v1/plan``."""

    fingerprint: str
    pids: tuple[str, ...]
    queries: int
    depth: int
    program_text: str

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "pids": list(self.pids),
            "queries": self.queries,
            "depth": self.depth,
            "program": self.program_text,
        }


@dataclass
class _CachedPlan:
    """One plan-cache line: the tree plus its leaf identities."""

    tree: MergeNode
    leaves: tuple[tuple[str, str], ...]  # (fingerprint, pid) per leaf


def _relabel_tree(node: MergeNode, pid_map: dict[str, str]) -> MergeNode:
    """A structurally-renamed copy of a cached tree for new pids.

    Cached plans are keyed by canonical fingerprints, so a hit may serve
    a batch whose queries are alpha-equivalent but carry different pids.
    Renaming every ``notify`` target (and each node's pid label) is a
    pure tree rebuild — no consolidation, no SMT.
    """

    program = node.program
    renamed = Program(
        "&".join(pid_map.get(p, p) for p in program.pid.split("&")),
        program.params,
        rename_pids(program.body, pid_map),
    )
    return MergeNode(
        renamed,
        _relabel_tree(node.left, pid_map) if node.left is not None else None,
        _relabel_tree(node.right, pid_map) if node.right is not None else None,
    )


class QueryRegistry:
    """Dynamic multi-tenant registry with an incrementally-patched plan."""

    def __init__(
        self,
        functions: FunctionTable,
        *,
        config: ExecutionConfig | None = None,
        service: ServiceConfig | None = None,
        event_log: Optional[str] = None,
    ) -> None:
        self.functions = functions
        self.config = config or ExecutionConfig()
        self.service = service or ServiceConfig()
        self.telemetry = self.config.telemetry
        self._queries: "OrderedDict[str, RegisteredQuery]" = OrderedDict()
        self._tree: Optional[MergeNode] = None
        self._plan_cache: "OrderedDict[str, _CachedPlan]" = OrderedDict()
        self._lock = RLock()
        self._seq = 0
        self._log: Optional[EventLog] = None
        self._replaying = False
        self.last_patch: Optional[PatchResult] = None
        self.stats = {
            "registered_total": 0,
            "unregistered_total": 0,
            "admission_rejects_total": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "incremental_patches": 0,
            "full_rebuilds": 0,
            "patch_fallbacks": 0,
            "pair_merges_total": 0,
            "planner_merges_total": 0,
            "planner_skips_total": 0,
            "planner_mispredictions_total": 0,
        }
        log_path = event_log if event_log is not None else self.service.event_log
        if log_path is not None:
            existing = EventLog.read(log_path)
            self._log = EventLog(log_path)
            if existing:
                self._replay(existing)

    # -- replay ------------------------------------------------------------

    def _replay(self, events) -> None:
        """Re-apply a journal through the ordinary mutation path."""

        self._replaying = True
        try:
            for event in events:
                if event.op == "register":
                    entry = self.register(event.program, tenant=event.tenant)
                    if event.fingerprint and entry.fingerprint != event.fingerprint:
                        raise RegistryError(
                            f"event log replay diverged at seq {event.seq}: "
                            f"query {event.pid!r} replayed with fingerprint "
                            f"{entry.fingerprint}, journal says {event.fingerprint}"
                        )
                elif event.op == "unregister":
                    self.unregister(event.pid)
                else:
                    raise RegistryError(
                        f"event log contains unknown op {event.op!r} at "
                        f"seq {event.seq}"
                    )
                self._seq = max(self._seq, event.seq)
        finally:
            self._replaying = False

    # -- mutations ---------------------------------------------------------

    def register(
        self, query: Program | str, tenant: str = "default"
    ) -> RegisteredQuery:
        """Admit and register one query, patching the plan incrementally."""

        decision = self._admit(query)
        program = decision.program
        with self._lock:
            if program.pid in self._queries:
                raise DuplicateQueryError(
                    f"query id {program.pid!r} is already registered"
                )
            new_pids = notified_pids(program.body) | {program.pid}
            for other in self._queries.values():
                taken = notified_pids(other.program.body) | {other.pid}
                overlap = new_pids & taken
                if overlap:
                    raise DuplicateQueryError(
                        f"query {program.pid!r} notifies ids already owned by "
                        f"{other.pid!r}: {sorted(overlap)}"
                    )
            if self._queries:
                first = next(iter(self._queries.values())).program
                if program.params != first.params:
                    raise RegistryError(
                        f"query {program.pid!r} takes inputs {program.params}, "
                        f"but this registry consolidates over {first.params}"
                    )
            fp = fingerprint(program, self.config.cost_model)
            seq = self._journal(
                "register",
                program.pid,
                tenant=tenant,
                program=program_to_str(program),
                fingerprint=fp,
            )
            entry = RegisteredQuery(program.pid, tenant, program, fp, seq)
            self._queries[program.pid] = entry
            try:
                self._apply_add(program)
            except Exception:
                # The plan must never desynchronise from the membership.
                del self._queries[program.pid]
                raise
            self._bump("registered_total", "service_registered_total")
            return entry

    def unregister(self, pid: str) -> None:
        """Remove one query, patching only the leaf's root path."""

        with self._lock:
            if pid not in self._queries:
                raise UnknownQueryError(f"no registered query has id {pid!r}")
            self._journal("unregister", pid)
            entry = self._queries.pop(pid)
            try:
                self._apply_remove(entry)
            except Exception:
                self._queries[pid] = entry
                raise
            self._bump("unregistered_total", "service_unregistered_total")

    def _admit(self, query: Program | str):
        try:
            return admit(
                query,
                self.functions,
                admit_warnings=self.service.admit_warnings,
            )
        except Exception:
            self._bump("admission_rejects_total", "service_admission_rejects_total")
            raise

    def _bump(self, stat: str, metric: str) -> None:
        self.stats[stat] += 1
        if self.telemetry.enabled:
            self.telemetry.counter(metric).inc()

    def _journal(self, op: str, pid: str, **fields) -> int:
        self._seq += 1
        if self._log is not None and not self._replaying:
            return self._log.append(op, pid, **fields).seq
        return self._seq

    # -- plan maintenance --------------------------------------------------

    def _current_key(self) -> str:
        return plan_key(q.fingerprint for q in self._queries.values())

    def _cache_store(self) -> None:
        if self._tree is None or self.service.plan_cache_size == 0:
            return
        key = self._current_key()
        leaves = tuple(
            (self._queries[pid].fingerprint, pid)
            for pid in self._tree.leaf_pids()
        )
        self._plan_cache[key] = _CachedPlan(self._tree, leaves)
        self._plan_cache.move_to_end(key)
        while len(self._plan_cache) > self.service.plan_cache_size:
            self._plan_cache.popitem(last=False)

    def _cache_probe(self) -> bool:
        """Serve the current membership from the plan cache if possible."""

        if not self._queries:
            self._tree = None
            return True
        key = self._current_key()
        cached = self._plan_cache.get(key)
        if cached is None:
            self._bump("plan_cache_misses", "service_plan_cache_misses_total")
            return False
        # Match cached leaves to current pids fingerprint-by-fingerprint;
        # same-fingerprint queries are alpha-equivalent, so any pairing
        # within a fingerprint class is sound.
        wanted: dict[str, list[str]] = {}
        for entry in self._queries.values():
            wanted.setdefault(entry.fingerprint, []).append(entry.pid)
        pid_map: dict[str, str] = {}
        for fp, old_pid in cached.leaves:
            pid_map[old_pid] = wanted[fp].pop(0)
        self._tree = _relabel_tree(cached.tree, pid_map)
        self._plan_cache.move_to_end(key)
        self._bump("plan_cache_hits", "service_plan_cache_hits_total")
        self._cache_store()
        return True

    def _apply_add(self, program: Program) -> None:
        if self._cache_probe():
            return
        started = time.perf_counter()
        try:
            patch = add_query(
                self._tree,
                program,
                self.functions,
                self.config.cost_model,
                static_validate=self.service.static_validate_patches,
                record=self.service.record_derivations,
                telemetry=self.telemetry,
            )
        except PatchError as exc:
            patch = self._fallback_rebuild("add", str(exc))
        else:
            if patch.pair_merges:
                self._count_patch(patch)
            if self._needs_rebalance(patch.tree):
                patch = self._fallback_rebuild(
                    "add",
                    f"rebalance: depth {patch.tree.depth()} exceeded the "
                    f"policy bound for {len(self._queries)} queries",
                )
        patch.seconds = time.perf_counter() - started
        self._install(patch)

    def _apply_remove(self, entry: RegisteredQuery) -> None:
        if self._cache_probe():
            self.last_patch = None
            return
        started = time.perf_counter()
        try:
            patch = remove_query(
                self._tree,
                entry.pid,
                self.functions,
                self.config.cost_model,
                static_validate=self.service.static_validate_patches,
                record=self.service.record_derivations,
                telemetry=self.telemetry,
            )
        except (PatchError, ValueError) as exc:
            patch = self._fallback_rebuild("remove", str(exc))
        else:
            self._count_patch(patch)
        patch.seconds = time.perf_counter() - started
        self._install(patch)

    def _fallback_rebuild(self, action: str, reason: str) -> PatchResult:
        """Full re-consolidation, recorded as the patch's fallback."""

        programs = [q.program for q in self._queries.values()]
        tree, report = rebuild(
            programs,
            self.functions,
            self.config.cost_model,
            config=self.config,
            provenance=self.service.record_derivations,
            telemetry=self.telemetry,
        )
        self.stats["full_rebuilds"] += 1
        self.stats["patch_fallbacks"] += 1
        self.stats["pair_merges_total"] += report.pair_consolidations
        for decision in report.planner_decisions:
            if decision["merged"]:
                self.stats["planner_merges_total"] += 1
            else:
                self.stats["planner_skips_total"] += 1
            if decision["mispredicted"]:
                self.stats["planner_mispredictions_total"] += 1
        if self.telemetry.enabled:
            self.telemetry.counter("service_full_rebuilds_total").inc()
            self.telemetry.counter("service_pair_merges_total").inc(
                report.pair_consolidations
            )
        return PatchResult(
            tree=tree,
            action=action,
            pair_merges=report.pair_consolidations,
            validations=list(report.validations),
            derivations=list(report.derivations),
            patched_pids=[tree.program.pid] if tree is not None else [],
            fallback=reason,
        )

    def _count_patch(self, patch: PatchResult) -> None:
        self.stats["incremental_patches"] += 1
        self.stats["pair_merges_total"] += patch.pair_merges
        if self.telemetry.enabled:
            self.telemetry.counter("service_incremental_patches_total").inc()
            self.telemetry.counter("service_pair_merges_total").inc(
                patch.pair_merges
            )

    def _install(self, patch: PatchResult) -> None:
        self._tree = patch.tree
        self.last_patch = patch
        self._cache_store()
        if self.telemetry.enabled:
            self.telemetry.histogram("service_patch_seconds").observe(patch.seconds)

    def _needs_rebalance(self, tree: Optional[MergeNode]) -> bool:
        if tree is None:
            return False
        n = len(self._queries)
        if n < 4:
            return False
        bound = self.service.rebalance_factor * math.ceil(math.log2(n)) + 1
        return tree.depth() > bound

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries)

    def pids(self) -> list[str]:
        with self._lock:
            return list(self._queries)

    def queries(self) -> list[RegisteredQuery]:
        with self._lock:
            return list(self._queries.values())

    def get(self, pid: str) -> RegisteredQuery:
        with self._lock:
            if pid not in self._queries:
                raise UnknownQueryError(f"no registered query has id {pid!r}")
            return self._queries[pid]

    @property
    def tree(self) -> Optional[MergeNode]:
        return self._tree

    def plan(self) -> Optional[PlanSnapshot]:
        """The current consolidated plan (``None`` while empty)."""

        with self._lock:
            if self._tree is None:
                return None
            return PlanSnapshot(
                fingerprint=self._current_key(),
                pids=tuple(self._queries),
                queries=len(self._queries),
                depth=self._tree.depth(),
                program_text=program_to_str(self._tree.program),
            )

    def run(self, rows: Sequence[object]):
        """Execute the consolidated plan over ``rows`` (a RunResult)."""

        with self._lock:
            if self._tree is None:
                raise RegistryError("no queries are registered; nothing to run")
            tree, pids = self._tree, list(self._queries)
        query = from_collection(rows, config=self.config).where_consolidated(
            tree.program, pids, self.functions
        )
        return query.run(self.config)

    def metrics_doc(self) -> dict:
        """The ``/metrics`` document: counters plus planner/calibration info.

        Counters come straight from ``stats``; the configured planner name
        rides along, and when a calibrated model is installed its age,
        fit timestamp, and provenance (``fit`` vs ``uniform``) are
        reported so operators can alert on staleness.
        """

        with self._lock:
            doc: dict = dict(self.stats)
            doc["planner"] = self.config.planner
            calibration = self.config.calibration
            if calibration is not None:
                doc["calibration_staleness_seconds"] = round(
                    calibration.staleness_seconds(), 3
                )
                doc["calibration_fitted_at"] = calibration.fitted_at
                doc["calibration_source"] = calibration.source
            return doc

    def explain(self) -> dict:
        """A JSON-friendly account of the plan and how it got here."""

        from ..provenance import derivation_summary

        with self._lock:
            doc: dict = {
                "queries": len(self._queries),
                "plan_fingerprint": self._current_key() if self._queries else None,
                "tree": self._tree.shape() if self._tree is not None else None,
                "depth": self._tree.depth() if self._tree is not None else 0,
                "cache": {
                    "size": len(self._plan_cache),
                    "hits": self.stats["plan_cache_hits"],
                    "misses": self.stats["plan_cache_misses"],
                },
                "counters": dict(self.stats),
            }
            if self.last_patch is not None:
                patch = self.last_patch
                doc["last_patch"] = {
                    "action": patch.action,
                    "pair_merges": patch.pair_merges,
                    "patched_pids": patch.patched_pids,
                    "fallback": patch.fallback,
                    "seconds": round(patch.seconds, 6),
                    "certified": all(v.certified for v in patch.validations),
                    "derivations": derivation_summary(patch.derivations),
                }
            return doc
