"""The stdlib HTTP front of the consolidation service (``repro serve``).

A thin JSON layer over :class:`repro.service.registry.QueryRegistry` —
every route body is one registry call, so the offline facade
(:mod:`repro.api`) and the online service cannot drift:

========  =======================  =============================================
method    path                     registry call
========  =======================  =============================================
GET       ``/healthz``             liveness + membership count
GET       ``/metrics``             counters + planner/calibration info (JSON, or
                                   Prometheus text when Accept asks for
                                   ``text/plain``)
GET       ``/v1/queries``          :meth:`QueryRegistry.queries`
POST      ``/v1/queries``          :meth:`QueryRegistry.register`
DELETE    ``/v1/queries/<pid>``    :meth:`QueryRegistry.unregister`
GET       ``/v1/plan``             :meth:`QueryRegistry.plan`
POST      ``/v1/run``              :meth:`QueryRegistry.run`
GET       ``/v1/explain``          :meth:`QueryRegistry.explain`
========  =======================  =============================================

Errors travel as ``{"error": <code>, "message": …, "diagnostics": …}``
where ``error`` is the stable code of the corresponding
:mod:`repro.service.errors` exception — the client rebuilds the *same*
exception types the offline facade raises, so callers handle admission
failures identically in-process and over the wire.  Status mapping:
admission 422, duplicates 409, unknown queries 404, other registry
errors 400, everything unexpected 500.

Built on :class:`http.server.ThreadingHTTPServer`: no third-party
dependencies, one daemon thread per connection, registry methods do
their own locking.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..config import ExecutionConfig, ServiceConfig
from ..lang.functions import FunctionTable
from ..telemetry.sinks import prometheus_text
from .errors import (
    AdmissionError,
    DuplicateQueryError,
    RegistryError,
    ServiceError,
    UnknownQueryError,
)
from .registry import QueryRegistry

__all__ = ["ConsolidationServer", "serve"]

_STATUS = {
    AdmissionError: 422,
    DuplicateQueryError: 409,
    UnknownQueryError: 404,
    RegistryError: 400,
    ServiceError: 400,
}


def _status_for(exc: Exception) -> int:
    for kind, status in _STATUS.items():
        if isinstance(exc, kind):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request; the registry lives on the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing ----------------------------------------------------------

    @property
    def registry(self) -> QueryRegistry:
        return self.server.registry  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def _send(self, status: int, doc: dict) -> None:
        payload = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_metrics(self) -> None:
        """``/metrics``: JSON by default, Prometheus text on request.

        A client whose ``Accept`` header mentions ``text/plain`` (what
        Prometheus scrapers send) gets the exposition format rendered by
        :func:`repro.telemetry.sinks.prometheus_text`; everything else
        keeps the original JSON document.  Integer stats become
        ``service_``-prefixed counters, float stats gauges, and string
        fields (planner name, calibration source) ride on a labelled
        info gauge.
        """

        doc = self.registry.metrics_doc()
        accept = self.headers.get("Accept") or ""
        if "text/plain" not in accept:
            self._send(200, doc)
            return
        counters, gauges = [], []
        info_labels = {}
        for name in sorted(doc):
            value = doc[name]
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                counters.append(
                    {"name": f"service_{name}", "labels": {}, "value": value}
                )
            elif isinstance(value, float):
                gauges.append(
                    {"name": f"service_{name}", "labels": {}, "value": value}
                )
            else:
                info_labels[name] = str(value)
        gauges.append({"name": "service_info", "labels": info_labels, "value": 1})
        text = prometheus_text(
            {"counters": counters, "gauges": gauges, "histograms": []}
        )
        self._send_text(200, text, "text/plain; version=0.0.4; charset=utf-8")

    def _send_error(self, exc: Exception) -> None:
        if isinstance(exc, ServiceError):
            doc = {"error": exc.code, "message": str(exc)}
            if isinstance(exc, AdmissionError) and exc.diagnostics:
                doc["diagnostics"] = exc.diagnostics
        else:
            doc = {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
        self._send(_status_for(exc), doc)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            doc = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    def _plan_doc(self) -> Optional[dict]:
        plan = self.registry.plan()
        return plan.to_dict() if plan is not None else None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        try:
            if self.path == "/healthz":
                self._send(
                    200, {"status": "ok", "queries": len(self.registry)}
                )
            elif self.path == "/metrics":
                self._send_metrics()
            elif self.path == "/v1/queries":
                self._send(
                    200,
                    {"queries": [q.to_dict() for q in self.registry.queries()]},
                )
            elif self.path == "/v1/plan":
                plan = self._plan_doc()
                if plan is None:
                    raise UnknownQueryError("no queries are registered; no plan")
                self._send(200, plan)
            elif self.path == "/v1/explain":
                self._send(200, self.registry.explain())
            else:
                self._send(404, {"error": "not-found", "message": self.path})
        except Exception as exc:  # noqa: BLE001 - every error becomes JSON
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802
        try:
            if self.path == "/v1/queries":
                body = self._body()
                program = body.get("program")
                if not isinstance(program, str) or not program.strip():
                    raise ServiceError(
                        "POST /v1/queries needs a non-empty 'program' string"
                    )
                entry = self.registry.register(
                    program, tenant=body.get("tenant", "default")
                )
                patch = self.registry.last_patch
                self._send(
                    201,
                    {
                        "query": entry.to_dict(),
                        "plan": self._plan_doc(),
                        "patch": {
                            "action": patch.action,
                            "pair_merges": patch.pair_merges,
                            "fallback": patch.fallback,
                        }
                        if patch is not None
                        else None,
                    },
                )
            elif self.path == "/v1/run":
                body = self._body()
                rows = body.get("rows")
                if not isinstance(rows, list):
                    raise ServiceError("POST /v1/run needs a 'rows' list")
                result = self.registry.run(rows)
                self._send(
                    200,
                    {
                        "buckets": {
                            pid: records
                            for pid, records in sorted(result.buckets.items())
                        },
                        "metrics": {
                            "udf_cost": result.metrics.udf_cost,
                            "io_cost": result.metrics.io_cost,
                            "overhead_cost": result.metrics.overhead_cost,
                            "total_cost": result.metrics.total_cost,
                        },
                    },
                )
            else:
                self._send(404, {"error": "not-found", "message": self.path})
        except Exception as exc:  # noqa: BLE001
            self._send_error(exc)

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            prefix = "/v1/queries/"
            if self.path.startswith(prefix) and len(self.path) > len(prefix):
                pid = self.path[len(prefix):]
                self.registry.unregister(pid)
                self._send(200, {"removed": pid, "plan": self._plan_doc()})
            else:
                self._send(404, {"error": "not-found", "message": self.path})
        except Exception as exc:  # noqa: BLE001
            self._send_error(exc)


class ConsolidationServer(ThreadingHTTPServer):
    """A registry with an HTTP front door.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.port`` (the smoke harness and tests depend on this).
    """

    daemon_threads = True

    def __init__(
        self,
        functions: FunctionTable,
        *,
        config: ExecutionConfig | None = None,
        service: ServiceConfig | None = None,
        registry: QueryRegistry | None = None,
        verbose: bool = False,
    ) -> None:
        self.registry = registry or QueryRegistry(
            functions, config=config, service=service
        )
        self.verbose = verbose
        svc = service or (registry.service if registry is not None else ServiceConfig())
        super().__init__((svc.host, svc.port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def serve(
    functions: FunctionTable,
    *,
    config: ExecutionConfig | None = None,
    service: ServiceConfig | None = None,
    registry: QueryRegistry | None = None,
    verbose: bool = False,
) -> ConsolidationServer:
    """Build a bound (not yet running) server; call ``serve_forever``."""

    return ConsolidationServer(
        functions,
        config=config,
        service=service,
        registry=registry,
        verbose=verbose,
    )
