"""The append-only event log: registry state as a replayable journal.

Every successful registry mutation appends exactly one JSON line::

    {"seq": 3, "op": "register", "pid": "q4", "tenant": "acme",
     "program": "program q4(row) { … }", "fingerprint": "ab12…"}
    {"seq": 4, "op": "unregister", "pid": "q2"}

The log is the service's only durable state: on restart the registry
replays it through the ordinary ``register``/``unregister`` path —
admission, plan cache and incremental patching included — so the rebuilt
plan-cache fingerprints are byte-identical to the pre-restart ones (the
CI ``service-smoke`` job asserts exactly this).  Programs are serialised
as concrete Figure-1 syntax; the parser/printer round-trip is exact.

Appends are flushed and fsync'd before the mutation is acknowledged, the
usual write-ahead discipline.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One registry mutation."""

    seq: int
    op: str  # "register" | "unregister"
    pid: str
    tenant: str = ""
    program: str = ""  # concrete syntax, register events only
    fingerprint: str = ""

    def to_json(self) -> str:
        doc = {k: v for k, v in asdict(self).items() if v != ""}
        return json.dumps(doc, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Event":
        doc = json.loads(line)
        return cls(
            seq=int(doc["seq"]),
            op=doc["op"],
            pid=doc["pid"],
            tenant=doc.get("tenant", ""),
            program=doc.get("program", ""),
            fingerprint=doc.get("fingerprint", ""),
        )


class EventLog:
    """Append-only JSONL journal of registry mutations."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._next_seq = 1
        existing = self.read(self.path)
        if existing:
            self._next_seq = existing[-1].seq + 1
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def read(path: str | Path) -> list[Event]:
        """Every event currently in the journal (missing file → empty)."""

        path = Path(path)
        if not path.exists():
            return []
        events = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(Event.from_json(line))
        return events

    def append(
        self,
        op: str,
        pid: str,
        tenant: str = "",
        program: str = "",
        fingerprint: str = "",
    ) -> Event:
        event = Event(
            seq=self._next_seq,
            op=op,
            pid=pid,
            tenant=tenant,
            program=program,
            fingerprint=fingerprint,
        )
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._next_seq += 1
        return event

    def events(self) -> Iterator[Event]:
        yield from self.read(self.path)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
