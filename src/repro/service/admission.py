"""The admission pipeline: every query earns its way into the registry.

A tenant submits a query as one of

* a :class:`~repro.lang.ast.Program` (in-process callers),
* concrete Figure-1 syntax (``program q1(row) { … }``), or
* restricted-Python source (``def notify(row): …``), translated by the
  existing frontend.

Admission then runs, in order: parsing/translation, the frontend type
checker (:func:`repro.lang.visitors.check_program`) and the full static
linter (:mod:`repro.analysis.static.lint`).  Any *error*-severity finding
rejects the query with an :class:`~repro.service.errors.AdmissionError`
whose ``diagnostics`` is the same SARIF 2.1.0 document ``repro lint
--format sarif`` emits — one vocabulary for offline linting and online
rejection.  Warnings are admitted (the registry's policy knob
``ServiceConfig.admit_warnings`` can tighten this) but always travel on
the decision so callers can log them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..analysis.static import Finding, LintReport, lint_program, to_sarif
from ..frontend import TranslationError, translate_source
from ..lang.ast import Program
from ..lang.functions import FunctionTable
from ..lang.parser import ParseError, parse_program
from ..lang.visitors import TypeError_, check_program
from .errors import AdmissionError

__all__ = ["AdmissionDecision", "admit"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The admitted program plus everything the pipeline found."""

    program: Program
    findings: tuple[Finding, ...] = ()

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    def diagnostics(self) -> dict:
        """The findings as a SARIF 2.1.0 document (a plain dict)."""

        return _sarif(self.program.pid, self.findings)


def _sarif(pid: str, findings) -> dict:
    report = LintReport(program=pid, findings=tuple(findings))
    return json.loads(json.dumps(to_sarif([report])))


def _reject(pid: str, findings) -> AdmissionError:
    errors = [f for f in findings if f.severity == "error"]
    summary = "; ".join(f"{f.rule}: {f.message}" for f in errors[:3])
    if len(errors) > 3:
        summary += f" (+{len(errors) - 3} more)"
    return AdmissionError(
        f"query {pid!r} rejected by admission: {summary}",
        diagnostics=_sarif(pid, findings),
    )


def _parse(source: str, functions: FunctionTable, pid: str | None) -> Program:
    """Concrete Figure-1 syntax or restricted Python, by inspection."""

    text = source.lstrip()
    if text.startswith("def "):
        try:
            return translate_source(source, pid or "q", functions=functions)
        except (TranslationError, SyntaxError) as exc:
            raise AdmissionError(
                f"query {pid or 'q'!r} rejected by admission: "
                f"translation failed: {exc}",
                diagnostics=_sarif(
                    pid or "q",
                    [
                        Finding(
                            rule="translation-error",
                            severity="error",
                            message=str(exc),
                            program=pid or "q",
                        )
                    ],
                ),
            ) from exc
    try:
        return parse_program(source)
    except ParseError as exc:
        raise AdmissionError(
            f"query {pid or '?'!r} rejected by admission: parse error: {exc}",
            diagnostics=_sarif(
                pid or "?",
                [
                    Finding(
                        rule="parse-error",
                        severity="error",
                        message=str(exc),
                        program=pid or "?",
                    )
                ],
            ),
        ) from exc


def admit(
    query: Program | str,
    functions: FunctionTable,
    *,
    pid: str | None = None,
    admit_warnings: bool = True,
) -> AdmissionDecision:
    """Validate one submitted query; raises :class:`AdmissionError`.

    Returns the parsed/translated program together with every lint
    finding.  ``admit_warnings=False`` hardens the policy: a warning then
    rejects just like an error.
    """

    program = query if isinstance(query, Program) else _parse(query, functions, pid)

    findings: list[Finding] = []
    try:
        check_program(program, functions)
    except TypeError_ as exc:
        findings.append(
            Finding(
                rule="type-error",
                severity="error",
                message=str(exc),
                program=program.pid,
            )
        )
    report = lint_program(program, functions)
    findings.extend(report.findings)

    rejects = [f for f in findings if f.severity == "error"]
    if not admit_warnings:
        rejects += [f for f in findings if f.severity == "warning"]
    if rejects:
        raise _reject(program.pid, findings)
    return AdmissionDecision(program=program, findings=tuple(findings))
