"""repro.service — consolidation as a long-running, multi-tenant service.

The offline pipeline consolidates a batch and exits.  This package keeps
the consolidated plan *alive*: tenants register and unregister Figure-1
UDF queries dynamically over HTTP (or in-process), and the service keeps
one merged program up to date without re-consolidating the world on every
change.

* :mod:`~repro.service.admission` — every submission runs the frontend
  (parse or Python translation), the type checker and the full static
  linter; rejections carry SARIF 2.1.0 diagnostics, the same document
  ``repro lint --format sarif`` emits.
* :mod:`~repro.service.fingerprint` — canonical (alpha-renamed) program
  fingerprints and the order-independent plan key for the plan cache.
* :mod:`~repro.service.registry` — the core :class:`QueryRegistry`: plan
  cache, incremental merge-tree patching
  (:mod:`repro.consolidation.incremental`) with recorded fallback to
  full re-consolidation, and the append-only event log
  (:mod:`~repro.service.events`) that makes state replayable on restart.
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only HTTP server (``repro serve``) and a typed client that maps
  server error payloads back to the shared exception vocabulary
  (:mod:`~repro.service.errors`).

Quick start, in-process::

    from repro.service import QueryRegistry
    registry = QueryRegistry(functions)
    registry.register("program q1(row) { notify q1 (row > 10); }")
    result = registry.run(rows)          # buckets per registered pid

Over the wire::

    server = serve(functions)            # ServiceConfig(port=0) → ephemeral
    client = Client(port=server.port)
    client.register(source, tenant="acme")
"""

from .admission import AdmissionDecision, admit
from .client import (
    Client,
    HealthInfo,
    PatchInfo,
    PlanInfo,
    QueryInfo,
    RegisterResult,
    RunInfo,
    UnregisterResult,
)
from .errors import (
    AdmissionError,
    DuplicateQueryError,
    RegistryError,
    ServiceError,
    UnknownQueryError,
    error_for,
)
from .events import Event, EventLog
from .fingerprint import canonicalize, fingerprint, plan_key
from .registry import PlanSnapshot, QueryRegistry, RegisteredQuery
from .server import ConsolidationServer, serve

__all__ = [
    "AdmissionDecision",
    "AdmissionError",
    "Client",
    "ConsolidationServer",
    "DuplicateQueryError",
    "Event",
    "EventLog",
    "HealthInfo",
    "PatchInfo",
    "PlanInfo",
    "PlanSnapshot",
    "QueryInfo",
    "QueryRegistry",
    "RegisteredQuery",
    "RegisterResult",
    "RegistryError",
    "RunInfo",
    "ServiceError",
    "UnknownQueryError",
    "UnregisterResult",
    "admit",
    "canonicalize",
    "error_for",
    "fingerprint",
    "plan_key",
    "serve",
]
