"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``consolidate FILE [FILE ...]``
    Parse programs in the concrete syntax (see ``repro.lang.parser``),
    consolidate them, and print the merged program.  ``--domain`` supplies
    one of the five evaluation domains' function tables so that UDFs may
    call its accessors; ``--verify N`` re-checks Theorem 1 on the first N
    dataset rows.

``run FILE --args name=value[,name=value...]``
    Run a single program on the given arguments and print its
    notifications, cost and per-query latencies.

``lint [FILE ...]``
    Run the static UDF linter (:mod:`repro.analysis.static.lint`) over
    programs from files, or — with ``--domain`` and no files — over that
    domain's generated query families.  ``--format {text,json,sarif}``
    selects the rendering (``--json`` is kept as an alias for
    ``--format json``; ``sarif`` emits a SARIF 2.1.0 document for
    code-scanning UIs); ``--validate`` additionally consolidates each
    batch and runs the abstract-interpretation translation validator over
    every merged pair; ``--prefilter`` synthesizes the reject-early guard
    for every program and reports its shape and certificate (a guard that
    *degraded* surfaces as a warning).  Exit status: 0 clean, 1 warnings
    only, 2 errors or a refuted validation.

``prefilter``
    Prefilter synthesis report (:mod:`repro.analysis.prefilter`): place
    every generated query of a domain on the vectorizability ladder
    (straight-line / branch-free / bounded-loop / unbounded), synthesize
    its sound reject-early guard and print the certified ``phi`` per
    program.  ``--consolidate`` additionally merges each family batch and
    synthesizes the guard for the consolidated program.

``figure9`` / ``figure10``
    Regenerate the paper's evaluation figures (textual rendering).
    ``figure9 --domain NAME`` (repeatable) restricts to chosen domains.

``latency`` — run the Section 8 latency experiment on a stock batch.

``explain``
    Derivation explain-plan (:mod:`repro.provenance`): consolidate one
    pair from a domain's generated batch with provenance recording on,
    execute it instrumented, and render every calculus-rule application,
    SMT entailment (with its Ψ context), cross-simplification rewrite and
    predicted-vs-actual operator cost as a text tree, JSON document or a
    self-contained HTML report (``--format``, ``--out``).

``serve``
    Run the consolidation service (:mod:`repro.service`): a stdlib HTTP
    server where tenants register/unregister Figure-1 UDF queries
    dynamically.  Admission runs the linter and rejects with SARIF
    diagnostics; equivalent re-registrations hit a plan cache keyed by
    canonical fingerprints; single add/remove patches the merge tree
    incrementally (with recorded fallback to full re-consolidation); an
    optional ``--event-log`` journal makes state replayable on restart.
    ``--port 0`` binds an ephemeral port, printed as ``serving on
    http://…`` at startup.

``profile``
    Run a domain's generated query families under the sampling
    micro-profiler (:mod:`repro.profiling`) and append schema-versioned
    samples — static per-operation units against observed wall seconds,
    tagged with backend and domain — to a JSONL trace
    (``--trace-out``).  ``--sample-every`` sets the sampling stride;
    the chosen ``--backend`` decides which execution path is observed.

``calibrate``
    Fit a :class:`~repro.profiling.model.CalibratedCostModel` from a
    profiling trace by least squares and print its diagnostics (R²,
    residuals, per-operation weight/stderr/support/confidence).
    ``--out`` writes the model JSON that ``--calibration`` flags accept;
    fitting the same trace twice yields byte-identical files.

``fuzz``
    Differential fuzzing (:mod:`repro.testing`): generate random typed UDF
    batches and run the oracle battery (interpreter vs compiled backend,
    ``whereMany`` vs ``whereConsolidated``, executor parity, cost bounds,
    static validation) on each.  Failures are delta-debugged to minimal
    reproducers; ``--emit-corpus DIR`` writes them as replayable corpus
    files.  Exit status: 0 when every case passes, 1 otherwise.

Observability
-------------

Two top-level flags work on every command:

``--metrics-out PATH``
    Capture metrics for the whole invocation and write one JSON artifact:
    ``{"command", "rows", "metrics", "spans"}`` — per-operator dataflow
    counters, consolidation rule counts, SMT query counts and latency
    histogram, compiled-backend cache stats.  ``PATH`` ending in ``.prom``
    writes Prometheus text exposition instead.

``--trace``
    Additionally record nested spans (dataflow runs, consolidation
    batches/pairs) into the artifact.
"""

from __future__ import annotations

import argparse
import sys

from .config import EXECUTORS, ExecutionConfig
from .consolidation import ConsolidationOptions, check_soundness, consolidate_all
from .lang import FunctionTable, parse_program, program_to_str
from .lang.compile import BACKENDS, DEFAULT_BACKEND, make_runner
from .lang.parser import ParseError
from .telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["main"]


def _calibration_from_args(args):
    """Load the ``--calibration`` model file, if the command has the flag."""

    path = getattr(args, "calibration", None)
    if path is None:
        return None
    from .profiling import CalibratedCostModel

    try:
        return CalibratedCostModel.load(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load calibration model {path}: {exc}")


def _config_from_args(args) -> ExecutionConfig:
    """One ExecutionConfig for the whole CLI invocation."""

    telemetry = getattr(args, "_telemetry", NULL_TELEMETRY)
    return ExecutionConfig(
        backend=args.backend,
        executor=getattr(args, "executor", None) or "serial",
        max_workers=getattr(args, "max_workers", None) or 4,
        telemetry=telemetry,
        profiler=getattr(args, "_profiler", None),
        planner=getattr(args, "planner", None) or "related",
        calibration=_calibration_from_args(args),
        smt_budget_seconds=getattr(args, "smt_budget", None),
    )


def _domain_dataset(name: str | None):
    if name is None:
        return None
    from . import datasets as ds

    makers = {
        "weather": lambda: ds.generate_weather(cities=100),
        "flight": lambda: ds.generate_flights(airlines=100),
        "news": lambda: ds.generate_news(articles=500),
        "twitter": lambda: ds.generate_twitter(tweets=500),
        "stock": lambda: ds.generate_stocks(companies=40, total_daily_rows=20_000),
    }
    if name not in makers:
        raise SystemExit(f"unknown domain {name!r}; choose from {sorted(makers)}")
    return makers[name]()


def _parse_args_option(text: str) -> dict:
    out: dict = {}
    if not text:
        return out
    for part in text.split(","):
        if "=" not in part:
            raise SystemExit(f"bad --args entry {part!r}; expected name=value")
        name, value = part.split("=", 1)
        try:
            out[name.strip()] = int(value)
        except ValueError:
            out[name.strip()] = value
    return out


def _load_programs(paths):
    programs = []
    for path in paths:
        try:
            with open(path) as handle:
                programs.append(parse_program(handle.read()))
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}")
        except ParseError as exc:
            raise SystemExit(f"{path}: {exc}")
    return programs


def cmd_consolidate(args) -> int:
    from . import api

    programs = _load_programs(args.files)
    dataset = _domain_dataset(args.domain)
    functions = dataset.functions if dataset else FunctionTable()
    options = ConsolidationOptions(
        if_rule_mode=args.if_rule_mode,
        enable_loop_rules=not args.no_loops,
        use_smt=not args.no_smt,
    )
    report = api.consolidate(
        programs, functions, options=options, config=_config_from_args(args)
    )
    print(program_to_str(report.program))
    print(
        f"\n# consolidated {report.num_inputs} programs in {report.duration:.3f}s "
        f"({report.pair_consolidations} pair merges, depth {report.tree_depth}, "
        f"executor {report.executor})",
        file=sys.stderr,
    )
    if args.verify and dataset:
        inputs = [{programs[0].params[0]: r} for r in dataset.rows[: args.verify]]
        sound = check_soundness(programs, report.program, functions, inputs)
        status = "OK" if sound.ok else f"FAILED: {sound.violations[:2]}"
        print(
            f"# verification on {sound.inputs_checked} rows: {status} "
            f"(speedup {sound.speedup:.2f}x)",
            file=sys.stderr,
        )
        if not sound.ok:
            return 1
    return 0


def _prefilter_findings(batch, functions):
    """One informational (or degraded-warning) lint finding per program."""

    from .analysis.prefilter import synthesize_prefilter
    from .analysis.static import Finding
    from .lang.printer import expr_to_str

    findings = []
    for program in batch:
        pre = synthesize_prefilter(program, functions)
        if pre.certificate == "degraded":
            findings.append(
                Finding(
                    rule="prefilter-degraded",
                    severity="warning",
                    message=f"prefilter degraded to true: {pre.degraded_reason}",
                    program=program.pid,
                    snippet=f"shape={pre.shape}",
                )
            )
        else:
            findings.append(
                Finding(
                    rule="prefilter",
                    severity="note",
                    message=(
                        f"shape={pre.shape} certificate={pre.certificate} "
                        f"phi={expr_to_str(pre.phi)}"
                    ),
                    program=program.pid,
                )
            )
    return findings


def cmd_lint(args) -> int:
    import json

    from .analysis.static import lint_programs

    dataset = _domain_dataset(args.domain)
    functions = dataset.functions if dataset else FunctionTable()
    fmt = "json" if args.json and args.format == "text" else args.format

    # Batches are linted together but consolidated separately: families
    # reuse pids, and consolidation requires disjoint notification ids.
    batches: list[list] = []
    if args.files:
        batches.append(_load_programs(args.files))
    elif dataset:
        from .queries import DOMAIN_QUERIES

        module = DOMAIN_QUERIES[args.domain]
        families = [args.family] if args.family else list(module.FAMILY_NAMES)
        for family in families:
            batches.append(module.make_batch(dataset, family, n=args.n, seed=args.seed))
    else:
        raise SystemExit("nothing to lint: pass FILES or --domain")

    reports = []
    for batch in batches:
        batch_reports = lint_programs(batch, functions)
        if args.prefilter:
            for report, finding in zip(
                batch_reports, _prefilter_findings(batch, functions)
            ):
                report.findings = report.findings + (finding,)
        reports.extend(batch_reports)

    validations = []
    if args.validate:
        options = ConsolidationOptions(static_validate=True)
        cfg = _config_from_args(args)
        for batch in batches:
            if len(batch) < 2:
                continue
            validations.extend(
                consolidate_all(batch, functions, options=options, config=cfg).validations
            )

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    certified = sum(1 for v in validations if v.certified)

    if fmt == "sarif":
        from .analysis.static import render_sarif

        print(render_sarif(reports))
    elif fmt == "json":
        doc = {
            "programs": len(reports),
            "errors": errors,
            "warnings": warnings,
            "reports": [r.to_dict() for r in reports if r.findings],
            "validations": [v.to_dict() for v in validations],
        }
        print(json.dumps(doc, indent=2))
    else:
        for r in reports:
            for f in r.findings:
                where = f" [{f.snippet}]" if f.snippet else ""
                print(f"{r.program}: {f.severity}: {f.rule}: {f.message}{where}")
        summary = f"# linted {len(reports)} programs: {errors} errors, {warnings} warnings"
        if validations:
            summary += f"; {certified}/{len(validations)} pair consolidations certified"
        print(summary, file=sys.stderr)

    if errors or any(v.refuted for v in validations):
        return 2
    if warnings:
        return 1
    return 0


def cmd_prefilter(args) -> int:
    import json

    from .analysis.prefilter import synthesize_prefilter
    from .queries import DOMAIN_QUERIES

    dataset = _domain_dataset(args.domain)
    module = DOMAIN_QUERIES[args.domain]
    families = [args.family] if args.family else list(module.FAMILY_NAMES)
    rows: list[dict] = []
    for family in families:
        batch = module.make_batch(dataset, family, n=args.n, seed=args.seed)
        targets = list(batch)
        if args.consolidate and len(batch) >= 2:
            merged = consolidate_all(
                batch, dataset.functions, config=_config_from_args(args)
            )
            targets.append(merged.program)
        for program in targets:
            pre = synthesize_prefilter(program, dataset.functions)
            row = pre.to_dict()
            row["family"] = family
            rows.append(row)
    if args.json:
        print(json.dumps({"domain": args.domain, "rows": rows}, indent=2))
    else:
        for row in rows:
            line = (
                f"{row['family']:>8s}  {row['pid']:16s} {row['shape']:13s} "
                f"{row['certificate']:8s} phi = {row['phi']}"
            )
            if row["degraded_reason"]:
                line += f"  ({row['degraded_reason']})"
            print(line)
        useful = sum(1 for r in rows if not r["trivial"])
        print(
            f"# synthesized {len(rows)} prefilters for {args.domain}: "
            f"{useful} non-trivial",
            file=sys.stderr,
        )
    args._artifact["rows"] = rows
    return 0


def cmd_run(args) -> int:
    (program,) = _load_programs([args.file])
    dataset = _domain_dataset(args.domain)
    functions = dataset.functions if dataset else FunctionTable()
    bindings = _parse_args_option(args.args)
    cfg = _config_from_args(args)
    runner = make_runner(
        program, functions, backend=cfg.backend, telemetry=cfg.telemetry
    )
    result = runner(bindings)
    for pid in sorted(result.notifications):
        print(
            f"{pid}: {str(result.notifications[pid]).lower()} "
            f"(latency {result.notification_costs.get(pid, '?')})"
        )
    print(f"cost: {result.cost}", file=sys.stderr)
    return 0


def cmd_figure9(args) -> int:
    from .experiments import render_figure9, run_figure9
    from .experiments.figure9 import DOMAIN_ORDER

    domains = args.domain or DOMAIN_ORDER
    report = run_figure9(
        n_udfs=args.n_udfs,
        scale=args.scale,
        seed=args.seed,
        domains=domains,
        config=_config_from_args(args),
    )
    print(render_figure9(report))
    args._artifact["rows"] = [
        dict(r.row(), executor=r.executor, metrics=r.metrics) for r in report.results
    ]
    return 0


def cmd_figure10(args) -> int:
    from dataclasses import asdict

    from .experiments import render_figure10, run_figure10

    sweep = tuple(int(x) for x in args.sweep.split(","))
    report = run_figure10(
        sweep=sweep,
        articles=args.articles,
        seed=args.seed,
        config=_config_from_args(args),
    )
    print(render_figure10(report))
    args._artifact["rows"] = [asdict(p) for p in report.points]
    return 0


def cmd_latency(args) -> int:
    from .datasets import generate_stocks
    from .experiments import run_latency_experiment
    from .queries import DOMAIN_QUERIES

    dataset = generate_stocks(companies=30, total_daily_rows=5000)
    programs = DOMAIN_QUERIES["stock"].make_batch(dataset, "Q1", n=args.n_udfs, seed=args.seed)
    priority = (programs[args.priority_index].pid,)
    report = run_latency_experiment(
        dataset, programs, priority=priority, row_limit=30, config=_config_from_args(args)
    )
    for key, value in report.summary().items():
        print(f"{key:24s} {value}")
    args._artifact["rows"] = [report.summary()]
    return 0


def cmd_explain(args) -> int:
    from .provenance import explain_batch, render_html, render_json, render_text

    try:
        i, j = (int(x) for x in args.pair.split(","))
    except ValueError:
        raise SystemExit(f"bad --pair {args.pair!r}; expected two indices like 0,1")
    try:
        report = explain_batch(
            args.domain,
            pair=(i, j),
            family=args.family,
            n=args.n,
            seed=args.seed,
            rows=args.rows,
            telemetry=args._telemetry,
            planner=args.planner or "related",
            calibration=_calibration_from_args(args),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    renderers = {"text": render_text, "json": render_json, "html": render_html}
    rendered = renderers[args.format](report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
        print(f"# explain report written to {args.out}", file=sys.stderr)
    else:
        print(rendered)
    args._artifact["rows"] = [
        {
            "pair": list(report.pair_pids),
            "merged": report.merged_pid,
            "rule_counts": report.rule_counts,
            "mispredicted": [
                a.operator for a in report.attributions if a.mispredicted
            ],
        }
    ]
    return 0


def cmd_profile(args) -> int:
    from .naiad.linq import from_collection
    from .profiling import Profiler, TraceStore
    from .queries import DOMAIN_QUERIES

    dataset = _domain_dataset(args.domain)
    module = DOMAIN_QUERIES[args.domain]
    families = [args.family] if args.family else list(module.FAMILY_NAMES)
    store = TraceStore(args.trace_out)
    profiler = Profiler(
        store, domain=args.domain, sample_every=args.sample_every
    )
    args._profiler = profiler
    cfg = _config_from_args(args)
    rows = list(dataset.rows[: args.rows])
    invocations = 0
    with store:
        for family in families:
            batch = module.make_batch(dataset, family, n=args.n, seed=args.seed)
            for program in batch:
                query = from_collection(rows, config=cfg).where(
                    program, dataset.functions
                )
                query.run(cfg)
                invocations += len(rows)
    print(
        f"# profiled {invocations} UDF invocations across {len(families)} "
        f"families on backend {cfg.backend}: {profiler.samples_taken} samples "
        f"appended to {args.trace_out}",
        file=sys.stderr,
    )
    args._artifact["rows"] = [
        {
            "trace": args.trace_out,
            "samples": profiler.samples_taken,
            "invocations": invocations,
            "backend": cfg.backend,
            "families": families,
        }
    ]
    return 0


def cmd_calibrate(args) -> int:
    import json

    from .profiling import fit_calibration, read_trace

    samples, skipped = read_trace(args.trace_in)
    if skipped:
        print(f"# skipped {skipped} incompatible trace line(s)", file=sys.stderr)
    if not samples:
        raise SystemExit(f"no usable samples in {args.trace_in}")
    model = fit_calibration(samples)
    if args.out:
        model.save(args.out)
        print(f"# calibrated model written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(model.to_dict(), indent=2, sort_keys=True))
    else:
        backends = ", ".join(
            f"{name}={count}" for name, count in sorted(model.backends.items())
        )
        print(f"fitted {model.samples} samples ({backends})")
        print(
            f"r2 {model.r2:.4f}  residual abs mean {model.residual_abs_mean:.3e}s "
            f"max {model.residual_abs_max:.3e}s"
        )
        for kind in sorted(model.weights):
            print(
                f"  {kind:8s} {model.weights[kind]:.3e} s/unit  "
                f"stderr {model.stderr.get(kind, 0.0):.1e}  "
                f"support {int(model.support.get(kind, 0)):5d}  "
                f"confidence {model.confidence(kind)}"
            )
    args._artifact["rows"] = [model.to_dict()]
    return 0


def cmd_fuzz(args) -> int:
    from .testing import run_fuzz

    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        schemas=args.schema or None,
        size=args.size,
        time_budget=args.time_budget,
        emit_corpus=args.emit_corpus,
        executors=tuple(args.executors.split(",")),
        shrink=not args.no_shrink,
        progress=lambda line: print(line, file=sys.stderr),
    )
    per_schema = ", ".join(f"{k}={v}" for k, v in sorted(report.per_schema.items()))
    print(
        f"# fuzzed {report.cases_run} cases in {report.elapsed:.1f}s "
        f"({per_schema}): {len(report.failures)} failure(s)",
        file=sys.stderr,
    )
    for failure in report.failures:
        print(f"FAIL {failure.spec}: oracles {', '.join(failure.oracles)}")
        for detail in failure.details:
            print(f"  {detail}")
        print(f"  minimized to {failure.shrunk_size} AST nodes")
        if failure.corpus_path:
            print(f"  corpus file: {failure.corpus_path}")
    args._artifact["rows"] = [
        {
            "spec": str(f.spec),
            "oracles": f.oracles,
            "shrunk_size": f.shrunk_size,
            "corpus_path": f.corpus_path,
        }
        for f in report.failures
    ]
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from .config import ServiceConfig
    from .service import serve

    dataset = _domain_dataset(args.domain)
    functions = dataset.functions if dataset else FunctionTable()
    service = ServiceConfig(
        host=args.host,
        port=args.port,
        event_log=args.event_log,
        static_validate_patches=not args.no_validate_patches,
        rebalance_factor=args.rebalance_factor,
        plan_cache_size=args.plan_cache_size,
        admit_warnings=not args.strict_admission,
    )
    server = serve(
        functions,
        config=_config_from_args(args),
        service=service,
        verbose=args.verbose,
    )
    registry = server.registry
    if len(registry):
        print(
            f"# replayed {len(registry)} queries from {args.event_log}",
            file=sys.stderr,
        )
    # The harness greps this exact line for the bound (possibly ephemeral)
    # port, so keep its shape stable.
    print(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Consolidation of queries with UDFs (PLDI 2014 reproduction)"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=DEFAULT_BACKEND,
        help="UDF execution backend (default: %(default)s; 'compiled' falls "
        "back to the interpreter, with a logged warning, if translation "
        "fails; 'vectorized' executes column batches and degrades to the "
        "compiled per-row path for programs the shape classifier can't bound)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="capture metrics and write one JSON artifact (or Prometheus "
        "text exposition when PATH ends in .prom)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also record nested spans into the metrics artifact",
    )
    # The observability flags are also accepted after the subcommand
    # (``repro figure9 --metrics-out m.json``); SUPPRESS keeps the
    # subparser from clobbering a value given before it.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--metrics-out", metavar="PATH", default=argparse.SUPPRESS)
    common.add_argument(
        "--trace", action="store_true", default=argparse.SUPPRESS
    )
    common.add_argument(
        "--backend", choices=BACKENDS, default=argparse.SUPPRESS
    )
    # Planner knobs shared by every command that consolidates.
    from .config import PLANNERS

    planner_opts = argparse.ArgumentParser(add_help=False)
    planner_opts.add_argument(
        "--planner",
        choices=PLANNERS,
        default=None,
        help="pair-selection strategy (default: related; 'calibrated' orders "
        "pairs by predicted savings under a calibrated cost model and skips "
        "predicted-unprofitable merges)",
    )
    planner_opts.add_argument(
        "--calibration",
        metavar="MODEL.json",
        default=None,
        help="calibrated cost model from 'repro calibrate' (the calibrated "
        "planner falls back to uniform weights without one)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "consolidate",
        help="merge programs from files",
        parents=[common, planner_opts],
    )
    p.add_argument("files", nargs="+")
    p.add_argument("--domain", help="evaluation domain supplying library functions")
    p.add_argument("--if-rule-mode", default="heuristic", choices=["heuristic", "always_if3", "always_if5"])
    p.add_argument("--no-loops", action="store_true", help="disable Loop 2/3 fusion")
    p.add_argument("--no-smt", action="store_true", help="syntactic value numbering only")
    p.add_argument("--verify", type=int, default=0, metavar="N", help="check Theorem 1 on N rows")
    p.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="how pair merges run: serial (default), thread, or process",
    )
    p.add_argument("--max-workers", type=int, default=None, help="pool size for thread/process executors")
    p.add_argument(
        "--smt-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="calibrated planner only: total SMT wall-time budget, spent on "
        "the highest-predicted-savings pairs first",
    )
    p.set_defaults(fn=cmd_consolidate)

    p = sub.add_parser("lint", help="static UDF linter (+ optional translation validation)", parents=[common])
    p.add_argument("files", nargs="*")
    p.add_argument("--domain", help="evaluation domain supplying library functions")
    p.add_argument("--family", help="lint one generated family (default: all)")
    p.add_argument("--n", type=int, default=50, help="queries per generated family")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="rendering (default: %(default)s; sarif emits a SARIF 2.1.0 "
        "document for code-scanning UIs)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (alias for --format json)",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="also consolidate each batch and statically validate every pair",
    )
    p.add_argument(
        "--prefilter",
        action="store_true",
        help="synthesize the reject-early guard per program and report its "
        "shape/certificate (degraded guards become warnings)",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "prefilter",
        help="prefilter synthesis + vectorizability report",
        parents=[common],
    )
    p.add_argument(
        "--domain",
        required=True,
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="evaluation domain supplying the query batches",
    )
    p.add_argument("--family", help="one generated family (default: all)")
    p.add_argument("--n", type=int, default=6, help="queries per family")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--consolidate",
        action="store_true",
        help="also consolidate each family batch and synthesize the merged "
        "program's guard",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_prefilter)

    p = sub.add_parser("run", help="run one program", parents=[common])
    p.add_argument("file")
    p.add_argument("--domain")
    p.add_argument("--args", default="", help="comma-separated name=value bindings")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("figure9", help="regenerate Figure 9", parents=[common])
    p.add_argument("--n-udfs", type=int, default=50)
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--domain",
        action="append",
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="restrict to one domain (repeatable; default: all five)",
    )
    p.set_defaults(fn=cmd_figure9)

    p = sub.add_parser("figure10", help="regenerate Figure 10", parents=[common])
    p.add_argument("--sweep", default="10,25,50,100")
    p.add_argument("--articles", type=int, default=400)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_figure10)

    p = sub.add_parser("latency", help="Section 8 latency experiment", parents=[common])
    p.add_argument("--n-udfs", type=int, default=10)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--priority-index", type=int, default=7)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser(
        "explain",
        help="derivation explain-plan for one consolidated pair",
        parents=[common, planner_opts],
    )
    p.add_argument(
        "--domain",
        required=True,
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="evaluation domain supplying the query batch",
    )
    p.add_argument("--pair", default="0,1", help="two batch indices, e.g. 0,1")
    p.add_argument("--family", default="Mix", help="query family (default: %(default)s)")
    p.add_argument("--n", type=int, default=8, help="batch size to draw the pair from")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--rows", type=int, default=200, help="dataset rows for the instrumented run"
    )
    p.add_argument(
        "--format",
        choices=["text", "json", "html"],
        default="text",
        help="rendering (default: %(default)s)",
    )
    p.add_argument("--out", metavar="PATH", help="write the report to PATH instead of stdout")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser(
        "profile",
        help="sample UDF executions into a profiling trace",
        parents=[common],
    )
    p.add_argument(
        "--domain",
        required=True,
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="evaluation domain supplying the query batches",
    )
    p.add_argument(
        "--trace-out",
        required=True,
        metavar="PATH",
        help="JSONL trace file samples are appended to (calibrate reads it)",
    )
    p.add_argument("--family", help="one generated family (default: all)")
    p.add_argument("--n", type=int, default=4, help="queries per family")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--rows", type=int, default=500, help="dataset rows run per query"
    )
    p.add_argument(
        "--sample-every",
        type=int,
        default=8,
        metavar="K",
        help="time every K-th invocation (default: %(default)s)",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "calibrate",
        help="fit a calibrated cost model from a profiling trace",
        parents=[common],
    )
    p.add_argument(
        "--trace-in",
        required=True,
        metavar="PATH",
        help="JSONL trace written by 'repro profile'",
    )
    p.add_argument(
        "--out",
        metavar="MODEL.json",
        help="write the fitted model (consumable via --calibration)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing of the whole pipeline", parents=[common]
    )
    p.add_argument("--seed", type=int, default=0, help="base seed (case i uses seed+i)")
    p.add_argument("--cases", type=int, default=100, help="number of generated batches")
    p.add_argument(
        "--schema",
        action="append",
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="restrict to one schema (repeatable; default: round-robin all five)",
    )
    p.add_argument("--size", type=int, default=3, help="base program size knob")
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop early (without failing) after this much wall time",
    )
    p.add_argument(
        "--emit-corpus",
        metavar="DIR",
        default=None,
        help="write each minimized failure as a corpus file into DIR",
    )
    p.add_argument(
        "--executors",
        default="serial,thread",
        help="comma-separated consolidate_all executors to cross-check "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures raw, without delta-debugging them first",
    )
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the consolidation service (dynamic query registry over HTTP)",
        parents=[common, planner_opts],
    )
    p.add_argument(
        "--domain",
        choices=["weather", "flight", "news", "twitter", "stock"],
        help="evaluation domain supplying library functions (default: none)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default: %(default)s; 0 asks the OS for an "
        "ephemeral port, printed on startup)",
    )
    p.add_argument(
        "--event-log",
        metavar="PATH",
        help="append-only registry journal; replayed on startup so restarts "
        "recover the same plan fingerprints",
    )
    p.add_argument(
        "--no-validate-patches",
        action="store_true",
        help="skip the static translation validator on incremental patches",
    )
    p.add_argument(
        "--rebalance-factor",
        type=float,
        default=2.0,
        help="rebuild the merge tree when its depth exceeds this multiple "
        "of the balanced depth (default: %(default)s)",
    )
    p.add_argument(
        "--plan-cache-size",
        type=int,
        default=128,
        help="retained consolidated plans, LRU-evicted (0 disables)",
    )
    p.add_argument(
        "--strict-admission",
        action="store_true",
        help="reject submissions on lint warnings, not only errors",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="how full-rebuild pair merges run (default: serial)",
    )
    p.add_argument("--max-workers", type=int, default=None)
    p.set_defaults(fn=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args._telemetry = (
        Telemetry.capture(trace=args.trace)
        if (args.metrics_out or args.trace)
        else NULL_TELEMETRY
    )
    args._artifact = {"command": args.command}
    status = args.fn(args)
    if args.metrics_out:
        _write_metrics_artifact(args.metrics_out, args._telemetry, args._artifact)
    return status


def _write_metrics_artifact(path: str, telemetry: Telemetry, artifact: dict) -> None:
    import json

    if path.endswith(".prom"):
        from .telemetry import PrometheusTextSink

        PrometheusTextSink(path).export(telemetry.snapshot())
    else:
        doc = dict(artifact)
        doc.update(telemetry.snapshot())
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    print(f"# metrics written to {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
