"""Frontend diagnostics."""

from __future__ import annotations

__all__ = ["TranslationError"]


class TranslationError(Exception):
    """The Python function falls outside the translatable subset.

    The message carries the offending construct and source location so UDF
    authors can adjust; everything the paper's UDFs need (assignments,
    arithmetic, comparisons, boolean logic, if/elif/else, while, early
    returns, accessor calls) is inside the subset.
    """
