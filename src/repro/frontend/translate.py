"""Translating restricted Python functions into IR programs.

The paper's UDFs are "well-behaved" C# functions: deterministic,
side-effect free, calling library accessors over the input row.  This
module provides the same authoring convenience for Python — a filter is an
ordinary function::

    def cheap_united(fi, bound=200):
        if price(fi) >= bound:
            return False
        return to_lower(airline_name(fi)) == "united"

    program = translate_udf(cheap_united, pid="q7", consts={"bound": 150})

and is translated by ``ast`` introspection into the Figure 1 language.

Supported subset
----------------
* statements: assignment to locals (including ``+=``/``-=``/``*=``),
  ``if``/``elif``/``else``, ``while``, ``return`` (anywhere — early returns
  are linearised by pushing the continuation into non-returning branches),
  ``pass``;
* expressions: int/str/bool literals, parameter and local names, ``+ - *``,
  unary ``-``, comparisons (including chains like ``0 <= x < 12``),
  ``and``/``or``/``not``, calls ``f(e...)`` to library functions, and
  method/attribute sugar — ``row.price`` and ``row.price()`` both become
  the accessor call ``price(row)``.

Query *parameters* (the per-instance constants of a query family) are
declared as extra function parameters and bound via ``consts=...``; the
first parameter is always the row handle.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Mapping

from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    SKIP,
    Stmt,
    StrConst,
    Var,
    While,
    seq,
)
from ..lang.functions import FunctionTable
from .errors import TranslationError

__all__ = ["translate_udf", "translate_source"]

_CMP_MAP = {
    ast.Lt: lambda a, b: Cmp("<", a, b),
    ast.LtE: lambda a, b: Cmp("<=", a, b),
    ast.Gt: lambda a, b: Cmp("<", b, a),
    ast.GtE: lambda a, b: Cmp("<=", b, a),
    ast.Eq: lambda a, b: Cmp("=", a, b),
    ast.NotEq: lambda a, b: Not(Cmp("=", a, b)),
}

_BINOP_MAP = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}


def _fail(node: ast.AST, message: str) -> TranslationError:
    line = getattr(node, "lineno", "?")
    return TranslationError(f"line {line}: {message}")


class _Translator:
    def __init__(
        self,
        pid: str,
        row_param: str,
        consts: Mapping[str, object],
        functions: FunctionTable | None,
    ) -> None:
        self.pid = pid
        self.row_param = row_param
        self.consts = dict(consts)
        self.functions = functions
        self.locals: set[str] = set()

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return BoolConst(v)
            if isinstance(v, int):
                return IntConst(v)
            if isinstance(v, str):
                return StrConst(v)
            raise _fail(node, f"unsupported literal {v!r}")
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.BinOp):
            op = _BINOP_MAP.get(type(node.op))
            if op is None:
                raise _fail(node, f"unsupported operator {type(node.op).__name__}")
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                operand = self.expr(node.operand)
                if isinstance(operand, IntConst):
                    return IntConst(-operand.value)
                return BinOp("-", IntConst(0), operand)
            if isinstance(node.op, ast.Not):
                return Not(self.expr(node.operand))
            raise _fail(node, f"unsupported unary {type(node.op).__name__}")
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            result = self.expr(node.values[0])
            for value in node.values[1:]:
                result = BoolOp(op, result, self.expr(value))
            return result
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            # row.price  ==>  price(row)   (field access as accessor call)
            return Call(node.attr, (self.expr(node.value),))
        raise _fail(node, f"unsupported expression {type(node).__name__}")

    def _name(self, node: ast.Name) -> Expr:
        name = node.id
        if name in self.consts:
            value = self.consts[name]
            if isinstance(value, bool):
                return BoolConst(value)
            if isinstance(value, int):
                return IntConst(value)
            if isinstance(value, str):
                return StrConst(value)
            raise _fail(node, f"constant {name}={value!r} has unsupported type")
        if name == self.row_param:
            return Arg(name)
        if name in self.locals:
            return Var(name)
        raise _fail(node, f"unbound name {name!r} (declare it a parameter or assign first)")

    def _compare(self, node: ast.Compare) -> Expr:
        operands = [self.expr(v) for v in [node.left, *node.comparators]]
        parts: list[Expr] = []
        for op, left, right in zip(node.ops, operands, operands[1:]):
            builder = _CMP_MAP.get(type(op))
            if builder is None:
                raise _fail(node, f"unsupported comparison {type(op).__name__}")
            parts.append(builder(left, right))
        result = parts[0]
        for p in parts[1:]:
            result = BoolOp("and", result, p)
        return result

    def _call(self, node: ast.Call) -> Expr:
        if node.keywords:
            raise _fail(node, "keyword arguments are not supported in UDF calls")
        if isinstance(node.func, ast.Name):
            func = node.func.id
            args = tuple(self.expr(a) for a in node.args)
        elif isinstance(node.func, ast.Attribute):
            # wi.get_temp(m)  ==>  get_temp(wi, m)   (method sugar)
            func = node.func.attr
            receiver = self.expr(node.func.value)
            args = (receiver, *(self.expr(a) for a in node.args))
        else:
            raise _fail(node, "only direct or method-style calls are supported")
        if self.functions is not None and func not in self.functions:
            raise _fail(node, f"unknown library function {func!r}")
        return Call(func, args)

    # -- statements -----------------------------------------------------------

    def block(
        self, body: list[ast.stmt], continuation: Stmt, cont_returns: bool
    ) -> tuple[Stmt, bool]:
        """Translate a statement list; returns (IR, every-path-returns).

        ``continuation`` is the already-translated code that runs after this
        block on fall-through paths (``cont_returns`` says whether *it*
        always returns); it is pushed into the non-returning branches of
        conditionals, which is how early returns linearise.
        """

        result, returns = continuation, cont_returns
        for index in range(len(body) - 1, -1, -1):
            node = body[index]
            result, returns, terminal = self.stmt(node, result, returns)
            if terminal and index < len(body) - 1:
                # Anything after an always-returning statement is dead; the
                # subset forbids it to keep intent unambiguous.
                raise _fail(body[index + 1], "unreachable code after return")
        return result, returns

    def stmt(
        self, node: ast.stmt, continuation: Stmt, cont_returns: bool
    ) -> tuple[Stmt, bool, bool]:
        """Translate one statement; returns (IR, always-returns, terminal).

        ``terminal`` means the statement alone ends every path (so any
        following code would be unreachable).
        """

        if isinstance(node, ast.Pass):
            return continuation, cont_returns, False
        if isinstance(node, ast.Return):
            if node.value is None:
                raise _fail(node, "UDF must return a boolean expression")
            payload = self.expr(node.value)
            return Notify(self.pid, payload), True, True
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                raise _fail(node, "only single-variable assignment is supported")
            name = node.targets[0].id
            if name in self.consts or name == self.row_param:
                raise _fail(node, f"cannot assign to parameter {name!r}")
            value = self.expr(node.value)
            self.locals.add(name)
            return seq(Assign(name, value), continuation), cont_returns, False
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise _fail(node, "augmented assignment target must be a name")
            op = _BINOP_MAP.get(type(node.op))
            if op is None:
                raise _fail(node, f"unsupported operator {type(node.op).__name__}")
            name = node.target.id
            if name not in self.locals:
                raise _fail(node, f"augmented assignment to unbound {name!r}")
            value = BinOp(op, Var(name), self.expr(node.value))
            return seq(Assign(name, value), continuation), cont_returns, False
        if isinstance(node, ast.If):
            cond = self.expr(node.test)
            then, then_returns = self.block(node.body, SKIP, False)
            orelse, else_returns = self.block(node.orelse, SKIP, False)
            if then_returns and else_returns:
                return If(cond, then, orelse), True, True
            # Embed the continuation only into branches that fall through.
            if then_returns:
                merged = If(cond, then, seq(orelse, continuation))
            elif else_returns:
                merged = If(cond, seq(then, continuation), orelse)
            else:
                merged = seq(If(cond, then, orelse), continuation)
            always = (then_returns or cont_returns) and (else_returns or cont_returns)
            return merged, always, False
        if isinstance(node, ast.While):
            if node.orelse:
                raise _fail(node, "while/else is not supported")
            cond = self.expr(node.test)
            if _returns_somewhere(node.body):
                raise _fail(node, "return inside a loop body is not supported")
            body, _returns = self.block(node.body, SKIP, False)
            return seq(While(cond, body), continuation), cont_returns, False
        raise _fail(node, f"unsupported statement {type(node).__name__}")


def _returns_somewhere(body: list[ast.stmt]) -> bool:
    for node in body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return):
                return True
    return False


def translate_source(
    source: str,
    pid: str,
    consts: Mapping[str, object] | None = None,
    functions: FunctionTable | None = None,
) -> Program:
    """Translate the single function definition contained in ``source``."""

    tree = ast.parse(textwrap.dedent(source))
    defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(defs) != 1:
        raise TranslationError("source must contain exactly one function definition")
    fndef = defs[0]
    params = [a.arg for a in fndef.args.args]
    if not params:
        raise TranslationError("UDF must take the row handle as first parameter")
    row = params[0]
    consts = dict(consts or {})
    # Default values provide constants for parameters not overridden.
    defaults = fndef.args.defaults
    if defaults:
        defaulted = params[len(params) - len(defaults):]
        for name, value_node in zip(defaulted, defaults):
            if name not in consts:
                if not isinstance(value_node, ast.Constant):
                    raise TranslationError(f"default for {name!r} must be a literal")
                consts[name] = value_node.value
    missing = [p for p in params[1:] if p not in consts]
    if missing:
        raise TranslationError(f"no constant bound for parameters {missing}")

    tr = _Translator(pid, row, consts, functions)
    # Pre-scan assigned names: blocks are translated back-to-front, so a
    # return may reference a local before its assignment has been visited.
    for node in ast.walk(fndef):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tr.locals.add(target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            tr.locals.add(node.target.id)
    clash = tr.locals & (set(consts) | {row})
    if clash:
        raise TranslationError(f"cannot assign to parameters {sorted(clash)}")
    body, returns = tr.block(fndef.body, SKIP, False)
    if not returns:
        raise TranslationError("every path through a UDF must return")
    return Program(pid, (row,), body)


def translate_udf(
    fn: Callable,
    pid: str | None = None,
    consts: Mapping[str, object] | None = None,
    functions: FunctionTable | None = None,
) -> Program:
    """Translate a live Python function (via ``inspect.getsource``)."""

    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError) as exc:
        raise TranslationError(f"cannot retrieve source of {fn!r}: {exc}") from exc
    return translate_source(source, pid or fn.__name__, consts, functions)
