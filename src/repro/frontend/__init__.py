"""Python-AST frontend: write UDFs as restricted Python functions."""

from .errors import TranslationError
from .translate import translate_source, translate_udf
