"""LINQ-style query façade over the mini dataflow engine.

Mirrors how the paper's users write queries: build a query over a data
collection, attach ``where`` clauses holding UDFs, run.  Two batch entry
points implement the operators of Section 6.1:

* :func:`run_where_many` — the ``whereMany`` baseline (one pass over the
  data, every UDF executed sequentially per record);
* :func:`run_where_consolidated` — consolidates the batch with the
  divide-and-conquer driver, then runs the single merged UDF
  (``whereConsolidated``); returns both the run and the consolidation
  report so harnesses can separate consolidation time from execution time.

Configuration travels as ONE object: every entry point takes an
:class:`repro.config.ExecutionConfig` (``config=``) carrying backend,
workers, cost model, default function table, executor and telemetry.  The
pre-config keyword arguments (``backend=``, ``workers=``, ``cost_model=``,
``io_cost_per_record=``, ...) still work but emit
:class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..config import ExecutionConfig, resolve_config
from ..consolidation.algorithm import ConsolidationOptions
from ..consolidation.divide_conquer import ConsolidationReport, consolidate_all
from ..lang.ast import Program
from ..lang.cost import CostModel
from ..lang.functions import FunctionTable
from .dataflow import Dataflow, RunResult, Vertex
from .operators import Collect, Count, CountByKey, FlatMap, Select, Where, WhereConsolidated, WhereMany

__all__ = ["Query", "from_collection", "run_where_many", "run_where_consolidated"]


class Query:
    """A fluent builder: each call appends one operator to the graph.

    The query carries its :class:`ExecutionConfig`; operator methods take
    the function table explicitly (or from ``config.functions``) and read
    every other knob from the config.
    """

    def __init__(
        self,
        records: Sequence[Any],
        dataflow: Dataflow,
        tail: Vertex | None,
        config: ExecutionConfig | None = None,
    ) -> None:
        self._records = records
        self._dataflow = dataflow
        self._tail = tail
        self._config = config if config is not None else ExecutionConfig()

    @property
    def config(self) -> ExecutionConfig:
        return self._config

    def _extend(self, vertex: Vertex) -> "Query":
        self._dataflow.add_vertex(vertex, upstream=self._tail)
        return Query(self._records, self._dataflow, vertex, self._config)

    def _udf_kwargs(
        self, cost_model: Optional[CostModel], backend: Optional[str]
    ) -> dict:
        cfg = resolve_config(
            self._config, cost_model=cost_model, backend=backend, stacklevel=4
        )
        return {
            "cost_model": cfg.cost_model,
            "backend": cfg.backend,
            "memoize_calls": cfg.memoize_calls,
            "telemetry": cfg.telemetry,
            "prefilter": cfg.prefilter,
            "profiler": cfg.profiler,
        }

    def where(
        self,
        program: Program,
        functions: Optional[FunctionTable] = None,
        cost_model: Optional[CostModel] = None,
        backend: Optional[str] = None,
    ) -> "Query":
        return self._extend(
            Where(
                program,
                self._config.resolve_functions(functions),
                **self._udf_kwargs(cost_model, backend),
            )
        )

    def where_many(
        self,
        programs: Sequence[Program],
        functions: Optional[FunctionTable] = None,
        cost_model: Optional[CostModel] = None,
        backend: Optional[str] = None,
    ) -> "Query":
        return self._extend(
            WhereMany(
                programs,
                self._config.resolve_functions(functions),
                **self._udf_kwargs(cost_model, backend),
            )
        )

    def where_consolidated(
        self,
        merged: Program,
        pids: Sequence[str],
        functions: Optional[FunctionTable] = None,
        cost_model: Optional[CostModel] = None,
        backend: Optional[str] = None,
    ) -> "Query":
        return self._extend(
            WhereConsolidated(
                merged,
                pids,
                self._config.resolve_functions(functions),
                **self._udf_kwargs(cost_model, backend),
            )
        )

    def select(self, fn: Callable[[Any], Any], cost: int = 3) -> "Query":
        return self._extend(Select(fn, cost))

    def flat_map(self, fn, base_cost: int = 5, unit_cost: int = 1) -> "Query":
        return self._extend(FlatMap(fn, base_cost, unit_cost))

    def count_by_key(self, bucket: str = "counts") -> "Query":
        return self._extend(CountByKey(bucket))

    def count(self, bucket: str = "count") -> "Query":
        return self._extend(Count(bucket))

    def collect(self, bucket: str = "out") -> "Query":
        return self._extend(Collect(bucket))

    def run(
        self,
        config: ExecutionConfig | None = None,
        *,
        workers: Optional[int] = None,
    ) -> RunResult:
        cfg = resolve_config(config if config is not None else self._config, workers=workers)
        return self._dataflow.run(self._records, cfg.workers, telemetry=cfg.telemetry)


def from_collection(
    records: Sequence[Any],
    io_cost_per_record: Optional[int] = None,
    overhead_per_operator: Optional[int] = None,
    config: ExecutionConfig | None = None,
) -> Query:
    """Start a query over an in-memory collection (one graph root)."""

    cfg = resolve_config(
        config,
        io_cost_per_record=io_cost_per_record,
        overhead_per_operator=overhead_per_operator,
    )
    dataflow = Dataflow(cfg.io_cost_per_record, cfg.overhead_per_operator)

    class _Source(Vertex):
        passthrough = True  # identity: the engine may forward batches past it

        def process(self, record: Any, worker) -> Any:  # noqa: ANN001
            yield record

    source = _Source("input")
    dataflow.add_vertex(source)
    return Query(records, dataflow, source, cfg)


def run_where_many(
    records: Sequence[Any],
    programs: Sequence[Program],
    functions: Optional[FunctionTable] = None,
    cost_model: Optional[CostModel] = None,
    workers: Optional[int] = None,
    io_cost_per_record: Optional[int] = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> RunResult:
    """Execute the ``whereMany`` baseline over the collection."""

    cfg = resolve_config(
        config,
        cost_model=cost_model,
        workers=workers,
        io_cost_per_record=io_cost_per_record,
        backend=backend,
    )
    query = from_collection(records, config=cfg).where_many(programs, functions)
    return query.run(cfg)


def run_where_consolidated(
    records: Sequence[Any],
    programs: Sequence[Program],
    functions: Optional[FunctionTable] = None,
    cost_model: Optional[CostModel] = None,
    workers: Optional[int] = None,
    io_cost_per_record: Optional[int] = None,
    options: ConsolidationOptions | None = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> tuple[RunResult, ConsolidationReport]:
    """Consolidate the batch, execute ``whereConsolidated``, report both."""

    cfg = resolve_config(
        config,
        cost_model=cost_model,
        workers=workers,
        io_cost_per_record=io_cost_per_record,
        backend=backend,
    )
    table = cfg.resolve_functions(functions)
    report = consolidate_all(list(programs), table, options=options, config=cfg)
    pids = [p.pid for p in programs]
    query = from_collection(records, config=cfg).where_consolidated(
        report.program, pids, table
    )
    return query.run(cfg), report
