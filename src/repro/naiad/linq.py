"""LINQ-style query façade over the mini dataflow engine.

Mirrors how the paper's users write queries: build a query over a data
collection, attach ``where`` clauses holding UDFs, run.  Two batch entry
points implement the operators of Section 6.1:

* :func:`run_where_many` — the ``whereMany`` baseline (one pass over the
  data, every UDF executed sequentially per record);
* :func:`run_where_consolidated` — consolidates the batch with the
  divide-and-conquer driver, then runs the single merged UDF
  (``whereConsolidated``); returns both the run and the consolidation
  report so harnesses can separate consolidation time from execution time.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..consolidation.algorithm import ConsolidationOptions
from ..consolidation.divide_conquer import ConsolidationReport, consolidate_all
from ..lang.ast import Program
from ..lang.compile import DEFAULT_BACKEND
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from .dataflow import Dataflow, RunResult, Vertex
from .operators import Collect, Count, CountByKey, FlatMap, Select, Where, WhereConsolidated, WhereMany

__all__ = ["Query", "from_collection", "run_where_many", "run_where_consolidated"]


class Query:
    """A fluent builder: each call appends one operator to the graph."""

    def __init__(self, records: Sequence[Any], dataflow: Dataflow, tail: Vertex | None) -> None:
        self._records = records
        self._dataflow = dataflow
        self._tail = tail

    def _extend(self, vertex: Vertex) -> "Query":
        self._dataflow.add_vertex(vertex, upstream=self._tail)
        return Query(self._records, self._dataflow, vertex)

    def where(
        self,
        program: Program,
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend: str = DEFAULT_BACKEND,
    ) -> "Query":
        return self._extend(Where(program, functions, cost_model, backend=backend))

    def where_many(
        self,
        programs: Sequence[Program],
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend: str = DEFAULT_BACKEND,
    ) -> "Query":
        return self._extend(WhereMany(programs, functions, cost_model, backend=backend))

    def where_consolidated(
        self,
        merged: Program,
        pids: Sequence[str],
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend: str = DEFAULT_BACKEND,
    ) -> "Query":
        return self._extend(
            WhereConsolidated(merged, pids, functions, cost_model, backend=backend)
        )

    def select(self, fn: Callable[[Any], Any], cost: int = 3) -> "Query":
        return self._extend(Select(fn, cost))

    def flat_map(self, fn, base_cost: int = 5, unit_cost: int = 1) -> "Query":
        return self._extend(FlatMap(fn, base_cost, unit_cost))

    def count_by_key(self, bucket: str = "counts") -> "Query":
        return self._extend(CountByKey(bucket))

    def count(self, bucket: str = "count") -> "Query":
        return self._extend(Count(bucket))

    def collect(self, bucket: str = "out") -> "Query":
        return self._extend(Collect(bucket))

    def run(self, workers: int = 4) -> RunResult:
        return self._dataflow.run(self._records, workers)


def from_collection(
    records: Sequence[Any],
    io_cost_per_record: int = 25,
    overhead_per_operator: int = 2,
) -> Query:
    """Start a query over an in-memory collection (one graph root)."""

    dataflow = Dataflow(io_cost_per_record, overhead_per_operator)

    class _Source(Vertex):
        def process(self, record: Any, worker) -> Any:  # noqa: ANN001
            yield record

    source = _Source("input")
    dataflow.add_vertex(source)
    return Query(records, dataflow, source)


def run_where_many(
    records: Sequence[Any],
    programs: Sequence[Program],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: int = 4,
    io_cost_per_record: int = 25,
    backend: str = DEFAULT_BACKEND,
) -> RunResult:
    """Execute the ``whereMany`` baseline over the collection."""

    query = from_collection(records, io_cost_per_record).where_many(
        programs, functions, cost_model, backend=backend
    )
    return query.run(workers)


def run_where_consolidated(
    records: Sequence[Any],
    programs: Sequence[Program],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    workers: int = 4,
    io_cost_per_record: int = 25,
    options: ConsolidationOptions | None = None,
    backend: str = DEFAULT_BACKEND,
) -> tuple[RunResult, ConsolidationReport]:
    """Consolidate the batch, execute ``whereConsolidated``, report both."""

    report = consolidate_all(list(programs), functions, cost_model, options)
    pids = [p.pid for p in programs]
    query = from_collection(records, io_cost_per_record).where_consolidated(
        report.program, pids, functions, cost_model, backend=backend
    )
    return query.run(workers), report
