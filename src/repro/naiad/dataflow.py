"""A miniature timely-dataflow engine (the Naiad substitute; see DESIGN.md).

The paper implements its operators on Microsoft Naiad; the experiments only
need the slice of Naiad semantics those operators touch, which this module
provides faithfully:

* a dataflow *graph* of vertices connected by edges, built through the
  fluent API in :mod:`repro.naiad.linq`;
* *workers* that each own a partition of the input and push records through
  the graph — paralleling Naiad's data-parallel shards.  Workers keep a
  deterministic virtual clock in cost-model units (the paper's Figure 2
  cost semantics), and wall-clock time is measured around the run;
* per-record *IO* and per-operator *overhead* charges, so that "total time"
  and "UDF time" can be reported separately exactly as in Figure 9;
* a *notification* side-channel: a vertex may broadcast per-query booleans
  (the Naiad primitive the paper relies on for early result broadcast),
  which the engine routes into named result buckets.

Determinism: given the same graph, input and worker count, a run produces
identical costs and outputs — which is what makes the benchmark harness
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Vertex", "Edge", "Dataflow", "Worker", "JobMetrics", "RunResult"]


class Vertex:
    """A dataflow operator.

    Subclasses implement :meth:`process`, yielding output records, and
    report the cost of handling each record via ``last_cost`` (in
    cost-model units).  Vertices are wired by :class:`Dataflow`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.downstream: list["Vertex"] = []
        self.last_cost = 0

    def process(self, record: Any, worker: "Worker") -> Iterable[Any]:
        raise NotImplementedError

    def on_flush(self, worker: "Worker") -> None:
        """Called once per worker after its partition is exhausted."""


@dataclass
class Edge:
    source: Vertex
    target: Vertex


@dataclass
class JobMetrics:
    """Cost accounting for one dataflow run.

    ``udf_cost`` counts only the work done inside user-defined functions
    (Figure 2 units); ``total_cost`` adds IO and engine overhead.
    ``makespan`` is the maximum per-worker total — the virtual-time analogue
    of job completion time on a multi-worker cluster.
    """

    udf_cost: int = 0
    io_cost: int = 0
    overhead_cost: int = 0
    wall_seconds: float = 0.0
    records: int = 0
    per_worker_total: list[int] = field(default_factory=list)
    per_worker_udf: list[int] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        return self.udf_cost + self.io_cost + self.overhead_cost

    @property
    def makespan(self) -> int:
        return max(self.per_worker_total, default=0)

    @property
    def udf_makespan(self) -> int:
        return max(self.per_worker_udf, default=0)


@dataclass
class RunResult:
    metrics: JobMetrics
    buckets: dict[str, list[Any]]


class Worker:
    """One data-parallel shard with its own virtual clock."""

    def __init__(self, index: int, run: "_RunState") -> None:
        self.index = index
        self._run = run
        self.total_clock = 0
        self.udf_clock = 0

    def charge_io(self, units: int) -> None:
        self.total_clock += units
        self._run.metrics.io_cost += units

    def charge_overhead(self, units: int) -> None:
        self.total_clock += units
        self._run.metrics.overhead_cost += units

    def charge_udf(self, units: int) -> None:
        self.total_clock += units
        self.udf_clock += units
        self._run.metrics.udf_cost += units

    def notify(self, bucket: str, record: Any) -> None:
        """Broadcast a record into a named result bucket (Naiad's notify)."""

        self._run.buckets.setdefault(bucket, []).append(record)


class _RunState:
    def __init__(self) -> None:
        self.metrics = JobMetrics()
        self.buckets: dict[str, list[Any]] = {}


class Dataflow:
    """A dataflow graph under construction, and its executor."""

    def __init__(
        self,
        io_cost_per_record: int = 25,
        overhead_per_operator: int = 2,
    ) -> None:
        self.io_cost_per_record = io_cost_per_record
        self.overhead_per_operator = overhead_per_operator
        self._vertices: list[Vertex] = []
        self._roots: list[Vertex] = []

    # -- graph construction ----------------------------------------------------

    def add_vertex(self, vertex: Vertex, upstream: Vertex | None = None) -> Vertex:
        self._vertices.append(vertex)
        if upstream is None:
            self._roots.append(vertex)
        else:
            upstream.downstream.append(vertex)
        return vertex

    @property
    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    # -- execution ----------------------------------------------------------------

    def _partition(self, records: Sequence[Any], workers: int) -> list[list[Any]]:
        parts: list[list[Any]] = [[] for _ in range(workers)]
        for i, r in enumerate(records):
            parts[i % workers].append(r)
        return parts

    def run(self, records: Sequence[Any], workers: int = 4) -> RunResult:
        """Push every record through the graph; deterministic cost clock."""

        if workers < 1:
            raise ValueError("need at least one worker")
        state = _RunState()
        start = perf_counter()
        for index, part in enumerate(self._partition(records, workers)):
            worker = Worker(index, state)
            for record in part:
                state.metrics.records += 1
                worker.charge_io(self.io_cost_per_record)
                for root in self._roots:
                    self._push(root, record, worker)
            for vertex in self._vertices:
                vertex.on_flush(worker)
            state.metrics.per_worker_total.append(worker.total_clock)
            state.metrics.per_worker_udf.append(worker.udf_clock)
        state.metrics.wall_seconds = perf_counter() - start
        return RunResult(metrics=state.metrics, buckets=state.buckets)

    def _push(self, vertex: Vertex, record: Any, worker: Worker) -> None:
        worker.charge_overhead(self.overhead_per_operator)
        for output in vertex.process(record, worker):
            for child in vertex.downstream:
                self._push(child, output, worker)
