"""A miniature timely-dataflow engine (the Naiad substitute; see DESIGN.md).

The paper implements its operators on Microsoft Naiad; the experiments only
need the slice of Naiad semantics those operators touch, which this module
provides faithfully:

* a dataflow *graph* of vertices connected by edges, built through the
  fluent API in :mod:`repro.naiad.linq`;
* *workers* that each own a partition of the input and push records through
  the graph — paralleling Naiad's data-parallel shards.  Workers keep a
  deterministic virtual clock in cost-model units (the paper's Figure 2
  cost semantics), and wall-clock time is measured around the run;
* per-record *IO* and per-operator *overhead* charges, so that "total time"
  and "UDF time" can be reported separately exactly as in Figure 9;
* a *notification* side-channel: a vertex may broadcast per-query booleans
  (the Naiad primitive the paper relies on for early result broadcast),
  which the engine routes into named result buckets.

Observability: pass a live :class:`repro.telemetry.Telemetry` to
:meth:`Dataflow.run` (normally via ``ExecutionConfig.telemetry``) and the
engine additionally records **per-operator** records in/out, wall time,
UDF cost and notification counts — both onto ``RunMetrics.per_operator``
for that run and into the telemetry registry
(``dataflow_operator_*{operator=...}`` series).  With the default no-op
telemetry the engine takes a separate, uninstrumented code path whose
overhead over the pre-telemetry engine is bounded by
``benchmarks/bench_telemetry_overhead.py`` (≤ 5%).

``RunMetrics`` absorbed the former ``JobMetrics`` (same fields, plus the
per-operator breakdown); the old name remains as a deprecated alias.

Determinism: given the same graph, input and worker count, a run produces
identical costs and outputs — which is what makes the benchmark harness
reproducible.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Vertex",
    "Edge",
    "Dataflow",
    "Worker",
    "OperatorStats",
    "RunMetrics",
    "RunResult",
]


class Vertex:
    """A dataflow operator.

    Subclasses implement :meth:`process`, yielding output records, and
    report the cost of handling each record via ``last_cost`` (in
    cost-model units).  Vertices are wired by :class:`Dataflow`.
    """

    #: True when :meth:`ingest_batch` can replace per-record ``process``
    #: calls for this vertex (batch-buffering operators flip it on).
    accepts_batches = False

    #: True when ``process`` is the side-effect-free identity (yields its
    #: input, charges nothing beyond the push overhead).  Lets the engine
    #: forward a whole partition *through* this vertex to a downstream
    #: batch operator without the per-record push loop.
    passthrough = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.downstream: list["Vertex"] = []
        self.last_cost = 0

    def process(self, record: Any, worker: "Worker") -> Iterable[Any]:
        raise NotImplementedError

    def ingest_batch(self, records: Sequence[Any], worker: "Worker") -> None:
        """Buffer a whole partition slice at once (batch operators only).

        Only called when :attr:`accepts_batches` is true; must be
        observably identical to calling :meth:`process` per record for an
        operator whose ``process`` buffers and yields nothing.
        """

        raise NotImplementedError

    def on_flush(self, worker: "Worker") -> None:
        """Called once per worker after its partition is exhausted."""


@dataclass
class Edge:
    source: Vertex
    target: Vertex


@dataclass
class OperatorStats:
    """Per-operator accounting for one run (telemetry-enabled runs only)."""

    records_in: int = 0
    records_out: int = 0
    udf_cost: int = 0
    notifications: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "records_in": self.records_in,
            "records_out": self.records_out,
            "udf_cost": self.udf_cost,
            "notifications": self.notifications,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class RunMetrics:
    """Cost accounting for one dataflow run (formerly ``JobMetrics``).

    ``udf_cost`` counts only the work done inside user-defined functions
    (Figure 2 units); ``total_cost`` adds IO and engine overhead.
    ``makespan`` is the maximum per-worker total — the virtual-time analogue
    of job completion time on a multi-worker cluster.

    ``per_operator`` maps operator name to an :class:`OperatorStats`; it is
    populated only when the run was handed a live telemetry (the per-record
    bookkeeping is skipped entirely otherwise).
    """

    udf_cost: int = 0
    io_cost: int = 0
    overhead_cost: int = 0
    wall_seconds: float = 0.0
    records: int = 0
    per_worker_total: list[int] = field(default_factory=list)
    per_worker_udf: list[int] = field(default_factory=list)
    per_operator: dict[str, OperatorStats] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        return self.udf_cost + self.io_cost + self.overhead_cost

    @property
    def makespan(self) -> int:
        return max(self.per_worker_total, default=0)

    @property
    def udf_makespan(self) -> int:
        return max(self.per_worker_udf, default=0)


@dataclass
class RunResult:
    metrics: RunMetrics
    buckets: dict[str, list[Any]]


class Worker:
    """One data-parallel shard with its own virtual clock."""

    def __init__(
        self, index: int, run: "_RunState", engine: "Dataflow | None" = None
    ) -> None:
        self.index = index
        self._run = run
        self._engine = engine
        self.total_clock = 0
        self.udf_clock = 0

    def charge_io(self, units: int) -> None:
        self.total_clock += units
        self._run.metrics.io_cost += units

    def charge_overhead(self, units: int) -> None:
        self.total_clock += units
        self._run.metrics.overhead_cost += units

    def charge_udf(self, units: int) -> None:
        self.total_clock += units
        self.udf_clock += units
        self._run.metrics.udf_cost += units

    def notify(self, bucket: str, record: Any) -> None:
        """Broadcast a record into a named result bucket (Naiad's notify)."""

        self._run.buckets.setdefault(bucket, []).append(record)

    def emit(self, vertex: Vertex, record: Any) -> None:
        """Push ``record`` to ``vertex``'s downstream operators.

        Batch-oriented operators (the vectorized backend) buffer their
        partition during :meth:`Vertex.process` and produce outputs from
        :meth:`Vertex.on_flush`, after the per-record push loop is over —
        this is their flush-time stand-in for yielding from ``process``.
        """

        engine = self._engine
        if engine is None:
            raise RuntimeError("worker is not bound to a dataflow engine")
        for child in vertex.downstream:
            engine._push(child, record, self)


class _TracedWorker(Worker):
    """A worker that additionally attributes UDF cost and notifications to
    the operator currently processing a record (``_op`` is maintained by
    the traced push loop).  Kept out of :class:`Worker` so the fast path
    pays nothing for the attribution hooks."""

    def __init__(
        self,
        index: int,
        run: "_RunState",
        engine: "Dataflow | None" = None,
        op_stats: "dict[str, OperatorStats] | None" = None,
    ) -> None:
        super().__init__(index, run, engine)
        self._op: OperatorStats | None = None
        self._op_stats = op_stats

    def charge_udf(self, units: int) -> None:
        super().charge_udf(units)
        if self._op is not None:
            self._op.udf_cost += units

    def notify(self, bucket: str, record: Any) -> None:
        super().notify(bucket, record)
        if self._op is not None:
            self._op.notifications += 1

    def emit(self, vertex: Vertex, record: Any) -> None:
        engine, op_stats = self._engine, self._op_stats
        if engine is None or op_stats is None:
            raise RuntimeError("worker is not bound to a dataflow engine")
        op_stats[vertex.name].records_out += 1
        # The traced push loop clobbers ``_op``; flush-time emission happens
        # while the emitting vertex's stats are installed, so restore them.
        saved = self._op
        for child in vertex.downstream:
            engine._push_traced(child, record, self, op_stats)
        self._op = saved


class _RunState:
    def __init__(self) -> None:
        self.metrics = RunMetrics()
        self.buckets: dict[str, list[Any]] = {}


class Dataflow:
    """A dataflow graph under construction, and its executor."""

    def __init__(
        self,
        io_cost_per_record: int = 25,
        overhead_per_operator: int = 2,
    ) -> None:
        self.io_cost_per_record = io_cost_per_record
        self.overhead_per_operator = overhead_per_operator
        self._vertices: list[Vertex] = []
        self._roots: list[Vertex] = []

    # -- graph construction ----------------------------------------------------

    def add_vertex(self, vertex: Vertex, upstream: Vertex | None = None) -> Vertex:
        self._vertices.append(vertex)
        if upstream is None:
            self._roots.append(vertex)
        else:
            upstream.downstream.append(vertex)
        return vertex

    @property
    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    # -- execution ----------------------------------------------------------------

    def _partition(self, records: Sequence[Any], workers: int) -> list[list[Any]]:
        if workers == 1:
            return [list(records)]
        parts: list[list[Any]] = [[] for _ in range(workers)]
        for i, r in enumerate(records):
            parts[i % workers].append(r)
        return parts

    def run(
        self,
        records: Sequence[Any],
        workers: int = 4,
        telemetry=None,
    ) -> RunResult:
        """Push every record through the graph; deterministic cost clock.

        ``telemetry`` (a :class:`repro.telemetry.Telemetry`, default no-op)
        switches the run onto the instrumented path: per-operator stats on
        the result's metrics, counters in the registry, and a
        ``dataflow.run`` span when tracing is on.
        """

        if workers < 1:
            raise ValueError("need at least one worker")
        if telemetry is not None and telemetry.enabled:
            return self._run_traced(records, workers, telemetry)

        state = _RunState()
        start = perf_counter()
        roots = self._roots
        push = self._push
        # A single batch-buffering root (the vectorized operators) takes
        # its partition in one call: same IO/overhead charges, no
        # per-record push loop.  Identity pass-through roots (the linq
        # source vertex) are walked over — each hop is one more overhead
        # charge per record, exactly what the push loop would have billed.
        batch_root = None
        batch_hops = 1
        if len(roots) == 1:
            node = roots[0]
            while node.passthrough and len(node.downstream) == 1:
                node = node.downstream[0]
                batch_hops += 1
            if node.accepts_batches:
                batch_root = node
        for index, part in enumerate(self._partition(records, workers)):
            worker = Worker(index, state, self)
            # IO charges and the record count are per-partition sums; batch
            # them so the per-record loop only pays for operator pushes.
            state.metrics.records += len(part)
            worker.charge_io(self.io_cost_per_record * len(part))
            if batch_root is not None:
                worker.charge_overhead(
                    self.overhead_per_operator * len(part) * batch_hops
                )
                batch_root.ingest_batch(part, worker)
            else:
                for record in part:
                    for root in roots:
                        push(root, record, worker)
            for vertex in self._vertices:
                vertex.on_flush(worker)
            state.metrics.per_worker_total.append(worker.total_clock)
            state.metrics.per_worker_udf.append(worker.udf_clock)
        state.metrics.wall_seconds = perf_counter() - start
        return RunResult(metrics=state.metrics, buckets=state.buckets)

    def _push(self, vertex: Vertex, record: Any, worker: Worker) -> None:
        # charge_overhead, inlined: this is the hottest call in a run.
        overhead = self.overhead_per_operator
        worker.total_clock += overhead
        worker._run.metrics.overhead_cost += overhead
        for output in vertex.process(record, worker):
            for child in vertex.downstream:
                self._push(child, output, worker)

    # -- instrumented execution --------------------------------------------------

    def _run_traced(self, records: Sequence[Any], workers: int, telemetry) -> RunResult:
        state = _RunState()
        op_stats: dict[str, OperatorStats] = {
            v.name: OperatorStats() for v in self._vertices
        }
        with telemetry.span("dataflow.run", workers=workers, records=len(records)) as span:
            start = perf_counter()
            for index, part in enumerate(self._partition(records, workers)):
                worker = _TracedWorker(index, state, self, op_stats)
                for record in part:
                    state.metrics.records += 1
                    worker.charge_io(self.io_cost_per_record)
                    for root in self._roots:
                        self._push_traced(root, record, worker, op_stats)
                for vertex in self._vertices:
                    worker._op = op_stats[vertex.name]
                    vertex.on_flush(worker)
                    worker._op = None
                state.metrics.per_worker_total.append(worker.total_clock)
                state.metrics.per_worker_udf.append(worker.udf_clock)
            state.metrics.wall_seconds = perf_counter() - start
            span.set("total_cost", state.metrics.total_cost)
            span.set("udf_cost", state.metrics.udf_cost)
        state.metrics.per_operator = op_stats
        self._record_metrics(state.metrics, op_stats, telemetry)
        return RunResult(metrics=state.metrics, buckets=state.buckets)

    def _push_traced(
        self,
        vertex: Vertex,
        record: Any,
        worker: _TracedWorker,
        op_stats: dict[str, OperatorStats],
    ) -> None:
        worker.charge_overhead(self.overhead_per_operator)
        stats = op_stats[vertex.name]
        stats.records_in += 1
        worker._op = stats
        t0 = perf_counter()
        # Materialising the generator keeps the timing exclusive to this
        # operator: children are pushed only after the clock stops.
        outputs = list(vertex.process(record, worker))
        stats.seconds += perf_counter() - t0
        worker._op = None
        stats.records_out += len(outputs)
        for output in outputs:
            for child in vertex.downstream:
                self._push_traced(child, output, worker, op_stats)

    @staticmethod
    def _record_metrics(metrics: RunMetrics, op_stats: dict, telemetry) -> None:
        registry = telemetry.metrics
        registry.counter("dataflow_runs_total").inc()
        registry.counter("dataflow_records_total").inc(metrics.records)
        registry.counter("dataflow_wall_seconds_total").inc(metrics.wall_seconds)
        registry.counter("dataflow_udf_cost_total").inc(metrics.udf_cost)
        for name, stats in op_stats.items():
            registry.counter("dataflow_operator_records_in_total", operator=name).inc(
                stats.records_in
            )
            registry.counter("dataflow_operator_records_out_total", operator=name).inc(
                stats.records_out
            )
            registry.counter("dataflow_operator_udf_cost_total", operator=name).inc(
                stats.udf_cost
            )
            registry.counter("dataflow_operator_seconds_total", operator=name).inc(
                stats.seconds
            )
            registry.counter(
                "dataflow_operator_notifications_total", operator=name
            ).inc(stats.notifications)


def __getattr__(name: str):
    if name == "JobMetrics":
        warnings.warn(
            "JobMetrics was absorbed into RunMetrics; update imports to "
            "repro.naiad.dataflow.RunMetrics",
            DeprecationWarning,
            stacklevel=2,
        )
        return RunMetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
