"""Dataflow operators, including the paper's new LINQ operators.

The two that matter for the evaluation (Section 6.1):

* :class:`WhereMany` — the fair baseline: one operator holding *n* UDFs,
  reading each record **once** and running every UDF on it sequentially.
  (Running n separate queries would also multiply the IO; the paper
  deliberately compares against whereMany so that only UDF computation is
  measured.)
* :class:`WhereConsolidated` — holds the single merged UDF produced by
  :func:`repro.consolidation.divide_conquer.consolidate_all` and runs it
  once per record, demultiplexing the broadcast notifications into the
  same per-query buckets whereMany fills.

Both route a record into bucket ``pid`` whenever query ``pid`` accepts it,
so downstream consumers cannot tell them apart — equivalence is asserted by
the test-suite and the harness.

With ``prefilter=True`` the Where operators synthesize a sound
reject-early guard (:mod:`repro.analysis.prefilter`) per UDF at
construction time and evaluate it first on every record: a row the guard
rejects provably notifies nobody, so the full UDF is skipped and only the
guard's (much smaller) cost is charged.  Guards fail open — any synthesis
or runtime problem means "no guard", never a changed bucket.  The
rejection counts surface as ``prefilter_checked_total`` /
``prefilter_rejected_total`` counters and a ``prefilter_selectivity``
gauge when telemetry is enabled.
"""

from __future__ import annotations

from itertools import compress
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from ..lang.ast import Program
from ..lang.compile import DEFAULT_BACKEND, make_runner
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..lang.vectorize import columns_from_records, vectorize_cached
from .dataflow import Vertex, Worker

__all__ = [
    "Where",
    "WhereMany",
    "WhereConsolidated",
    "Select",
    "Count",
    "Collect",
]


def _bind_args(program: Program, record: Any) -> dict[str, Any]:
    """Bind a record to a single-parameter UDF (the row handle)."""

    if len(program.params) != 1:
        raise ValueError(f"UDF {program.pid} must take exactly the row handle")
    return {program.params[0]: record}


def _make_guards(
    programs: Sequence[Program],
    functions: FunctionTable,
    cost_model: CostModel,
    backend: str,
    telemetry,
) -> Optional[list]:
    """Build one prefilter guard per program; None when no guard is usable."""

    from ..analysis.prefilter import make_guard

    guards = [
        make_guard(
            p, functions, cost_model, backend=backend, telemetry=telemetry
        )
        for p in programs
    ]
    return guards if any(g is not None for g in guards) else None


class _PrefilterMixin:
    """Shared rejection bookkeeping for the Where operators."""

    _telemetry = None
    _pre_checked = 0
    _pre_rejected = 0

    def _reject(self, guard, args: Mapping[str, Any], worker: Worker) -> bool:
        """Evaluate ``guard``; True when the record is provably a no-op."""

        passes, cost = guard(args)
        self._pre_checked += 1
        worker.charge_udf(cost)
        if passes:
            return False
        self._pre_rejected += 1
        return True

    def on_flush(self, worker: Worker) -> None:
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled or not self._pre_checked:
            return
        telemetry.counter("prefilter_checked_total").inc(self._pre_checked)
        telemetry.counter("prefilter_rejected_total").inc(self._pre_rejected)
        telemetry.gauge("prefilter_selectivity").set(
            1.0 - self._pre_rejected / self._pre_checked
        )
        self._pre_checked = 0
        self._pre_rejected = 0


class _VectorMixin(_PrefilterMixin):
    """Batch buffering + flush-time kernel execution for the Where operators.

    Under ``backend="vectorized"`` the operator buffers its worker's
    partition during :meth:`process` and executes it as one struct-of-
    arrays batch from :meth:`on_flush` — which the engine runs *before*
    capturing per-worker clocks, so batch-time charges land in exactly the
    per-worker totals row-at-a-time execution produces.  IO and operator
    overhead are still charged per record by the engine's push loop, so
    only UDF evaluation changes execution strategy.
    """

    _pending: "dict[int, list] | None" = None
    # Profiling hooks (None when off — the batch path then pays a single
    # attribute check per flush, nothing per record).
    _profiler = None
    _functions = None

    @property
    def accepts_batches(self) -> bool:
        return self._vectorized

    def ingest_batch(self, records: Sequence[Any], worker: Worker) -> None:
        pending = self._pending
        if pending is None:
            pending = self._pending = {}
        bucket = pending.get(worker.index)
        if bucket is None:
            pending[worker.index] = list(records)
        else:
            bucket.extend(records)

    def _buffer(self, record: Any, worker: Worker) -> None:
        pending = self._pending
        if pending is None:
            pending = self._pending = {}
        pending.setdefault(worker.index, []).append(record)

    def _drain(self, worker: Worker) -> list:
        pending = self._pending
        if not pending:
            return []
        return pending.pop(worker.index, [])

    @staticmethod
    def _vector_guard(guard, program, functions, cost_model, telemetry):
        """The column-mask form of a prefilter guard (None = use per-row)."""

        if guard is None:
            return None
        try:
            from ..analysis.prefilter import prefilter_program

            wrapper = prefilter_program(guard.prefilter, program)
            vg = vectorize_cached(
                wrapper, functions, cost_model, telemetry=telemetry
            )
            return vg if vg.vectorized else None
        except Exception:  # noqa: BLE001 - the per-row guard still applies
            return None

    def _apply_guard(self, vguard, guard, program, records, worker) -> list:
        """φ as a batch-compacting mask, with the row guard's exact books.

        The vectorized φ wrapper runs over the whole batch; any problem
        (kernel degrade *and* fallback error alike) re-runs the guard
        per row through :class:`PrefilterGuard`, whose fail-open contract
        then applies record by record.  Checked/rejected counts and the
        charged guard cost are identical to row-at-a-time execution.
        """

        if guard is None:
            return records
        from ..analysis.prefilter import PREFILTER_PID

        verdicts = None
        if vguard is not None:
            try:
                batch = vguard.run_batch(
                    columns_from_records(program, records), len(records)
                )
                verdicts = []
                for i in range(len(records)):
                    try:
                        verdicts.append(
                            (bool(batch.notification(PREFILTER_PID, i)), batch.costs[i])
                        )
                    except KeyError:
                        verdicts.append((True, 0))  # fail open, like the row guard
            except Exception:  # noqa: BLE001 - guard problems fail open per row
                verdicts = None
        keep = []
        if verdicts is None:
            for record in records:
                if not self._reject(guard, _bind_args(program, record), worker):
                    keep.append(record)
            return keep
        for record, (passes, cost) in zip(records, verdicts):
            self._pre_checked += 1
            worker.charge_udf(cost)
            if passes:
                keep.append(record)
            else:
                self._pre_rejected += 1
        return keep

    def _run_batch(self, vp, program, records, worker):
        """Execute one batch and charge its exact total UDF cost.

        With a live profiler attached the whole batch is a sampling
        candidate: one ``perf_counter`` span around the kernel run, total
        seconds and total cost against ``records × per-record`` units
        (see :meth:`repro.profiling.Profiler.record_batch`).
        """

        if not records:
            return None
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            started = perf_counter()
            batch = vp.run_batch(
                columns_from_records(program, records), len(records)
            )
            elapsed = perf_counter() - started
            cost = sum(batch.costs)
            worker.charge_udf(cost)
            profiler.record_batch(
                program, self._functions, elapsed, cost, len(records)
            )
            return batch
        batch = vp.run_batch(columns_from_records(program, records), len(records))
        worker.charge_udf(sum(batch.costs))
        return batch

    @staticmethod
    def _notified(batch, pid, records):
        """The records that broadcast a truthy value on ``pid``.

        One scan of the mask and value columns, with row-mode error
        parity: ``result.notification(pid)`` raises ``KeyError`` on a
        record that never notified, so the scan does too — at the same
        record position the row-at-a-time loop would.  A wholesale-
        committed pid shares the batch's all-true mask (identity check),
        where the scan collapses to a C-level compress."""

        mask = batch.present.get(pid)
        if mask is None:
            if records:
                raise KeyError(pid)
            return ()
        if mask is batch.full_mask and len(records) == batch.n:
            return compress(records, batch.values[pid])

        def scan():
            for record, hit, value in zip(records, mask, batch.values[pid]):
                if not hit:
                    raise KeyError(pid)
                if value:
                    yield record

        return scan()


class Where(_VectorMixin, Vertex):
    """A single-UDF filter: passes records the UDF accepts."""

    def __init__(
        self,
        program: Program,
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        memoize_calls: bool = False,
        backend: str = DEFAULT_BACKEND,
        telemetry=None,
        prefilter: bool = False,
        profiler=None,
    ) -> None:
        super().__init__(f"where[{program.pid}]")
        self.program = program
        self._telemetry = telemetry
        self._profiler = profiler
        self._functions = functions
        self.guard = None
        if prefilter:
            guards = _make_guards(
                [program], functions, cost_model, backend, telemetry
            )
            self.guard = guards[0] if guards else None
        self.runner = make_runner(
            program,
            functions,
            cost_model,
            backend=backend,
            memoize_calls=memoize_calls,
            telemetry=telemetry,
            profiler=profiler,
        )
        self._vectorized = backend == "vectorized"
        if self._vectorized:
            self._vp = vectorize_cached(
                program,
                functions,
                cost_model,
                memoize_calls=memoize_calls,
                telemetry=telemetry,
            )
            self._vguard = self._vector_guard(
                self.guard, program, functions, cost_model, telemetry
            )

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        if self._vectorized:
            self._buffer(record, worker)
            return
        args = _bind_args(self.program, record)
        if self.guard is not None and self._reject(self.guard, args, worker):
            return
        result = self.runner(args)
        worker.charge_udf(result.cost)
        if result.notification(self.program.pid):
            yield record

    def on_flush(self, worker: Worker) -> None:
        if self._vectorized:
            records = self._drain(worker)
            if records:
                kept = self._apply_guard(
                    self._vguard, self.guard, self.program, records, worker
                )
                batch = self._run_batch(self._vp, self.program, kept, worker)
                if batch is not None:
                    for record in self._notified(batch, self.program.pid, kept):
                        worker.emit(self, record)
        super().on_flush(worker)


class WhereMany(_VectorMixin, Vertex):
    """The sequential baseline: run every UDF on every record."""

    def __init__(
        self,
        programs: Sequence[Program],
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        memoize_calls: bool = False,
        backend: str = DEFAULT_BACKEND,
        telemetry=None,
        prefilter: bool = False,
        profiler=None,
    ) -> None:
        super().__init__(f"whereMany[{len(programs)}]")
        if not programs:
            raise ValueError("whereMany needs at least one UDF")
        self.programs = list(programs)
        self._telemetry = telemetry
        self._profiler = profiler
        self._functions = functions
        self.guards = (
            _make_guards(self.programs, functions, cost_model, backend, telemetry)
            if prefilter
            else None
        )
        self.runners = [
            make_runner(
                p,
                functions,
                cost_model,
                backend=backend,
                memoize_calls=memoize_calls,
                telemetry=telemetry,
                profiler=profiler,
            )
            for p in programs
        ]
        self._vectorized = backend == "vectorized"
        if self._vectorized:
            self._vps = [
                vectorize_cached(
                    p,
                    functions,
                    cost_model,
                    memoize_calls=memoize_calls,
                    telemetry=telemetry,
                )
                for p in programs
            ]
            self._vguards = (
                [
                    self._vector_guard(g, p, functions, cost_model, telemetry)
                    for g, p in zip(self.guards, self.programs)
                ]
                if self.guards is not None
                else None
            )

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        if self._vectorized:
            self._buffer(record, worker)
            return ()
        guards = self.guards
        for index, (program, runner) in enumerate(zip(self.programs, self.runners)):
            args = _bind_args(program, record)
            if guards is not None:
                guard = guards[index]
                if guard is not None and self._reject(guard, args, worker):
                    continue
            result = runner(args)
            worker.charge_udf(result.cost)
            if result.notification(program.pid):
                worker.notify(program.pid, record)
        return ()

    def on_flush(self, worker: Worker) -> None:
        if self._vectorized:
            records = self._drain(worker)
            if records:
                for index, (program, vp) in enumerate(zip(self.programs, self._vps)):
                    guard = self.guards[index] if self.guards is not None else None
                    vguard = self._vguards[index] if self._vguards is not None else None
                    kept = self._apply_guard(vguard, guard, program, records, worker)
                    batch = self._run_batch(vp, program, kept, worker)
                    if batch is None:
                        continue
                    pid = program.pid
                    for record in self._notified(batch, pid, kept):
                        worker.notify(pid, record)
        super().on_flush(worker)


class WhereConsolidated(_VectorMixin, Vertex):
    """The consolidated operator: one merged UDF, all results broadcast."""

    def __init__(
        self,
        merged: Program,
        pids: Sequence[str],
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        memoize_calls: bool = False,
        backend: str = DEFAULT_BACKEND,
        telemetry=None,
        prefilter: bool = False,
        profiler=None,
    ) -> None:
        super().__init__(f"whereConsolidated[{len(pids)}]")
        self.merged = merged
        self.pids = list(pids)
        self._telemetry = telemetry
        self._profiler = profiler
        self._functions = functions
        self.guard = None
        if prefilter:
            guards = _make_guards(
                [merged], functions, cost_model, backend, telemetry
            )
            self.guard = guards[0] if guards else None
        self.runner = make_runner(
            merged,
            functions,
            cost_model,
            backend=backend,
            memoize_calls=memoize_calls,
            telemetry=telemetry,
            profiler=profiler,
        )
        self._vectorized = backend == "vectorized"
        if self._vectorized:
            self._vp = vectorize_cached(
                merged,
                functions,
                cost_model,
                memoize_calls=memoize_calls,
                telemetry=telemetry,
            )
            self._vguard = self._vector_guard(
                self.guard, merged, functions, cost_model, telemetry
            )

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        if self._vectorized:
            self._buffer(record, worker)
            return ()
        args = _bind_args(self.merged, record)
        if self.guard is not None and self._reject(self.guard, args, worker):
            return ()
        result = self.runner(args)
        worker.charge_udf(result.cost)
        for pid in self.pids:
            if result.notification(pid):
                worker.notify(pid, record)
        return ()

    def on_flush(self, worker: Worker) -> None:
        if self._vectorized:
            records = self._drain(worker)
            if records:
                kept = self._apply_guard(
                    self._vguard, self.guard, self.merged, records, worker
                )
                batch = self._run_batch(self._vp, self.merged, kept, worker)
                if batch is not None:
                    for pid in self.pids:
                        for record in self._notified(batch, pid, kept):
                            worker.notify(pid, record)
        super().on_flush(worker)


class FlatMap(Vertex):
    """Expand each record into zero or more records (Naiad's SelectMany).

    The per-record cost is ``base_cost + unit_cost * len(output)``, which
    models the traversal the expansion performs.
    """

    def __init__(
        self,
        fn: Callable[[Any], Iterable[Any]],
        base_cost: int = 5,
        unit_cost: int = 1,
        name: str = "flatMap",
    ) -> None:
        super().__init__(name)
        self.fn = fn
        self.base_cost = base_cost
        self.unit_cost = unit_cost

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        outputs = list(self.fn(record))
        worker.charge_udf(self.base_cost + self.unit_cost * len(outputs))
        return outputs


class CountByKey(Vertex):
    """A keyed counting sink: bucket ``name`` receives per-worker dicts.

    This is the aggregation at the heart of the Naiad tutorial's WordCount
    (which the paper's News Q1 family is modelled after); final per-key
    counts are obtained by summing the per-worker partial dictionaries,
    exactly as a data-parallel engine would combine its shards.
    """

    def __init__(self, bucket: str = "counts", cost_per_record: int = 2) -> None:
        super().__init__(f"countByKey[{bucket}]")
        self.bucket = bucket
        self.cost_per_record = cost_per_record
        self._partials: dict[int, dict[Any, int]] = {}

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        worker.charge_udf(self.cost_per_record)
        table = self._partials.setdefault(worker.index, {})
        table[record] = table.get(record, 0) + 1
        return ()

    def on_flush(self, worker: Worker) -> None:
        partial = self._partials.pop(worker.index, None)
        if partial is not None:
            worker.notify(self.bucket, partial)

    @staticmethod
    def combine(partials: Iterable[dict]) -> dict:
        """Sum per-worker partial counts into the final table."""

        totals: dict[Any, int] = {}
        for partial in partials:
            for key, count in partial.items():
                totals[key] = totals.get(key, 0) + count
        return totals


class Select(Vertex):
    """A projection with a fixed per-record cost."""

    def __init__(self, fn: Callable[[Any], Any], cost: int = 3, name: str = "select") -> None:
        super().__init__(name)
        self.fn = fn
        self.cost = cost

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        worker.charge_udf(self.cost)
        yield self.fn(record)


class Count(Vertex):
    """A counting sink feeding bucket ``name`` with the final count."""

    def __init__(self, bucket: str = "count") -> None:
        super().__init__(f"count[{bucket}]")
        self.bucket = bucket
        self._counts: dict[int, int] = {}

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        self._counts[worker.index] = self._counts.get(worker.index, 0) + 1
        return ()

    def on_flush(self, worker: Worker) -> None:
        if worker.index in self._counts:
            worker.notify(self.bucket, self._counts.pop(worker.index))


class Collect(Vertex):
    """A sink storing every record it sees into bucket ``name``."""

    def __init__(self, bucket: str = "out") -> None:
        super().__init__(f"collect[{bucket}]")
        self.bucket = bucket

    def process(self, record: Any, worker: Worker) -> Iterable[Any]:
        worker.notify(self.bucket, record)
        return ()
