"""The mini timely-dataflow engine (Naiad substitute; see DESIGN.md).

* :mod:`repro.naiad.dataflow` — graph, workers, cost clock, notifications,
* :mod:`repro.naiad.operators` — Where / WhereMany / WhereConsolidated / ...,
* :mod:`repro.naiad.linq` — the fluent query façade and batch entry points.
"""

from .dataflow import Dataflow, OperatorStats, RunMetrics, RunResult, Vertex, Worker
from .linq import Query, from_collection, run_where_consolidated, run_where_many
from .operators import Collect, Count, CountByKey, FlatMap, Select, Where, WhereConsolidated, WhereMany


def __getattr__(name: str):
    if name == "JobMetrics":  # deprecated alias; warns via the dataflow module
        from . import dataflow

        return dataflow.JobMetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
