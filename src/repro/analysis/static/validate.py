"""Translation validation for consolidations (the static half of Theorem 1).

:func:`validate_consolidation` certifies, without running anything, the
two obligations Definition 1 imposes on a merged program:

1. **Notification exactness** — the merged program notifies exactly the
   union of the originals' pids, each exactly once on every path
   (reaching-notifications domain).
2. **Cost** — a static worst-case cost bound of the merged program does
   not exceed the sum of the originals' bounds.  Loop-free programs get
   exact worst-case path costs; loops are bounded by interval trip counts,
   falling back to SMT-proved invariants from
   :mod:`repro.analysis.invariants` when the intervals alone are too weak.

Verdicts are deliberately asymmetric.  ``refuted`` is only ever produced
by the notification check, whose domain computes *definite* multiplicity
bounds; the cost check answers ``proved``/``unknown`` because comparing
two upper bounds can never disprove the pointwise inequality (a merged
bound may be looser, not larger in reality).  The dynamic checker in
:mod:`repro.consolidation.verify` remains the oracle for ``unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ...lang.ast import Arg, Expr, Program, Var, While
from ...lang.cost import DEFAULT_COST_MODEL, CostModel
from ...lang.functions import FunctionTable
from ...lang.visitors import expr_args, expr_vars, notified_pids, stmt_args, stmt_vars
from ...smt.interface import arg_sym, var_sym
from ...smt.terms import Eq, FAnd, Formula, Le, Num, as_linear, fand, le_f
from ..invariants import loop_invariant
from .costbound import stmt_cost_upper, trip_count_bound
from .domains import IntervalConstDomain, NotificationDomain
from .framework import analyze_program
from .values import Interval, StaticEnv

__all__ = ["StaticValidation", "validate_consolidation"]

PROVED = "proved"
UNKNOWN = "unknown"
REFUTED = "refuted"


@dataclass
class StaticValidation:
    """The validator's certificate (or lack of one) for one consolidation."""

    merged_pid: str
    original_pids: tuple
    notify_verdict: str  # proved | unknown | refuted
    cost_verdict: str  # proved | unknown
    merged_cost_upper: Optional[int]
    originals_cost_upper: Optional[int]
    details: tuple = ()

    @property
    def certified(self) -> bool:
        """Both obligations statically discharged."""

        return self.notify_verdict == PROVED and self.cost_verdict == PROVED

    @property
    def refuted(self) -> bool:
        return self.notify_verdict == REFUTED

    def to_dict(self) -> dict:
        return {
            "merged": self.merged_pid,
            "originals": list(self.original_pids),
            "notify": self.notify_verdict,
            "cost": self.cost_verdict,
            "merged_cost_upper": self.merged_cost_upper,
            "originals_cost_upper": self.originals_cost_upper,
            "certified": self.certified,
            "details": list(self.details),
        }


# ---------------------------------------------------------------------------
# Notification exactness
# ---------------------------------------------------------------------------


def _expected_pids(originals: Sequence[Program]) -> set[str]:
    expected: set[str] = set()
    for o in originals:
        pids = notified_pids(o.body)
        expected |= pids if pids else {o.pid}
    return expected


def _check_notifications(
    originals: Sequence[Program], merged: Program, details: list
) -> str:
    domain = NotificationDomain()

    # Whether each original itself provably notifies its pids exactly once;
    # if not, "exactly once in the merged program" is not the right spec and
    # a merged-side failure must stay UNKNOWN rather than REFUTED.
    originals_exact = True
    for o in originals:
        final_o = analyze_program(domain, o)
        for pid in sorted(notified_pids(o.body)):
            if domain.exactly_once(final_o, pid) is not True:
                originals_exact = False
                details.append(
                    f"original '{o.pid}': cannot prove '{pid}' notified exactly once"
                )

    final_m = analyze_program(domain, merged)
    if domain.is_bottom(final_m):
        details.append("merged program has no reachable exit")
        return UNKNOWN

    expected = _expected_pids(originals)
    verdict = PROVED
    extra = notified_pids(merged.body) - expected
    if extra:
        details.append(f"merged notifies pids outside the union: {sorted(extra)}")
        verdict = REFUTED
    for pid in sorted(expected):
        status = domain.exactly_once(final_m, pid)
        if status is True:
            continue
        if status is False and originals_exact:
            lo, hi = final_m.range_for(pid)
            details.append(
                f"merged '{pid}' notified between {lo} and {hi} times, never exactly once"
            )
            verdict = REFUTED
        else:
            lo, hi = final_m.range_for(pid)
            details.append(
                f"merged '{pid}' notification count in [{lo}, {hi}]: not provably exact"
            )
            if verdict != REFUTED:
                verdict = UNKNOWN
    return verdict


# ---------------------------------------------------------------------------
# Cost bounds (with the SMT-invariant fallback for loops)
# ---------------------------------------------------------------------------


def _env_formula(env: StaticEnv, loop: While) -> Formula:
    """Encode the entry env's interval facts about the loop's names as Ψ."""

    conjuncts = []
    names = [(n, False) for n in sorted(stmt_vars(loop.body) | expr_vars(loop.cond))]
    names += [(n, True) for n in sorted(stmt_args(loop.body) | expr_args(loop.cond))]
    for name, is_arg in names:
        atom: Expr = Arg(name) if is_arg else Var(name)
        iv = env.eval_int(atom)
        sym = arg_sym(name) if is_arg else var_sym(name)
        if iv.lo is not None:
            conjuncts.append(le_f(Num(iv.lo), sym))
        if iv.hi is not None:
            conjuncts.append(le_f(sym, Num(iv.hi)))
    return fand(*conjuncts)


def _sym_atom(name: str) -> Optional[Expr]:
    if name.startswith("v!"):
        return Var(name[2:])
    if name.startswith("a!"):
        return Arg(name[2:])
    return None


def _refine_env_from_invariant(env: StaticEnv, inv: Formula) -> StaticEnv:
    """Meet single-variable ``k*v + c <= 0`` / ``= 0`` facts into ``env``."""

    refined = env.copy()
    parts = inv.args if isinstance(inv, FAnd) else (inv,)
    for part in parts:
        if not isinstance(part, (Le, Eq)):
            continue
        const, coeffs = as_linear(part.term)
        if len(coeffs) != 1:
            continue
        ((atom_term, k),) = coeffs.items()
        name = getattr(atom_term, "name", None)
        if name is None:
            continue
        atom = _sym_atom(name)
        if atom is None:
            continue
        if isinstance(part, Eq):
            if const % k == 0:
                v = -const // k
                bound = Interval.make(v, v)
            else:
                continue
        elif k > 0:  # k*v <= -const  =>  v <= floor(-const / k)
            bound = Interval.make(None, (-const) // k)
        else:  # -m*v <= -const  =>  v >= ceil(const / m)
            m = -k
            bound = Interval.make(-((-const) // m), None)
        refined.ints[atom] = refined.eval_int(atom).meet(bound)
    return refined


def make_invariant_loop_bound(engine, solver):
    """A ``loop_bound_hook`` backed by :func:`repro.analysis.invariants.loop_invariant`.

    Encodes the entry abstract environment as Ψ, asks the guess-and-check
    inference for an inductive invariant, folds any proved single-variable
    bounds back into the intervals, and retries the trip-count argument.
    """

    def hook(loop: While, env: StaticEnv) -> Optional[int]:
        try:
            psi = _env_formula(env, loop)
            inv = loop_invariant(engine, solver, psi, [loop.cond], loop.body)
            refined = _refine_env_from_invariant(env, inv)
            return trip_count_bound(loop, refined)
        except Exception:  # inference is best-effort; no bound, no harm
            return None

    return hook


def _cost_upper(
    program: Program,
    functions: Optional[FunctionTable],
    cost_model: CostModel,
    hook,
) -> Optional[int]:
    domain = IntervalConstDomain.for_program(program)
    cost, _ = stmt_cost_upper(
        program.body, functions, cost_model, StaticEnv(), domain, hook
    )
    return cost


def _check_cost(
    originals: Sequence[Program],
    merged: Program,
    functions: Optional[FunctionTable],
    cost_model: CostModel,
    hook,
    details: list,
) -> tuple[str, Optional[int], Optional[int]]:
    merged_ub = _cost_upper(merged, functions, cost_model, hook)
    total: Optional[int] = 0
    for o in originals:
        ub = _cost_upper(o, functions, cost_model, hook)
        if ub is None:
            details.append(f"original '{o.pid}': no finite static cost bound")
            total = None
            break
        total = total + ub
    if merged_ub is None:
        details.append(f"merged '{merged.pid}': no finite static cost bound")
    if merged_ub is None or total is None:
        return UNKNOWN, merged_ub, total
    if merged_ub <= total:
        return PROVED, merged_ub, total
    details.append(
        f"merged bound {merged_ub} exceeds originals' total {total} "
        "(bounds too loose to certify; dynamic check remains authoritative)"
    )
    return UNKNOWN, merged_ub, total


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def validate_consolidation(
    originals: Sequence[Program],
    merged: Program,
    functions: Optional[FunctionTable] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    engine=None,
    solver=None,
) -> StaticValidation:
    """Statically certify ``merged`` against the ``originals`` it replaces.

    ``engine``/``solver`` (an :class:`~repro.analysis.sp.SpEngine` and a
    :class:`~repro.smt.solver.Solver`) are optional; when provided, loops
    the interval domain cannot bound get a second chance through the
    SMT-backed invariant inference.
    """

    details: list[str] = []
    notify_verdict = _check_notifications(originals, merged, details)
    hook = (
        make_invariant_loop_bound(engine, solver)
        if engine is not None and solver is not None
        else None
    )
    cost_verdict, merged_ub, total_ub = _check_cost(
        originals, merged, functions, cost_model, hook, details
    )
    return StaticValidation(
        merged_pid=merged.pid,
        original_pids=tuple(o.pid for o in originals),
        notify_verdict=notify_verdict,
        cost_verdict=cost_verdict,
        merged_cost_upper=merged_ub,
        originals_cost_upper=total_ub,
        details=tuple(details),
    )
