"""Forward abstract interpretation over the Figure-1 IR.

* :mod:`repro.analysis.static.framework` — the structured fixpoint engine
  (``Seq``/``If``/``While`` with widening) parameterised by a
  :class:`~repro.analysis.static.framework.Domain`,
* :mod:`repro.analysis.static.values` — intervals, three-valued booleans
  and the non-relational :class:`~repro.analysis.static.values.StaticEnv`,
* :mod:`repro.analysis.static.domains` — interval/constant,
  definite-assignment and reaching-notification domains,
* :mod:`repro.analysis.static.costbound` — worst-case cost bounds with
  trip-count inference,
* :mod:`repro.analysis.static.lint` — the UDF linter behind ``repro lint``,
* :mod:`repro.analysis.static.sarif` — SARIF 2.1.0 emission for the
  linter's findings (``repro lint --format sarif``),
* :mod:`repro.analysis.static.validate` — the consolidation translation
  validator of Theorem 1's static half.
"""

from .domains import (
    DefiniteAssignmentDomain,
    IntervalConstDomain,
    NotificationDomain,
    widening_thresholds,
)
from .framework import Domain, analyze_program, analyze_stmt, loop_invariant_state
from .costbound import (
    constant_step,
    program_cost_upper,
    stmt_cost_upper,
    trip_count_bound,
)
from .lint import Finding, LintReport, lint_program, lint_programs
from .sarif import render_sarif, to_sarif
from .validate import StaticValidation, validate_consolidation
from .values import Interval, StaticEnv

__all__ = [
    "Domain",
    "analyze_program",
    "analyze_stmt",
    "loop_invariant_state",
    "Interval",
    "StaticEnv",
    "IntervalConstDomain",
    "DefiniteAssignmentDomain",
    "NotificationDomain",
    "widening_thresholds",
    "constant_step",
    "trip_count_bound",
    "stmt_cost_upper",
    "program_cost_upper",
    "Finding",
    "LintReport",
    "lint_program",
    "lint_programs",
    "render_sarif",
    "to_sarif",
    "StaticValidation",
    "validate_consolidation",
]
