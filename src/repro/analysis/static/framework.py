"""A forward abstract-interpretation framework over the Figure-1 IR.

The IR is *structured* (no gotos), so the classic worklist over a CFG
collapses into a recursive interpreter with one fixpoint per ``While``:

* ``Seq`` threads the state through its statements;
* ``If`` analyses both arms under ``assume``-refined states and joins;
* ``While`` iterates ``inv := inv ∇ (inv ⊔ post(body under inv ∧ guard))``
  until stable, applying the domain's widening after
  :data:`WIDEN_AFTER` ascending steps (and the domain's *last-resort*
  ``widen_top`` after :data:`WIDEN_TOP_AFTER`, so slow climbs — e.g.
  threshold widening over a constant-rich program — still terminate),
  then exits under ``inv ∧ ¬guard``.

A :class:`Domain` packages the lattice and the transfer functions; the
interval/constant, definite-assignment and reaching-notification domains
in :mod:`repro.analysis.static.domains` plug in here, and so would any
future one (the framework never inspects states).

``visit`` observers receive ``(stmt, pre_state)`` for every statement in
program order — inside loops they observe the *stabilised* invariant pass
only, so a linter sees each syntactic statement exactly once with a state
that covers every concrete visit.
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

from ...lang.ast import (
    Assign,
    Expr,
    If,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    While,
)

__all__ = [
    "Domain",
    "analyze_stmt",
    "analyze_program",
    "loop_invariant_state",
    "WIDEN_AFTER",
    "WIDEN_TOP_AFTER",
    "MAX_ITER",
]

S = TypeVar("S")

WIDEN_AFTER = 3
WIDEN_TOP_AFTER = 24
MAX_ITER = 64

Visit = Callable[[Stmt, S], None]


class Domain(Generic[S]):
    """The lattice + transfer-function interface the interpreter drives.

    Subclasses supply immutable-by-convention states (the framework never
    mutates one — every transfer returns a fresh state or the input
    unchanged) and must satisfy the usual soundness obligations: ``join``
    over-approximates both inputs, ``widen`` additionally guarantees
    finite ascending chains, and each ``transfer_*`` over-approximates the
    concrete semantics of the statement kind it models.
    """

    # -- lattice ---------------------------------------------------------------

    def initial(self, program: Program) -> S:
        raise NotImplementedError

    def bottom(self) -> S:
        raise NotImplementedError

    def is_bottom(self, state: S) -> bool:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def widen(self, older: S, newer: S) -> S:
        return self.join(older, newer)

    def widen_top(self, older: S, newer: S) -> S:
        """Last-resort widening once ``widen`` has had its chances.

        ``widen`` may climb slowly toward a fixpoint (e.g. interval
        widening-with-thresholds moves one threshold per step, and a
        program can carry more thresholds than the iteration budget).
        After :data:`WIDEN_TOP_AFTER` steps the framework switches to this
        operator, which must reach a fixpoint in O(1) further steps —
        typically by discarding any precision device (thresholds) and
        jumping unstable components straight to top.
        """

        return self.widen(older, newer)

    def leq(self, a: S, b: S) -> bool:
        raise NotImplementedError

    # -- transfer functions ------------------------------------------------------

    def transfer_assign(self, state: S, var: str, expr: Expr) -> S:
        raise NotImplementedError

    def transfer_notify(self, state: S, pid: str, expr: Expr) -> S:
        return state

    def transfer_assume(self, state: S, cond: Expr, positive: bool) -> S:
        """Refine ``state`` by a branch outcome; bottom = branch infeasible."""

        return state


def analyze_stmt(
    domain: Domain[S],
    state: S,
    stmt: Stmt,
    visit: Optional[Visit] = None,
) -> S:
    """Abstractly execute ``stmt`` from ``state``; returns the post-state."""

    if domain.is_bottom(state):
        return state

    if visit is not None and not isinstance(stmt, (Seq, Skip)):
        visit(stmt, state)

    if isinstance(stmt, Skip):
        return state
    if isinstance(stmt, Assign):
        return domain.transfer_assign(state, stmt.var, stmt.expr)
    if isinstance(stmt, Notify):
        return domain.transfer_notify(state, stmt.pid, stmt.expr)
    if isinstance(stmt, Seq):
        for sub in stmt.stmts:
            state = analyze_stmt(domain, state, sub, visit)
            if domain.is_bottom(state):
                return state
        return state
    if isinstance(stmt, If):
        then_in = domain.transfer_assume(state, stmt.cond, True)
        else_in = domain.transfer_assume(state, stmt.cond, False)
        then_out = analyze_stmt(domain, then_in, stmt.then, visit)
        else_out = analyze_stmt(domain, else_in, stmt.orelse, visit)
        return domain.join(then_out, else_out)
    if isinstance(stmt, While):
        inv = _loop_invariant(domain, state, stmt)
        if visit is not None:
            # One observed pass under the stabilised invariant; its result
            # is discarded (the fixpoint already absorbed it).
            body_in = domain.transfer_assume(inv, stmt.cond, True)
            analyze_stmt(domain, body_in, stmt.body, visit)
        return domain.transfer_assume(inv, stmt.cond, False)
    raise TypeError(f"not a statement: {stmt!r}")


def _loop_invariant(domain: Domain[S], entry: S, loop: While) -> S:
    """The structured fixpoint: a state stable across loop iterations."""

    inv = entry
    for iteration in range(MAX_ITER):
        body_in = domain.transfer_assume(inv, loop.cond, True)
        body_out = analyze_stmt(domain, body_in, loop.body)
        nxt = domain.join(entry, body_out)
        if domain.leq(nxt, inv):
            return inv
        if iteration >= WIDEN_TOP_AFTER:
            inv = domain.widen_top(inv, nxt)
        elif iteration >= WIDEN_AFTER:
            inv = domain.widen(inv, nxt)
        else:
            inv = nxt
    # The widening contract guarantees convergence long before MAX_ITER;
    # reaching it means a domain bug, so fail loudly rather than return an
    # invariant that may not be inductive.
    raise RuntimeError(
        f"abstract fixpoint did not converge in {MAX_ITER} iterations "
        f"({type(domain).__name__})"
    )


def loop_invariant_state(domain: Domain[S], entry: S, loop: While) -> S:
    """Public access to the per-loop fixpoint (used by the cost bounder)."""

    return _loop_invariant(domain, entry, loop)


def analyze_program(
    domain: Domain[S],
    program: Program,
    visit: Optional[Visit] = None,
) -> S:
    """Analyze a whole program from the domain's initial state."""

    return analyze_stmt(domain, domain.initial(program), program.body, visit)
