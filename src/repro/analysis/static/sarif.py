"""SARIF 2.1.0 emission for the static linter.

``repro lint --format sarif`` turns a batch of :class:`LintReport` objects
into one Static Analysis Results Interchange Format document so the
findings can be uploaded to code-scanning UIs (GitHub, VS Code SARIF
viewers) without a bespoke adapter.  The mapping is deliberately small:

* one ``run`` for the whole invocation, tool driver ``repro-lint``;
* one ``reportingDescriptor`` (rule) per distinct finding rule id;
* one ``result`` per finding, with the program pid carried as a logical
  location (UDFs are generated or parsed from argv, so there is no
  physical file/region to point at) and the offending snippet, when the
  pass recorded one, appended to the message.

Severity mapping: linter ``error`` → SARIF ``error``, ``warning`` →
``warning``, anything else (the informational prefilter findings) →
``note``.
"""

from __future__ import annotations

import json
from typing import Sequence

from .lint import Finding, LintReport

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _level(finding: Finding) -> str:
    return _LEVELS.get(finding.severity, "note")


def _message(finding: Finding) -> str:
    if finding.snippet:
        return f"{finding.message} [{finding.snippet}]"
    return finding.message


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _level(finding),
        "message": {"text": _message(finding)},
        "locations": [
            {
                "logicalLocations": [
                    {"name": finding.program, "kind": "function"}
                ]
            }
        ],
    }


def to_sarif(reports: Sequence[LintReport]) -> dict[str, object]:
    """Build one SARIF 2.1.0 document from every report's findings."""

    findings = [f for report in reports for f in report.findings]
    rules = sorted({f.rule for f in findings})
    driver: dict[str, object] = {
        "name": "repro-lint",
        "informationUri": "https://github.com/",
        "rules": [
            {
                "id": rule,
                "shortDescription": {"text": rule.replace("-", " ")},
            }
            for rule in rules
        ],
    }
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(reports: Sequence[LintReport]) -> str:
    """``to_sarif`` serialised the way ``repro lint`` prints it."""

    return json.dumps(to_sarif(reports), indent=2, sort_keys=True)
