"""Abstract values for the static analyses: intervals, bool/str facts.

Everything here is *non-relational*: an abstract environment maps each
atom (a local variable or a program argument) to a value abstracting the
set of concrete values it may hold, independently of the other atoms.
That choice buys a crucial maintenance property exploited by the
simplifier's entailment pre-check: assigning one variable can never
invalidate a fact recorded about another, so transfer functions are O(1).

Three value lattices cover the language's three sorts:

* :class:`Interval` — integer ranges with ±∞ endpoints (the classic
  interval domain, with threshold widening);
* boolean facts — a ``frozenset`` drawn from ``{True, False}``;
* string facts — a small ``frozenset`` of possible interned strings,
  saturating to TOP above :data:`_MAX_STR_SET`.

:class:`StaticEnv` packages an environment over these values with the
transfer functions (``assign``, ``assume``, ``havoc``, ``join``) and the
three-valued evaluators (``eval_bool`` returning ``True``/``False``/
``None``) that the framework domains, the linter's reachability checks
and the SMT pre-check all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ...lang.ast import (
    Arg,
    BinOp,
    BoolConst,
    BoolOp,
    Cmp,
    Expr,
    IntConst,
    Not,
    StrConst,
    Var,
)

__all__ = [
    "Interval",
    "TOP_INTERVAL",
    "BoolFact",
    "StrFact",
    "TOP_BOOL",
    "TOP_STR",
    "AbstractValue",
    "StaticEnv",
    "interval_of_const",
]

_MAX_STR_SET = 8


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` endpoints mean ±∞.

    The empty interval (``lo > hi``) is canonicalised to :data:`EMPTY` by
    :meth:`make`, so emptiness checks are a single identity comparison.
    """

    lo: Optional[int]
    hi: Optional[int]

    @staticmethod
    def make(lo: Optional[int], hi: Optional[int]) -> "Interval":
        if lo is not None and hi is not None and lo > hi:
            return EMPTY
        return Interval(lo, hi)

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, v: int) -> bool:
        if self.is_empty:
            return False
        return (self.lo is None or self.lo <= v) and (self.hi is None or v <= self.hi)

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        return Interval.make(lo, hi)

    def leq(self, other: "Interval") -> bool:
        """Inclusion: every value of ``self`` lies in ``other``."""

        if self.is_empty:
            return True
        if other.is_empty:
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    def widen(self, newer: "Interval", thresholds: tuple[int, ...] = ()) -> "Interval":
        """Classic interval widening with threshold sets.

        Unstable bounds jump to the nearest enclosing threshold (loop-bound
        constants collected from the program text) before giving up to ±∞,
        which is what keeps the 1..12 month loops finitely bounded.
        """

        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        lo, hi = self.lo, self.hi
        if newer.lo is not None and (lo is None or newer.lo < lo):
            below = [t for t in thresholds if newer.lo >= t]
            lo = max(below) if below else None
        elif lo is not None and newer.lo is None:
            lo = None
        if newer.hi is not None and (hi is None or newer.hi > hi):
            above = [t for t in thresholds if newer.hi <= t]
            hi = min(above) if above else None
        elif hi is not None and newer.hi is None:
            hi = None
        return Interval(lo, hi)

    # -- arithmetic -------------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        corners: list[Optional[int]] = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    # A ±∞ endpoint makes some corner unbounded unless the
                    # other factor is exactly zero; be conservatively TOP.
                    unbounded = True
                else:
                    corners.append(a * b)
        if unbounded or not corners:
            return TOP_INTERVAL
        vals = [c for c in corners if c is not None]
        return Interval(min(vals), max(vals))

    # -- comparisons (three-valued) ----------------------------------------------

    def always_lt(self, other: "Interval") -> bool:
        return (
            not self.is_empty
            and not other.is_empty
            and self.hi is not None
            and other.lo is not None
            and self.hi < other.lo
        )

    def always_le(self, other: "Interval") -> bool:
        return (
            not self.is_empty
            and not other.is_empty
            and self.hi is not None
            and other.lo is not None
            and self.hi <= other.lo
        )

    def never_overlaps(self, other: "Interval") -> bool:
        return self.meet(other).is_empty


TOP_INTERVAL = Interval(None, None)
EMPTY = Interval(1, 0)


def interval_of_const(v: int) -> Interval:
    return Interval(v, v)


# ---------------------------------------------------------------------------
# Boolean / string facts
# ---------------------------------------------------------------------------

BoolFact = frozenset  # subset of {True, False}
StrFact = Union[frozenset, None]  # None = TOP (any string)

TOP_BOOL: BoolFact = frozenset((True, False))
TOP_STR: StrFact = None

AbstractValue = Union[Interval, BoolFact, None]


def _join_str(a: StrFact, b: StrFact) -> StrFact:
    if a is None or b is None:
        return None
    u = a | b
    return None if len(u) > _MAX_STR_SET else u


# ---------------------------------------------------------------------------
# The abstract environment
# ---------------------------------------------------------------------------


@dataclass
class StaticEnv:
    """A non-relational abstract store over :class:`Var`/:class:`Arg` atoms.

    ``ints`` maps atom keys to :class:`Interval`; ``bools`` to subsets of
    ``{True, False}``; ``strs`` to finite string sets.  Missing keys mean
    TOP.  Keys are the AST atoms themselves (``Var``/``Arg`` are frozen and
    hashable), so variables and same-named arguments never collide.

    ``unreachable`` marks the bottom state: the program point cannot be
    reached, every query about it may answer anything — callers are
    expected to check it before trusting an evaluation.
    """

    ints: dict[Expr, Interval] = field(default_factory=dict)
    bools: dict[Expr, BoolFact] = field(default_factory=dict)
    strs: dict[Expr, frozenset] = field(default_factory=dict)
    unreachable: bool = False

    # -- plumbing -------------------------------------------------------------

    def copy(self) -> "StaticEnv":
        return StaticEnv(dict(self.ints), dict(self.bools), dict(self.strs), self.unreachable)

    @staticmethod
    def bottom() -> "StaticEnv":
        return StaticEnv(unreachable=True)

    def mark_unreachable(self) -> None:
        self.ints.clear()
        self.bools.clear()
        self.strs.clear()
        self.unreachable = True

    # -- evaluation -------------------------------------------------------------

    def eval_int(self, e: Expr) -> Interval:
        """The interval abstracting ``e``'s integer value in this env."""

        if isinstance(e, IntConst):
            return interval_of_const(e.value)
        if isinstance(e, (Var, Arg)):
            return self.ints.get(e, TOP_INTERVAL)
        if isinstance(e, BinOp):
            left = self.eval_int(e.left)
            right = self.eval_int(e.right)
            if e.op == "+":
                return left.add(right)
            if e.op == "-":
                return left.sub(right)
            return left.mul(right)
        return TOP_INTERVAL  # Call, or an ill-sorted expression

    def eval_str(self, e: Expr) -> StrFact:
        if isinstance(e, StrConst):
            return frozenset((e.value,))
        if isinstance(e, (Var, Arg)):
            return self.strs.get(e, TOP_STR)
        return TOP_STR

    def eval_bool(self, e: Expr) -> Optional[bool]:
        """Three-valued evaluation: True / False / None (undecided)."""

        if isinstance(e, BoolConst):
            return e.value
        if isinstance(e, (Var, Arg)):
            fact = self.bools.get(e, TOP_BOOL)
            if fact == frozenset((True,)):
                return True
            if fact == frozenset((False,)):
                return False
            return None
        if isinstance(e, Not):
            inner = self.eval_bool(e.operand)
            return None if inner is None else (not inner)
        if isinstance(e, BoolOp):
            left = self.eval_bool(e.left)
            right = self.eval_bool(e.right)
            if e.op == "and":
                if left is False or right is False:
                    return False
                if left is True and right is True:
                    return True
                return None
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if isinstance(e, Cmp):
            return self._eval_cmp(e)
        return None

    def _eval_cmp(self, e: Cmp) -> Optional[bool]:
        # String equality decides on singleton/disjoint fact sets.
        if e.op == "=" and (self._is_strish(e.left) or self._is_strish(e.right)):
            ls, rs = self.eval_str(e.left), self.eval_str(e.right)
            if ls is not None and rs is not None:
                if len(ls) == 1 and ls == rs:
                    return True
                if not (ls & rs):
                    return False
            return None
        left = self.eval_int(e.left)
        right = self.eval_int(e.right)
        if left.is_empty or right.is_empty:
            return None  # vacuous state: refuse to decide
        if e.op == "<":
            if left.always_lt(right):
                return True
            if right.always_le(left):
                return False
            return None
        if e.op == "<=":
            if left.always_le(right):
                return True
            if right.always_lt(left):
                return False
            return None
        # '='
        if left.is_const and right.is_const and left.lo == right.lo:
            return True
        if left.never_overlaps(right):
            return False
        return None

    def _is_strish(self, e: Expr) -> bool:
        return isinstance(e, StrConst) or (isinstance(e, (Var, Arg)) and e in self.strs)

    # -- transfer functions -------------------------------------------------------

    def assign(self, var: str, rhs: Expr) -> None:
        """Update for ``var := rhs`` (in place).

        Non-relationality means no other atom's fact can mention ``var``,
        so the only update needed is the target's own.
        """

        key = Var(var)
        if self.unreachable:
            self.ints.pop(key, None)
            self.bools.pop(key, None)
            self.strs.pop(key, None)
            return
        # Evaluate the right-hand side *before* killing the target's old
        # facts — ``i := i + 1`` must see the old ``i``.
        new_bool: Optional[frozenset] = None
        new_str: Optional[frozenset] = None
        new_int: Optional[Interval] = None
        if isinstance(rhs, BoolConst):
            new_bool = frozenset((rhs.value,))
        elif isinstance(rhs, (Cmp, Not, BoolOp)):
            fact = self.eval_bool(rhs)
            if fact is not None:
                new_bool = frozenset((fact,))
        elif isinstance(rhs, StrConst):
            new_str = frozenset((rhs.value,))
        elif isinstance(rhs, (Var, Arg)):
            # Copy whatever facts the source atom carries.
            new_bool = self.bools.get(rhs)
            new_str = self.strs.get(rhs)
            new_int = self.ints.get(rhs)
        else:
            iv = self.eval_int(rhs)
            if iv != TOP_INTERVAL and not iv.is_empty:
                new_int = iv
        self.ints.pop(key, None)
        self.bools.pop(key, None)
        self.strs.pop(key, None)
        if new_bool is not None:
            self.bools[key] = new_bool
        if new_str is not None:
            self.strs[key] = new_str
        if new_int is not None:
            self.ints[key] = new_int

    def havoc(self, names: Iterable[str]) -> None:
        for n in names:
            key = Var(n)
            self.ints.pop(key, None)
            self.bools.pop(key, None)
            self.strs.pop(key, None)

    def assume(self, cond: Expr, positive: bool = True) -> None:
        """Refine the env by the branch outcome of ``cond`` (in place).

        Only refinements that are *sound over-approximations* are applied:
        each atom's fact is met with the constraint the comparison implies
        for it alone.  A refinement that empties a fact marks the state
        unreachable.
        """

        if self.unreachable:
            return
        known = self.eval_bool(cond)
        if known is not None:
            if known != positive:
                self.mark_unreachable()
            return
        if isinstance(cond, Not):
            self.assume(cond.operand, not positive)
            return
        if isinstance(cond, BoolOp):
            if cond.op == "and" and positive:
                self.assume(cond.left, True)
                self.assume(cond.right, True)
            elif cond.op == "or" and not positive:
                self.assume(cond.left, False)
                self.assume(cond.right, False)
            # ``or`` under truth / ``and`` under falsity need a disjunction
            # of refinements: skip (sound, merely imprecise).
            return
        if isinstance(cond, (Var, Arg)):
            fact = self.bools.get(cond, TOP_BOOL) & frozenset((positive,))
            if not fact:
                self.mark_unreachable()
            else:
                self.bools[cond] = fact
            return
        if isinstance(cond, Cmp):
            self._assume_cmp(cond, positive)

    def _assume_cmp(self, cond: Cmp, positive: bool) -> None:
        op, left, right = cond.op, cond.left, cond.right
        if op == "=" and not positive:
            # Disequality refines only singleton string facts usefully.
            ls, rs = self.eval_str(left), self.eval_str(right)
            if isinstance(left, (Var, Arg)) and ls is not None and rs is not None and len(rs) == 1:
                rest = ls - rs
                if not rest:
                    self.mark_unreachable()
                else:
                    self.strs[left] = rest
            elif isinstance(right, (Var, Arg)) and rs is not None and ls is not None and len(ls) == 1:
                rest = rs - ls
                if not rest:
                    self.mark_unreachable()
                else:
                    self.strs[right] = rest
            return
        if op == "=" and (self._is_strish(left) or self._is_strish(right)):
            if isinstance(left, (Var, Arg)):
                rs = self.eval_str(right)
                if rs is not None:
                    ls = self.eval_str(left)
                    met = rs if ls is None else (ls & rs)
                    if not met:
                        self.mark_unreachable()
                    else:
                        self.strs[left] = met
            if isinstance(right, (Var, Arg)):
                ls = self.eval_str(left)
                if ls is not None:
                    rs = self.eval_str(right)
                    met = ls if rs is None else (rs & ls)
                    if not met:
                        self.mark_unreachable()
                    else:
                        self.strs[right] = met
            return

        # Integer comparisons: derive a bound for each atom side from the
        # other side's interval.  ``positive`` selects the comparison;
        # negation flips it (¬(a < b) ≡ b <= a, total orders only).
        if not positive:
            if op == "<":
                op, left, right = "<=", right, left
            elif op == "<=":
                op, left, right = "<", right, left
            else:
                return  # ¬(a = b) over ints: no single-atom refinement
        lv = self.eval_int(left)
        rv = self.eval_int(right)
        if op == "=":
            self._refine_int(left, rv)
            self._refine_int(right, lv)
            return
        shift = 1 if op == "<" else 0
        if rv.hi is not None:
            self._refine_int(left, Interval(None, rv.hi - shift))
        if lv.lo is not None:
            self._refine_int(right, Interval(lv.lo + shift, None))

    def _refine_int(self, e: Expr, bound: Interval) -> None:
        if not isinstance(e, (Var, Arg)):
            return
        met = self.ints.get(e, TOP_INTERVAL).meet(bound)
        if met.is_empty:
            self.mark_unreachable()
        else:
            self.ints[e] = met

    # -- lattice over whole environments -------------------------------------------

    def join(self, other: "StaticEnv") -> "StaticEnv":
        if self.unreachable:
            return other.copy()
        if other.unreachable:
            return self.copy()
        out = StaticEnv()
        for key in set(self.ints) & set(other.ints):
            j = self.ints[key].join(other.ints[key])
            if j != TOP_INTERVAL:
                out.ints[key] = j
        for key in set(self.bools) & set(other.bools):
            j = self.bools[key] | other.bools[key]
            if j != TOP_BOOL:
                out.bools[key] = j
        for key in set(self.strs) & set(other.strs):
            j = _join_str(self.strs[key], other.strs[key])
            if j is not None:
                out.strs[key] = j
        return out

    def widen(self, newer: "StaticEnv", thresholds: tuple[int, ...] = ()) -> "StaticEnv":
        if self.unreachable:
            return newer.copy()
        if newer.unreachable:
            return self.copy()
        out = StaticEnv()
        for key in set(self.ints) & set(newer.ints):
            w = self.ints[key].widen(newer.ints[key], thresholds)
            if w != TOP_INTERVAL:
                out.ints[key] = w
        for key in set(self.bools) & set(newer.bools):
            j = self.bools[key] | newer.bools[key]
            if j != TOP_BOOL:
                out.bools[key] = j
        for key in set(self.strs) & set(newer.strs):
            j = _join_str(self.strs[key], newer.strs[key])
            if j is not None:
                out.strs[key] = j
        return out

    def leq(self, other: "StaticEnv") -> bool:
        """Whether ``self`` describes a subset of ``other``'s states."""

        if self.unreachable:
            return True
        if other.unreachable:
            return False
        for key, iv in other.ints.items():
            if not self.ints.get(key, TOP_INTERVAL).leq(iv):
                return False
        for key, bf in other.bools.items():
            if not (self.bools.get(key, TOP_BOOL) <= bf):
                return False
        for key, sf in other.strs.items():
            mine = self.strs.get(key)
            if mine is None or not (mine <= sf):
                return False
        return True
