"""A UDF linter built on the abstract-interpretation framework.

Rules (rule id → severity):

* ``use-before-def`` (error) — a local may be read before any path has
  assigned it (definite-assignment domain).
* ``type-error`` / ``non-bool-guard`` / ``non-bool-notify`` (error) —
  sort violations; branch/loop guards and notify payloads must be boolean.
* ``unknown-function`` (error) — a ``Call`` targets a function missing
  from the supplied :class:`~repro.lang.functions.FunctionTable`; exactly
  the condition that makes :mod:`repro.lang.compile` refuse a program, so
  surfacing it here turns silent interpreter fallbacks into findings.
* ``unreachable-branch`` (warning) — the interval domain proves one arm
  of an ``If`` (or a loop body) can never execute.
* ``dead-store`` (warning) — an assignment whose value no later path
  reads (backward liveness).
* ``duplicate-notify`` (error/warning) — some pid is notified twice on
  every/some path.
* ``missing-notify`` (warning) — a pid mentioned in a ``notify`` may
  never be broadcast on some path, or the program notifies nothing.

The paper's Definition 1 demands each query answer *exactly once*, which
is why notify multiplicity is linted as strictly as type errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ...lang.ast import (
    Assign,
    Call,
    Expr,
    If,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    While,
)
from ...lang.functions import BOOL, FunctionTable, Sort
from ...lang.printer import expr_to_str
from ...lang.visitors import (
    TypeError_,
    expr_vars,
    notified_pids,
    subexpressions,
    type_of,
)
from .domains import (
    DefiniteAssignmentDomain,
    IntervalConstDomain,
    NotificationDomain,
)
from .framework import analyze_program

__all__ = ["Finding", "LintReport", "lint_program", "lint_programs"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem in one program."""

    rule: str
    severity: str
    message: str
    program: str
    snippet: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "program": self.program,
            "snippet": self.snippet,
        }


@dataclass
class LintReport:
    """All findings for one program, JSON-serialisable for ``repro lint``."""

    program: str
    findings: tuple = ()

    @property
    def errors(self) -> tuple:
        return tuple(f for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> tuple:
        return tuple(f for f in self.findings if f.severity == WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


# ---------------------------------------------------------------------------
# Individual passes
# ---------------------------------------------------------------------------


def _stmt_reads(s: Stmt) -> Optional[Expr]:
    """The expression ``s`` evaluates first, if any."""

    if isinstance(s, (Assign, Notify)):
        return s.expr
    if isinstance(s, (If, While)):
        return s.cond
    return None


def _check_use_before_def(program: Program, out: list) -> None:
    domain = DefiniteAssignmentDomain()
    reported: set[tuple[str, str]] = set()

    def visit(stmt: Stmt, state) -> None:
        expr = _stmt_reads(stmt)
        if expr is None:
            return
        for name in sorted(domain.uses_unassigned(state, expr)):
            key = (name, expr_to_str(expr))
            if key in reported:
                continue
            reported.add(key)
            out.append(
                Finding(
                    rule="use-before-def",
                    severity=ERROR,
                    message=f"local '{name}' may be read before assignment",
                    program=program.pid,
                    snippet=expr_to_str(expr),
                )
            )

    analyze_program(domain, program, visit)


def _check_types(
    program: Program, functions: Optional[FunctionTable], out: list
) -> None:
    sorts: dict[str, Sort] = {}

    def sort_of(e: Expr) -> Optional[Sort]:
        try:
            return type_of(e, functions, sorts)
        except TypeError_ as exc:
            out.append(
                Finding(
                    rule="type-error",
                    severity=ERROR,
                    message=str(exc),
                    program=program.pid,
                    snippet=expr_to_str(e),
                )
            )
            return None

    def check_calls(e: Expr) -> None:
        if functions is None:
            return
        for sub in subexpressions(e):
            if isinstance(sub, Call) and sub.func not in functions:
                out.append(
                    Finding(
                        rule="unknown-function",
                        severity=ERROR,
                        message=(
                            f"call to '{sub.func}' not present in the function "
                            "table; repro.lang.compile would reject this "
                            "program and execution falls back to the interpreter"
                        ),
                        program=program.pid,
                        snippet=expr_to_str(sub),
                    )
                )

    def bool_guard(e: Expr, rule: str, what: str) -> None:
        check_calls(e)
        got = sort_of(e)
        if got is not None and got != BOOL:
            out.append(
                Finding(
                    rule=rule,
                    severity=ERROR,
                    message=f"{what} has sort {got}, expected bool",
                    program=program.pid,
                    snippet=expr_to_str(e),
                )
            )

    def walk(s: Stmt) -> None:
        if isinstance(s, Assign):
            check_calls(s.expr)
            got = sort_of(s.expr)
            if got is not None:
                sorts[s.var] = got
        elif isinstance(s, Notify):
            bool_guard(s.expr, "non-bool-notify", f"notify({s.pid}) payload")
        elif isinstance(s, Seq):
            for sub in s.stmts:
                walk(sub)
        elif isinstance(s, If):
            bool_guard(s.cond, "non-bool-guard", "branch condition")
            walk(s.then)
            walk(s.orelse)
        elif isinstance(s, While):
            bool_guard(s.cond, "non-bool-guard", "loop condition")
            walk(s.body)

    walk(program.body)


def _check_unreachable(program: Program, out: list) -> None:
    domain = IntervalConstDomain.for_program(program)

    def visit(stmt: Stmt, env) -> None:
        if isinstance(stmt, If):
            then_in = domain.transfer_assume(env, stmt.cond, True)
            else_in = domain.transfer_assume(env, stmt.cond, False)
            if then_in.unreachable and not env.unreachable:
                out.append(
                    Finding(
                        rule="unreachable-branch",
                        severity=WARNING,
                        message="then-branch can never execute",
                        program=program.pid,
                        snippet=expr_to_str(stmt.cond),
                    )
                )
            if else_in.unreachable and not env.unreachable:
                out.append(
                    Finding(
                        rule="unreachable-branch",
                        severity=WARNING,
                        message="else-branch can never execute",
                        program=program.pid,
                        snippet=expr_to_str(stmt.cond),
                    )
                )
        elif isinstance(stmt, While):
            body_in = domain.transfer_assume(env, stmt.cond, True)
            if body_in.unreachable and not env.unreachable:
                out.append(
                    Finding(
                        rule="unreachable-branch",
                        severity=WARNING,
                        message="loop body can never execute",
                        program=program.pid,
                        snippet=expr_to_str(stmt.cond),
                    )
                )

    analyze_program(domain, program, visit)


def _live_before(
    s: Stmt, live_out: frozenset, dead: Optional[list]
) -> frozenset:
    """Backward liveness; collects dead :class:`Assign` nodes into ``dead``."""

    if isinstance(s, Skip):
        return live_out
    if isinstance(s, Assign):
        if dead is not None and s.var not in live_out:
            dead.append(s)
        return (live_out - {s.var}) | frozenset(expr_vars(s.expr))
    if isinstance(s, Notify):
        return live_out | frozenset(expr_vars(s.expr))
    if isinstance(s, Seq):
        for sub in reversed(s.stmts):
            live_out = _live_before(sub, live_out, dead)
        return live_out
    if isinstance(s, If):
        then_live = _live_before(s.then, live_out, dead)
        else_live = _live_before(s.orelse, live_out, dead)
        return then_live | else_live | frozenset(expr_vars(s.cond))
    if isinstance(s, While):
        cond_vars = frozenset(expr_vars(s.cond))
        live = live_out | cond_vars
        while True:  # grows monotonically over a finite variable set
            nxt = live | _live_before(s.body, live, None)
            if nxt == live:
                break
            live = nxt
        _live_before(s.body, live, dead)  # recording pass at the fixpoint
        return live
    raise TypeError(f"not a statement: {s!r}")


def _check_dead_stores(program: Program, out: list) -> None:
    dead: list[Assign] = []
    _live_before(program.body, frozenset(), dead)
    seen: set[str] = set()
    for assign in dead:
        key = f"{assign.var} := {expr_to_str(assign.expr)}"
        if key in seen:
            continue
        seen.add(key)
        out.append(
            Finding(
                rule="dead-store",
                severity=WARNING,
                message=f"value assigned to '{assign.var}' is never read",
                program=program.pid,
                snippet=key,
            )
        )


def _check_notifications(program: Program, out: list) -> None:
    domain = NotificationDomain()
    final = analyze_program(domain, program)
    if domain.is_bottom(final):
        return
    pids = sorted(notified_pids(program.body))
    if not pids:
        out.append(
            Finding(
                rule="missing-notify",
                severity=WARNING,
                message=f"program never notifies '{program.pid}'",
                program=program.pid,
            )
        )
        return
    for pid in pids:
        lo, hi = final.range_for(pid)
        if lo >= 2:
            out.append(
                Finding(
                    rule="duplicate-notify",
                    severity=ERROR,
                    message=f"'{pid}' is notified at least twice on every path",
                    program=program.pid,
                )
            )
        elif hi >= 2:
            out.append(
                Finding(
                    rule="duplicate-notify",
                    severity=WARNING,
                    message=f"'{pid}' may be notified more than once",
                    program=program.pid,
                )
            )
        if lo == 0:
            out.append(
                Finding(
                    rule="missing-notify",
                    severity=WARNING,
                    message=f"some path completes without notifying '{pid}'",
                    program=program.pid,
                )
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_program(
    program: Program, functions: Optional[FunctionTable] = None
) -> LintReport:
    """Run every lint pass over ``program``."""

    findings: list[Finding] = []
    _check_types(program, functions, findings)
    _check_use_before_def(program, findings)
    _check_unreachable(program, findings)
    _check_dead_stores(program, findings)
    _check_notifications(program, findings)
    order = {ERROR: 0, WARNING: 1}
    findings.sort(key=lambda f: (order[f.severity], f.rule, f.message))
    return LintReport(program=program.pid, findings=tuple(findings))


def lint_programs(
    programs: Iterable[Program], functions: Optional[FunctionTable] = None
) -> list[LintReport]:
    return [lint_program(p, functions) for p in programs]
