"""The pluggable abstract domains used by the checkers.

* :class:`IntervalConstDomain` — integer intervals + boolean/string
  constants over :class:`~repro.analysis.static.values.StaticEnv`.  Powers
  unreachable-branch detection, loop trip-count bounds, and (through the
  simplifier's mirror env) the SMT entailment pre-check.
* :class:`DefiniteAssignmentDomain` — the *must*-analysis of assigned
  locals (join = intersection), powering use-before-def linting.
* :class:`NotificationDomain` — per-pid broadcast-count intervals with
  saturation at 2 ("two or more"), powering the translation validator's
  exactly-once obligation and the duplicate/missing-notify lints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...lang.ast import Expr, IntConst, Program
from ...lang.visitors import expr_vars, stmt_exprs, subexpressions
from .framework import Domain
from .values import StaticEnv

__all__ = [
    "IntervalConstDomain",
    "AssignedState",
    "DefiniteAssignmentDomain",
    "NotifyCounts",
    "NotificationDomain",
    "widening_thresholds",
]


# ---------------------------------------------------------------------------
# Intervals + constants
# ---------------------------------------------------------------------------


def widening_thresholds(program: Program) -> tuple[int, ...]:
    """Constants worth stopping at while widening: guard literals ± 1.

    A loop ``while (m <= 12)`` stabilises its counter at ``[lo, 13]`` —
    the guard constant plus one — so seeding the thresholds this way keeps
    bounded loops bounded without per-loop configuration.
    """

    out: set[int] = set()
    for e in stmt_exprs(program.body):
        for sub in subexpressions(e):
            if isinstance(sub, IntConst) and abs(sub.value) <= 10_000:
                out.update((sub.value - 1, sub.value, sub.value + 1))
    return tuple(sorted(out))


_BOTTOM_ENV = StaticEnv.bottom()


class IntervalConstDomain(Domain[StaticEnv]):
    """Intervals for ints, constant sets for bools/strings.

    States are :class:`StaticEnv` instances treated as immutable: every
    transfer copies before refining.  ``thresholds`` come from
    :func:`widening_thresholds` of the program under analysis.
    """

    def __init__(self, thresholds: tuple[int, ...] = ()) -> None:
        self.thresholds = thresholds

    @classmethod
    def for_program(cls, program: Program) -> "IntervalConstDomain":
        return cls(widening_thresholds(program))

    def initial(self, program: Program) -> StaticEnv:
        return StaticEnv()

    def bottom(self) -> StaticEnv:
        return _BOTTOM_ENV

    def is_bottom(self, state: StaticEnv) -> bool:
        return state.unreachable

    def join(self, a: StaticEnv, b: StaticEnv) -> StaticEnv:
        return a.join(b)

    def widen(self, older: StaticEnv, newer: StaticEnv) -> StaticEnv:
        return older.widen(newer, self.thresholds)

    def widen_top(self, older: StaticEnv, newer: StaticEnv) -> StaticEnv:
        # Threshold widening ascends one threshold per step; a program with
        # more int literals than the fixpoint budget would otherwise never
        # stabilise.  Past WIDEN_TOP_AFTER, drop the thresholds so every
        # still-unstable bound jumps straight to ±∞.
        return older.widen(newer, ())

    def leq(self, a: StaticEnv, b: StaticEnv) -> bool:
        return a.leq(b)

    def transfer_assign(self, state: StaticEnv, var: str, expr: Expr) -> StaticEnv:
        out = state.copy()
        out.assign(var, expr)
        return out

    def transfer_assume(self, state: StaticEnv, cond: Expr, positive: bool) -> StaticEnv:
        out = state.copy()
        out.assume(cond, positive)
        return out


# ---------------------------------------------------------------------------
# Definite assignment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssignedState:
    """``assigned`` = locals written on *every* path reaching this point."""

    assigned: frozenset
    reachable: bool = True


_ASSIGNED_BOTTOM = AssignedState(frozenset(), reachable=False)


class DefiniteAssignmentDomain(Domain[AssignedState]):
    """Must-be-assigned analysis (join = intersection over live paths)."""

    def initial(self, program: Program) -> AssignedState:
        return AssignedState(frozenset())

    def bottom(self) -> AssignedState:
        return _ASSIGNED_BOTTOM

    def is_bottom(self, state: AssignedState) -> bool:
        return not state.reachable

    def join(self, a: AssignedState, b: AssignedState) -> AssignedState:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        return AssignedState(a.assigned & b.assigned)

    def leq(self, a: AssignedState, b: AssignedState) -> bool:
        # Order by information content: more assigned = lower (stronger).
        if not a.reachable:
            return True
        if not b.reachable:
            return False
        return a.assigned >= b.assigned

    def transfer_assign(self, state: AssignedState, var: str, expr: Expr) -> AssignedState:
        return AssignedState(state.assigned | {var}, state.reachable)

    def uses_unassigned(self, state: AssignedState, expr: Expr) -> set[str]:
        """Locals ``expr`` reads that may be unbound in ``state``."""

        return expr_vars(expr) - set(state.assigned)


# ---------------------------------------------------------------------------
# Reaching notifications
# ---------------------------------------------------------------------------

SATURATE_AT = 2  # counts above 1 all behave alike (already a clash)


@dataclass(frozen=True)
class NotifyCounts:
    """Per-pid broadcast-count intervals ``pid -> (min, max)``.

    ``max`` saturates at :data:`SATURATE_AT`: once a path may notify a pid
    twice, further precision is pointless (the run is already an error),
    and saturation is what makes loop fixpoints converge.
    """

    counts: tuple  # sorted tuple of (pid, lo, hi)
    reachable: bool = True

    @staticmethod
    def empty() -> "NotifyCounts":
        return NotifyCounts(())

    def as_dict(self) -> dict[str, tuple[int, int]]:
        return {pid: (lo, hi) for pid, lo, hi in self.counts}

    def range_for(self, pid: str) -> tuple[int, int]:
        return self.as_dict().get(pid, (0, 0))


_NOTIFY_BOTTOM = NotifyCounts((), reachable=False)


class NotificationDomain(Domain[NotifyCounts]):
    """Counts how many times each pid may/must have been notified."""

    def initial(self, program: Program) -> NotifyCounts:
        return NotifyCounts.empty()

    def bottom(self) -> NotifyCounts:
        return _NOTIFY_BOTTOM

    def is_bottom(self, state: NotifyCounts) -> bool:
        return not state.reachable

    def join(self, a: NotifyCounts, b: NotifyCounts) -> NotifyCounts:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        da, db = a.as_dict(), b.as_dict()
        merged = []
        for pid in sorted(set(da) | set(db)):
            lo_a, hi_a = da.get(pid, (0, 0))
            lo_b, hi_b = db.get(pid, (0, 0))
            merged.append((pid, min(lo_a, lo_b), max(hi_a, hi_b)))
        return NotifyCounts(tuple(merged))

    def leq(self, a: NotifyCounts, b: NotifyCounts) -> bool:
        if not a.reachable:
            return True
        if not b.reachable:
            return False
        da, db = a.as_dict(), b.as_dict()
        for pid in set(da) | set(db):
            lo_a, hi_a = da.get(pid, (0, 0))
            lo_b, hi_b = db.get(pid, (0, 0))
            if lo_a < lo_b or hi_a > hi_b:
                return False
        return True

    def transfer_assign(self, state: NotifyCounts, var: str, expr: Expr) -> NotifyCounts:
        return state

    def transfer_notify(self, state: NotifyCounts, pid: str, expr: Expr) -> NotifyCounts:
        if not state.reachable:
            return state
        d = state.as_dict()
        lo, hi = d.get(pid, (0, 0))
        d[pid] = (min(lo + 1, SATURATE_AT), min(hi + 1, SATURATE_AT))
        return NotifyCounts(tuple((p, a, b) for p, (a, b) in sorted(d.items())))

    # -- queries the validator/linter ask ---------------------------------------

    def exactly_once(self, state: NotifyCounts, pid: str) -> Optional[bool]:
        """True / False / None(undecided) for "pid notified exactly once"."""

        lo, hi = state.range_for(pid)
        if lo == hi == 1:
            return True
        if hi == 0 or lo >= 2:
            return False
        return None
