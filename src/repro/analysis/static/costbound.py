"""Static worst-case cost bounds over the Figure-2 cost semantics.

:func:`stmt_cost_bounds` in :mod:`repro.analysis.costmodel` already gives
exact costs for loop-free code but surrenders (``None``) on any loop.
This module adds the missing piece: a **trip-count inference** driven by
the interval domain.  A loop

.. code-block:: text

    m := 1; while (m <= 12) { ...; m := m + 1 }

is bounded because the guard variable starts in a known interval, changes
by a constant amount on every path through the body, and is compared
against a loop-invariant bound — exactly the shape of the paper's yearly
aggregation UDFs and of their Loop-2 fusions.  The resulting bound

``trips * (test + body_ub) + test``

charges one guard evaluation per iteration plus the final failing test,
matching the compiled backend's accounting.

When the interval argument fails, callers may supply ``loop_bound_hook``
— the translation validator plugs the SMT-backed invariant inference of
:mod:`repro.analysis.invariants` in through it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...lang.ast import (
    Assign,
    BinOp,
    BoolOp,
    Cmp,
    Expr,
    If,
    IntConst,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
)
from ...lang.cost import DEFAULT_COST_MODEL, CostModel
from ...lang.functions import FunctionTable
from ...lang.visitors import assigned_vars, expr_vars
from ..costmodel import expr_cost
from .domains import IntervalConstDomain
from .framework import loop_invariant_state
from .values import StaticEnv

__all__ = [
    "constant_step",
    "trip_count_bound",
    "stmt_cost_upper",
    "program_cost_upper",
    "MAX_TRIP_COUNT",
]

# Beyond this many iterations a "bound" is numerically meaningless for the
# ≤-comparison the validator performs; treat it as unbounded.
MAX_TRIP_COUNT = 1_000_000

LoopBoundHook = Callable[[While, StaticEnv], Optional[int]]

_UNKNOWN = object()  # net-effect lattice top: "changes v by who-knows-what"


def _delta_of_assign(var: str, expr: Expr, v: str):
    """The net change ``var := expr`` applies to ``v``; _UNKNOWN if unclear."""

    if var != v:
        return 0
    if isinstance(expr, Var) and expr.name == v:
        return 0
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        if isinstance(left, Var) and left.name == v and isinstance(right, IntConst):
            return right.value if expr.op == "+" else -right.value
        if (
            expr.op == "+"
            and isinstance(right, Var)
            and right.name == v
            and isinstance(left, IntConst)
        ):
            return left.value
    return _UNKNOWN


def _net_deltas(s: Stmt, v: str) -> set:
    """Possible net changes to ``v`` across one execution of ``s``.

    The set is capped: once it contains _UNKNOWN or grows past a handful
    of members the caller gives up anyway.
    """

    if isinstance(s, (Skip, Notify)):
        return {0}
    if isinstance(s, Assign):
        return {_delta_of_assign(s.var, s.expr, v)}
    if isinstance(s, Seq):
        acc = {0}
        for sub in s.stmts:
            step = _net_deltas(sub, v)
            acc = {
                (_UNKNOWN if _UNKNOWN in (a, b) else a + b)
                for a in acc
                for b in step
            }
            if _UNKNOWN in acc or len(acc) > 4:
                return {_UNKNOWN}
        return acc
    if isinstance(s, If):
        return _net_deltas(s.then, v) | _net_deltas(s.orelse, v)
    if isinstance(s, While):
        return {0} if v not in assigned_vars(s.body) else {_UNKNOWN}
    return {_UNKNOWN}


def constant_step(body: Stmt, v: str) -> Optional[int]:
    """``c`` when every path through ``body`` changes ``v`` by exactly ``c``."""

    deltas = _net_deltas(body, v)
    if len(deltas) == 1:
        (d,) = deltas
        if d is not _UNKNOWN:
            return d
    return None


def _guard_conjuncts(cond: Expr) -> list[Expr]:
    if isinstance(cond, BoolOp) and cond.op == "and":
        return _guard_conjuncts(cond.left) + _guard_conjuncts(cond.right)
    return [cond]


def _ceil_div(num: int, den: int) -> int:
    return -((-num) // den)


def trip_count_bound(loop: While, env: StaticEnv, body: Optional[Stmt] = None) -> Optional[int]:
    """An upper bound on the iterations of ``loop`` entered from ``env``.

    Each ``and``-conjunct of the guard is tried independently (the loop
    exits as soon as *any* conjunct fails, so the minimum bound wins).
    """

    body = loop.body if body is None else body
    assigned = assigned_vars(body)
    best: Optional[int] = None
    for conjunct in _guard_conjuncts(loop.cond):
        bound = _conjunct_bound(conjunct, env, body, assigned)
        if bound is not None:
            best = bound if best is None else min(best, bound)
    if best is not None and best > MAX_TRIP_COUNT:
        return None
    return best


def _conjunct_bound(
    conjunct: Expr, env: StaticEnv, body: Stmt, assigned: set[str]
) -> Optional[int]:
    if not isinstance(conjunct, Cmp):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op

    # Orient so the induction variable is on the left: ``v op bound``.
    for var_side, bound_side, orient in ((left, right, "fwd"), (right, left, "rev")):
        if not isinstance(var_side, Var) or var_side.name not in assigned:
            continue
        if expr_vars(bound_side) & assigned:
            continue  # the bound itself moves: no interval argument
        step = constant_step(body, var_side.name)
        if step is None or step == 0:
            continue
        v_iv = env.eval_int(var_side)
        b_iv = env.eval_int(bound_side)
        if op == "=":
            # ``while (v = E)``: a non-zero constant step breaks equality
            # with an invariant bound after the first iteration.
            return 1
        if orient == "fwd":
            # Loop runs while v < E (or <=): needs an *increasing* v.
            if step <= 0 or v_iv.lo is None or b_iv.hi is None:
                continue
            distance = b_iv.hi - v_iv.lo
            if op == "<":
                trips = _ceil_div(distance, step)
            else:
                trips = distance // step + 1
        else:
            # Loop runs while E < v (or <=): needs a *decreasing* v.
            if step >= 0 or v_iv.hi is None or b_iv.lo is None:
                continue
            distance = v_iv.hi - b_iv.lo
            down = -step
            if op == "<":
                trips = _ceil_div(distance, down)
            else:
                trips = distance // down + 1
        return max(0, trips)
    return None


# ---------------------------------------------------------------------------
# Cost upper bounds
# ---------------------------------------------------------------------------


def stmt_cost_upper(
    s: Stmt,
    functions: Optional[FunctionTable],
    cost_model: CostModel,
    env: StaticEnv,
    domain: IntervalConstDomain,
    loop_bound_hook: Optional[LoopBoundHook] = None,
) -> tuple[Optional[int], StaticEnv]:
    """``(upper bound, post-env)`` for ``s`` entered from ``env``.

    ``None`` means no finite bound was derivable.  Unreachable code
    contributes zero — sound under the cost semantics, since it never
    executes.
    """

    cm = cost_model
    if env.unreachable:
        return 0, env
    if isinstance(s, Skip):
        return 0, env
    if isinstance(s, Assign):
        cost = expr_cost(s.expr, functions, cm) + cm.assign
        return cost, domain.transfer_assign(env, s.var, s.expr)
    if isinstance(s, Notify):
        return expr_cost(s.expr, functions, cm) + cm.notify, env
    if isinstance(s, Seq):
        total: Optional[int] = 0
        for sub in s.stmts:
            cost, env = stmt_cost_upper(sub, functions, cm, env, domain, loop_bound_hook)
            total = None if total is None or cost is None else total + cost
        return total, env
    if isinstance(s, If):
        test = expr_cost(s.cond, functions, cm) + cm.branch
        then_in = domain.transfer_assume(env, s.cond, True)
        else_in = domain.transfer_assume(env, s.cond, False)
        then_cost, then_env = stmt_cost_upper(
            s.then, functions, cm, then_in, domain, loop_bound_hook
        )
        else_cost, else_env = stmt_cost_upper(
            s.orelse, functions, cm, else_in, domain, loop_bound_hook
        )
        out_env = domain.join(then_env, else_env)
        if then_in.unreachable:
            return (None if else_cost is None else test + else_cost), out_env
        if else_in.unreachable:
            return (None if then_cost is None else test + then_cost), out_env
        if then_cost is None or else_cost is None:
            return None, out_env
        return test + max(then_cost, else_cost), out_env
    if isinstance(s, While):
        trips = trip_count_bound(s, env)
        if trips is None and loop_bound_hook is not None:
            trips = loop_bound_hook(s, env)
        inv = loop_invariant_state(domain, env, s)
        body_in = domain.transfer_assume(inv, s.cond, True)
        body_cost, _ = stmt_cost_upper(
            s.body, functions, cm, body_in, domain, loop_bound_hook
        )
        exit_env = domain.transfer_assume(inv, s.cond, False)
        test = expr_cost(s.cond, functions, cm) + cm.branch
        if body_in.unreachable:
            return test, exit_env  # guard provably false on entry
        if trips is None or body_cost is None:
            return None, exit_env
        return trips * (test + body_cost) + test, exit_env
    raise TypeError(f"not a statement: {s!r}")


def program_cost_upper(
    program: Program,
    functions: Optional[FunctionTable] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    loop_bound_hook: Optional[LoopBoundHook] = None,
) -> Optional[int]:
    """Worst-case cost of one run of ``program``; None when unbounded."""

    domain = IntervalConstDomain.for_program(program)
    cost, _env = stmt_cost_upper(
        program.body, functions, cost_model, StaticEnv(), domain, loop_bound_hook
    )
    return cost
