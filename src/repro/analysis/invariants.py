"""Loop-invariant inference for the Loop 2 / Loop 3 rules (Figure 7).

The loop rules need an invariant ``Ψ1`` of the fused loop
``while (e1 ∧ e2) do S1; S2`` strong enough to relate the two programs'
iteration counts (``Ψ1 ∧ ¬(e1∧e2) |= ¬e1 ∧ ¬e2`` for Loop 2, or ``|= e1``
for Loop 3).  In the paper's workloads these invariants are affine
equalities between the two loops' induction variables (e.g. ``j = i - 1``
in Example 6), so we use a guess-and-check scheme:

1. **Stable facts** — conjuncts of the entry context ``Ψ`` that mention no
   variable the loop writes are invariant outright.
2. **Affine candidates** — for every pair of integer variables of interest
   the entry context is probed for an entailed difference ``u - v = c``
   (``c`` drawn from a small constant pool seeded by the program text).
3. **Inductiveness check** — every candidate that passes initiation is
   checked for preservation through one symbolic execution of the body
   (:class:`~repro.analysis.sp.SpEngine`); candidates may support each
   other, so failing candidates are retried once against the conjunction
   of those already proved.

Everything reported is *proved* inductive by the SMT solver, so the loop
rules can rely on it; a missed invariant merely means the loops are run
sequentially (the Step/Seq fallback), never a wrong transformation.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.ast import Expr, IntConst, Stmt
from ..lang.functions import INT
from ..lang.visitors import assigned_vars, expr_args, expr_vars, stmt_vars, subexpressions
from ..smt.interface import arg_sym, var_sym
from ..smt.solver import Solver
from ..smt.terms import (
    FAnd,
    Formula,
    Le,
    Num,
    Sym,
    TRUE_F,
    cone_of_influence,
    eq_f,
    fand,
    free_syms,
    le_f,
    t_sub,
)
from .sp import SpEngine

__all__ = ["loop_invariant", "stable_conjuncts"]

_BASE_CONSTANT_POOL = (-2, -1, 0, 1, 2)
_MAX_CANDIDATE_SYMS = 10


def stable_conjuncts(psi: Formula, killed_names: set[str]) -> Formula:
    """Conjuncts of ``psi`` whose symbols survive havocking ``killed_names``."""

    killed_syms = {var_sym(n).name for n in killed_names}
    parts = psi.args if isinstance(psi, FAnd) else (psi,)
    kept = [p for p in parts if not (free_syms(p) & killed_syms)]
    return fand(*kept)


def _program_constants(body: Stmt, conds: Iterable[Expr]) -> list[int]:
    """The probe pool: small offsets plus loop-bound differences.

    Induction variables of fusable loops differ by small constants (or by
    differences of their bounds), so the pool stays tiny — each extra
    constant costs one entailment probe per variable pair.
    """

    consts: set[int] = set(_BASE_CONSTANT_POOL)
    bounds: set[int] = set()
    for e in conds:
        for sub in subexpressions(e):
            if isinstance(sub, IntConst) and abs(sub.value) <= 1000:
                bounds.add(sub.value)
    for a in bounds:
        for b in bounds:
            if abs(a - b) <= 64:
                consts.add(a - b)
    return sorted(consts, key=abs)


def _candidate_syms(engine: SpEngine, body: Stmt, conds: list[Expr]) -> list[Sym]:
    names: list[tuple[str, bool]] = []
    seen: set[str] = set()
    for e in conds:
        for n in sorted(expr_vars(e)):
            if n not in seen:
                seen.add(n)
                names.append((n, False))
        for n in sorted(expr_args(e)):
            if ("@" + n) not in seen:
                seen.add("@" + n)
                names.append((n, True))
    for n in sorted(stmt_vars(body)):
        if n not in seen:
            seen.add(n)
            names.append((n, False))
    syms: list[Sym] = []
    for n, is_arg in names[:_MAX_CANDIDATE_SYMS]:
        if not is_arg and engine.sorts.get(n, INT) != INT:
            continue
        syms.append(arg_sym(n) if is_arg else var_sym(n))
    return syms


def _bound_constants(conds: Iterable[Expr]) -> list[int]:
    """Constants from the loop guards, widened by one in both directions."""

    out: set[int] = set()
    for e in conds:
        for sub in subexpressions(e):
            if isinstance(sub, IntConst) and abs(sub.value) <= 1000:
                out.update((sub.value - 1, sub.value, sub.value + 1))
    return sorted(out, key=abs)


def _candidate_pairs(
    engine: SpEngine, syms: list[Sym], conds: list[Expr], body: Stmt
) -> list[tuple[Sym, Sym]]:
    """Variable pairs plausibly related by an affine equality.

    Probing every pair costs one entailment per pair per pool constant, so
    pairs are limited to those with a structural reason to be related:
    both appear in the loop guards (induction counters), or both are
    assigned in the body from right-hand sides calling the same library
    functions (parallel accumulators).
    """

    from ..lang.ast import Assign, If as IfStmt, Seq, While as WhileStmt
    from ..lang.visitors import expr_calls

    cond_names: set[str] = set()
    for e in conds:
        cond_names |= {var_sym(n).name for n in expr_vars(e)}
        cond_names |= {arg_sym(n).name for n in expr_args(e)}

    rhs_calls: dict[str, set[str]] = {}

    def walk(s: Stmt) -> None:
        if isinstance(s, Assign):
            rhs_calls.setdefault(var_sym(s.var).name, set()).update(expr_calls(s.expr))
        elif isinstance(s, Seq):
            for sub in s.stmts:
                walk(sub)
        elif isinstance(s, IfStmt):
            walk(s.then)
            walk(s.orelse)
        elif isinstance(s, WhileStmt):
            walk(s.body)

    walk(body)

    pairs: list[tuple[Sym, Sym]] = []
    for i in range(len(syms)):
        for j in range(i + 1, len(syms)):
            u, v = syms[i], syms[j]
            if u.name in cond_names and v.name in cond_names:
                pairs.append((u, v))
                continue
            cu, cv = rhs_calls.get(u.name), rhs_calls.get(v.name)
            if cu and cv and cu & cv:
                pairs.append((u, v))
    return pairs


def loop_invariant(
    engine: SpEngine,
    solver: Solver,
    psi: Formula,
    conds: list[Expr],
    body: Stmt,
    mode: str = "probe",
) -> Formula:
    """Infer an inductive invariant of ``while (/\\ conds) do body`` from ``psi``.

    ``mode`` selects the equality-candidate generator:

    * ``'probe'`` — SMT-entailed pairwise differences (guess-and-check);
    * ``'karr'``  — the affine-equality abstract domain
      (:mod:`repro.analysis.affine`);
    * ``'both'``  — the union of the two.

    Candidates from every mode go through the same SMT inductiveness check,
    so the choice affects completeness/cost, never soundness.
    """

    if mode not in ("probe", "karr", "both"):
        raise ValueError(f"unknown invariant mode {mode!r}")
    modified = assigned_vars(body)
    stable = stable_conjuncts(psi, modified)

    # --- candidate generation --------------------------------------------------
    syms = _candidate_syms(engine, body, conds)
    pool = _program_constants(body, conds)
    candidates: list[Formula] = []
    if mode in ("probe", "both"):
        for u, v in _candidate_pairs(engine, syms, conds, body):
            for c in pool:
                cand = eq_f(t_sub(u, v), Num(c))
                if cand == TRUE_F:
                    break
                if solver.entails(cone_of_influence(psi, cand), cand):
                    candidates.append(cand)
                    break
    if mode in ("karr", "both"):
        from .affine import affine_loop_invariant

        karr = affine_loop_invariant(engine, psi, body)
        karr_parts = karr.args if isinstance(karr, FAnd) else (karr,)
        for part in karr_parts:
            if part != TRUE_F and part not in candidates:
                candidates.append(part)

    # Bound candidates ``u <= c`` / ``c <= u`` for guard variables: these
    # are what lets Loop 3 conclude that the longer loop's guard is still
    # true when the shorter loop exits (e.g. ``i <= 6`` implies ``i < 10``).
    cond_sym_names: set[str] = set()
    for e in conds:
        cond_sym_names |= {var_sym(n).name for n in expr_vars(e)}
    bound_pool = _bound_constants(conds)
    for u in syms:
        if u.name not in cond_sym_names:
            continue
        for c in bound_pool:
            for cand in (le_f(u, Num(c)), le_f(Num(c), u)):
                if cand in (TRUE_F,) or not isinstance(cand, Le):
                    continue
                if solver.entails(cone_of_influence(psi, cand), cand):
                    candidates.append(cand)

    # --- inductiveness: preservation through one body execution -------------
    entry_guard = TRUE_F
    for e in conds:
        entry_guard = fand(entry_guard, engine.encode_bool(e) or TRUE_F)

    proven: list[Formula] = []
    pending = list(candidates)
    for _round in range(2):
        still_pending: list[Formula] = []
        for cand in pending:
            pre = fand(stable, *proven, cand, entry_guard)
            post = engine.post(pre, body)
            if solver.entails(cone_of_influence(post, cand), cand):
                proven.append(cand)
            else:
                still_pending.append(cand)
        if not still_pending or len(still_pending) == len(pending):
            break
        pending = still_pending

    return fand(stable, *proven)
