"""Static expression costs.

Under Figure 2's semantics the cost of evaluating an *expression* is
independent of the environment (constants, variable reads, operators and
library calls all have fixed prices, and there is no short-circuiting), so
it can be computed statically.  The cross-simplification judgments
``Ψ ⊢i e : e'`` and ``Ψ ⊢b e : e'`` require ``cost(e') <= cost(e)``; this
module supplies that ``cost``.

Statement costs *do* depend on control flow; :func:`stmt_cost_bounds`
returns (best-case, worst-case) bounds, with ``None`` as the worst case for
loops, which is what the ``related``/rule-selection heuristics need.
"""

from __future__ import annotations

from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable

__all__ = ["expr_cost", "stmt_cost_bounds"]

_DEFAULT_CALL_COST = 10


def expr_cost(
    e: Expr,
    functions: FunctionTable | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> int:
    """The exact evaluation cost of ``e`` under the cost semantics."""

    cm = cost_model
    if isinstance(e, IntConst):
        return cm.int_const
    if isinstance(e, StrConst):
        return cm.str_const
    if isinstance(e, BoolConst):
        return cm.bool_const
    if isinstance(e, Arg):
        return cm.arg
    if isinstance(e, Var):
        return cm.var
    if isinstance(e, Call):
        if functions is not None and e.func in functions:
            call_cost = functions[e.func].cost
        else:
            call_cost = _DEFAULT_CALL_COST
        return call_cost + sum(expr_cost(a, functions, cm) for a in e.args)
    if isinstance(e, BinOp):
        return cm.arith_cost(e.op) + expr_cost(e.left, functions, cm) + expr_cost(e.right, functions, cm)
    if isinstance(e, Cmp):
        return cm.cmp_cost(e.op) + expr_cost(e.left, functions, cm) + expr_cost(e.right, functions, cm)
    if isinstance(e, Not):
        return cm.neg + expr_cost(e.operand, functions, cm)
    if isinstance(e, BoolOp):
        return cm.logic_cost(e.op) + expr_cost(e.left, functions, cm) + expr_cost(e.right, functions, cm)
    raise TypeError(f"not an expression: {e!r}")


def stmt_cost_bounds(
    s: Stmt,
    functions: FunctionTable | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> tuple[int, int | None]:
    """(min, max) execution cost of ``s``; max is ``None`` when unbounded."""

    cm = cost_model
    if isinstance(s, Skip):
        return 0, 0
    if isinstance(s, Assign):
        c = expr_cost(s.expr, functions, cm) + cm.assign
        return c, c
    if isinstance(s, Notify):
        c = expr_cost(s.expr, functions, cm) + cm.notify
        return c, c
    if isinstance(s, Seq):
        lo_total, hi_total = 0, 0
        for sub in s.stmts:
            lo, hi = stmt_cost_bounds(sub, functions, cm)
            lo_total += lo
            hi_total = None if hi_total is None or hi is None else hi_total + hi
        return lo_total, hi_total
    if isinstance(s, If):
        test = expr_cost(s.cond, functions, cm) + cm.branch
        lo1, hi1 = stmt_cost_bounds(s.then, functions, cm)
        lo2, hi2 = stmt_cost_bounds(s.orelse, functions, cm)
        hi = None if hi1 is None or hi2 is None else test + max(hi1, hi2)
        return test + min(lo1, lo2), hi
    if isinstance(s, While):
        test = expr_cost(s.cond, functions, cm) + cm.branch
        return test, None
    raise TypeError(f"not a statement: {s!r}")
