"""The ``related`` heuristic of the consolidation algorithm (Figure 8).

``related(a, b)`` decides — cheaply and fallibly — whether consolidating
``a`` against ``b`` is likely to expose cross-simplification opportunities.
The paper suggests "checking for similar predicates or calls to the same
function"; we implement exactly that:

* two fragments are related when they call a common library function, or
* when they contain a comparison against the *same non-trivial expression*
  (e.g. both test ``price(row)``/a shared argument accessor against some
  bound).

Because every UDF in a batch reads the same input row, merely sharing an
argument is deliberately *not* enough — that would make everything related
and push the algorithm into the code-size-exploding If 3 rule for unrelated
query families.
"""

from __future__ import annotations

from ..lang.ast import Arg, BoolConst, Call, Cmp, Expr, IntConst, Stmt, StrConst, Var
from ..lang.visitors import stmt_exprs, subexpressions

__all__ = ["related", "comparison_subjects", "expr_features", "is_trivial"]


def is_trivial(e: Expr) -> bool:
    """Constants, bare variables and bare arguments carry no sharing signal."""

    return isinstance(e, (IntConst, StrConst, BoolConst, Var, Arg))


_is_trivial = is_trivial


def comparison_subjects(exprs) -> set[Expr]:
    """Expressions used as comparison operands that carry a sharing signal.

    Non-trivial operands always qualify; a bare *argument* operand does too
    (two programs comparing the same shared input, as in Figure 6's
    ``x > a`` vs ``x <= a``).  Constants and bare locals do not — locals
    are renamed per program, so a syntactic match is impossible anyway
    (semantic variable matches are probed separately by the algorithm).
    """

    subjects: set[Expr] = set()
    for e in exprs:
        for sub in subexpressions(e):
            if isinstance(sub, Cmp):
                for side in (sub.left, sub.right):
                    if isinstance(side, Arg) or not _is_trivial(side):
                        subjects.add(side)
    return subjects


def call_features(exprs) -> set:
    """Sharing signatures of the calls in ``exprs``.

    A call whose arguments are all ground (arguments/constants) contributes
    its *full* expression — ``has_direct(row, 0, 5)`` and
    ``has_direct(row, 0, 2)`` can share nothing, so a bare name match would
    trigger If 3 embedding (and exponential growth) across a whole batch of
    disjoint routes.  A call with variable arguments contributes only its
    name: whether two such calls coincide is then a semantic question the
    cross-simplifier settles, and loop fusion needs the optimistic signal.
    """

    keys: set = set()
    for e in exprs:
        for sub in subexpressions(e):
            if isinstance(sub, Call):
                if all(isinstance(a, (Arg, IntConst, StrConst, BoolConst)) for a in sub.args):
                    keys.add(sub)
                else:
                    keys.add(sub.func)
    return keys


def expr_features(x: Expr | Stmt) -> tuple[set, set[Expr]]:
    """(call signatures, comparison subjects) of an expr or stmt."""

    if isinstance(x, Expr):
        return call_features([x]), comparison_subjects([x])
    exprs = list(stmt_exprs(x))
    return call_features(exprs), comparison_subjects(exprs)


def related(a: Expr | Stmt, b: Expr | Stmt) -> bool:
    """Heuristic: is cross-simplification between ``a`` and ``b`` plausible?"""

    calls_a, subjects_a = expr_features(a)
    calls_b, subjects_b = expr_features(b)
    if calls_a & calls_b:
        return True
    if subjects_a & subjects_b:
        return True
    return False
