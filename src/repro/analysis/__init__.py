"""Program analyses supporting consolidation.

* :mod:`repro.analysis.sp` — strongest postconditions over SMT contexts,
* :mod:`repro.analysis.costmodel` — static expression/statement costs,
* :mod:`repro.analysis.invariants` — guess-and-check loop invariants,
* :mod:`repro.analysis.related` — the ``related`` heuristic of Figure 8,
* :mod:`repro.analysis.prefilter` — sound reject-early guard synthesis and
  the vectorizability shape classifier.
"""

from .affine import AffineState, affine_loop_invariant
from .costmodel import expr_cost, stmt_cost_bounds
from .invariants import loop_invariant, stable_conjuncts
from .prefilter import (
    PREFILTER_PID,
    SHAPES,
    Prefilter,
    PrefilterGuard,
    classify_shape,
    compile_prefilter,
    make_guard,
    synthesize_prefilter,
)
from .related import comparison_subjects, expr_features, related
from .sp import SpEngine

__all__ = [
    "AffineState",
    "affine_loop_invariant",
    "expr_cost",
    "stmt_cost_bounds",
    "loop_invariant",
    "stable_conjuncts",
    "PREFILTER_PID",
    "SHAPES",
    "Prefilter",
    "PrefilterGuard",
    "classify_shape",
    "compile_prefilter",
    "make_guard",
    "synthesize_prefilter",
    "comparison_subjects",
    "expr_features",
    "related",
    "SpEngine",
]
