"""Program analyses supporting consolidation.

* :mod:`repro.analysis.sp` — strongest postconditions over SMT contexts,
* :mod:`repro.analysis.costmodel` — static expression/statement costs,
* :mod:`repro.analysis.invariants` — guess-and-check loop invariants,
* :mod:`repro.analysis.related` — the ``related`` heuristic of Figure 8.
"""

from .affine import AffineState, affine_loop_invariant
from .costmodel import expr_cost, stmt_cost_bounds
from .invariants import loop_invariant, stable_conjuncts
from .related import comparison_subjects, expr_features, related
from .sp import SpEngine
