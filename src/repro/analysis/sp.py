"""Strongest postconditions over SMT contexts.

The consolidation calculus threads a context ``Ψ`` — "the strongest
post-condition of the code that comes before" the statements being merged
(Section 4).  This module computes ``sp(Ψ, S)`` as an SMT formula:

* ``sp(Ψ, x := e)`` renames the old value of ``x`` to a fresh symbol inside
  ``Ψ`` (and inside ``e``), then conjoins the defining equality — the
  classic existential-free SSA form of the strongest postcondition.
* ``sp(Ψ, S1 (+)e S2)`` is the disjunction of the branch postconditions
  under ``Ψ ∧ e`` and ``Ψ ∧ ¬e``.
* ``sp(Ψ, while e do S)`` havocs the variables the loop may write and
  conjoins ``¬e`` — sound for the big-step semantics, which only relates
  terminating runs.
* ``sp(Ψ, notify_i b) = Ψ`` (the paper's footnote 4).

Whenever an expression cannot be encoded into QF_UFLIA the engine degrades
gracefully: the assigned variable is havocked (or the branch condition
dropped), which weakens the context — always sound, merely less precise.
"""

from __future__ import annotations

import itertools

from ..lang.ast import Assign, Expr, If, Notify, Seq, Skip, Stmt, While
from ..lang.functions import BOOL, FunctionTable, Sort
from ..lang.visitors import TypeError_, assigned_vars, type_of
from ..smt.interface import EncodingError, encode_bool, encode_int, var_sym
from ..smt.terms import (
    Formula,
    Num,
    Sym,
    Term,
    eq_f,
    fand,
    fiff,
    fnot,
    for_,
    rename_syms,
    rename_syms_term,
)

__all__ = ["SpEngine"]


class SpEngine:
    """Computes strongest postconditions, tracking variable sorts.

    One engine instance is shared across a whole consolidation run so that
    fresh-name generation never collides and sort information accumulates
    as assignments are consumed.
    """

    def __init__(self, functions: FunctionTable, sorts: dict[str, Sort] | None = None) -> None:
        self.functions = functions
        self.sorts: dict[str, Sort] = dict(sorts or {})
        self._fresh = itertools.count(1)

    # -- encoding helpers ----------------------------------------------------

    def encode_bool(self, e: Expr) -> Formula | None:
        """Encode a boolean expression, or None when outside the fragment."""

        try:
            return encode_bool(e, self.functions, self.sorts)
        except (EncodingError, TypeError_):
            return None

    def encode_int(self, e: Expr) -> Term | None:
        try:
            return encode_int(e, self.functions, self.sorts)
        except (EncodingError, TypeError_):
            return None

    def sort_of(self, e: Expr) -> Sort:
        return type_of(e, self.functions, self.sorts)

    def assume(self, psi: Formula, e: Expr, *, negate: bool = False) -> Formula:
        """``Ψ ∧ e`` (or ``Ψ ∧ ¬e``); unencodable conditions are dropped."""

        enc = self.encode_bool(e)
        if enc is None:
            return psi
        return fand(psi, fnot(enc) if negate else enc)

    # -- postconditions --------------------------------------------------------

    def fresh_sym(self, name: str) -> Sym:
        return Sym(f"v!{name}#{next(self._fresh)}")

    def havoc(self, psi: Formula, names: set[str]) -> Formula:
        """Forget everything ``psi`` says about the given locals."""

        if not names:
            return psi
        mapping: dict[str, Term] = {
            var_sym(n).name: self.fresh_sym(n) for n in names
        }
        return rename_syms(psi, mapping)

    def assign(self, psi: Formula, var: str, expr: Expr) -> Formula:
        """``sp(Ψ, var := expr)``."""

        try:
            sort = self.sort_of(expr)
        except TypeError_:
            sort = "int"
        old = var_sym(var).name
        fresh = self.fresh_sym(var)
        renaming: dict[str, Term] = {old: fresh}

        if sort == BOOL:
            enc = self.encode_bool(expr)
        else:
            enc = self.encode_int(expr)
        psi2 = rename_syms(psi, renaming)
        self.sorts[var] = sort
        if enc is None:
            return psi2  # havoc: nothing known about the new value
        if sort == BOOL:
            enc_renamed = rename_syms(enc, renaming)  # type: ignore[arg-type]
            return fand(psi2, fiff(eq_f(var_sym(var), Num(1)), enc_renamed))
        enc_renamed = rename_syms_term(enc, renaming)  # type: ignore[arg-type]
        return fand(psi2, eq_f(var_sym(var), enc_renamed))

    def post(self, psi: Formula, s: Stmt) -> Formula:
        """``sp(Ψ, S)`` for an arbitrary statement."""

        if isinstance(s, Skip):
            return psi
        if isinstance(s, Notify):
            return psi
        if isinstance(s, Assign):
            return self.assign(psi, s.var, s.expr)
        if isinstance(s, Seq):
            for sub in s.stmts:
                psi = self.post(psi, sub)
            return psi
        if isinstance(s, If):
            enc = self.encode_bool(s.cond)
            if enc is None:
                # Unknown branch condition: havoc everything either side writes.
                return self.havoc(psi, assigned_vars(s))
            p_then = self.post(fand(psi, enc), s.then)
            p_else = self.post(fand(psi, fnot(enc)), s.orelse)
            return for_(p_then, p_else)
        if isinstance(s, While):
            havocked = self.havoc(psi, assigned_vars(s.body))
            enc = self.encode_bool(s.cond)
            if enc is None:
                return havocked
            return fand(havocked, fnot(enc))
        raise TypeError(f"not a statement: {s!r}")
