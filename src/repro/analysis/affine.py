"""An affine-equality abstract domain (Karr's analysis, 1976).

An alternative engine for the loop-invariant inference the Loop 2/3 rules
need: instead of probing candidate equalities with the SMT solver
(:mod:`repro.analysis.invariants`), propagate an *affine subspace* — the
set of solutions of a linear equality system ``A·x = b`` — through the
loop body and join at the head until fixpoint.  Because each join can only
grow the subspace's dimension and dimensions are bounded by the number of
variables, the fixpoint arrives in at most ``n + 1`` rounds.

Representation: :class:`AffineState` holds rows ``[c0, c1, ..., cn]`` over
``Fraction`` meaning ``c0 + Σ ci·xi = 0``, kept in reduced row-echelon
form.  ``BOTTOM`` (unreachable) is a distinguished state.

Transfer functions:

* linear assignment — exact (substitution via a fresh column);
* non-linear / call assignment — havoc (project the column out);
* conditionals — join of both branch post-states (guards carry no
  equality information in this domain);
* nested loops — inner fixpoint.

The engine is sound by construction, but the consolidation algorithm still
re-verifies every produced equality with the SMT inductiveness check
before trusting it (`verify=True` below) — defence in depth, and it makes
the probe/karr ablation an apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..lang.ast import Assign, Expr, If, Notify, Seq, Skip, Stmt, While
from ..smt.interface import arg_sym, var_sym
from ..smt.terms import FAnd, Eq as EqF, Formula, Lin, Num, Sym, eq_f, fand, from_linear
from .sp import SpEngine

__all__ = ["AffineState", "affine_loop_invariant", "equalities_from_formula"]


Row = list  # [c0, c1, ..., cn] over Fraction


@dataclass
class AffineState:
    """An affine subspace over a fixed variable ordering (or bottom)."""

    variables: tuple[str, ...]
    rows: list[Row]  # reduced row-echelon, no zero rows
    is_bottom: bool = False

    # -- construction ---------------------------------------------------------

    @staticmethod
    def top(variables: Sequence[str]) -> "AffineState":
        return AffineState(tuple(variables), [])

    @staticmethod
    def bottom(variables: Sequence[str]) -> "AffineState":
        return AffineState(tuple(variables), [], is_bottom=True)

    def copy(self) -> "AffineState":
        return AffineState(self.variables, [list(r) for r in self.rows], self.is_bottom)

    # -- linear algebra over Fraction ------------------------------------------

    def _echelon(self, rows: list[Row]) -> list[Row] | None:
        """Reduced row echelon; None signals an inconsistent system."""

        n = len(self.variables) + 1
        work = [list(map(Fraction, r)) for r in rows]
        pivots: list[int] = []
        result: list[Row] = []
        # Column 0 is the constant; pivot on variable columns 1..n-1 first.
        for col in range(1, n):
            pivot_row = None
            for r in work:
                if r[col] != 0 and all(r[c] == 0 for c in range(1, col)):
                    pivot_row = r
                    break
            if pivot_row is None:
                continue
            work.remove(pivot_row)
            inv = Fraction(1) / pivot_row[col]
            pivot_row = [v * inv for v in pivot_row]
            for r in work + result:
                if r[col] != 0:
                    factor = r[col]
                    for c in range(n):
                        r[c] -= factor * pivot_row[c]
            result.append(pivot_row)
            pivots.append(col)
        # Remaining rows must be all-zero on variables; a nonzero constant
        # means 0 = c with c != 0: inconsistent.
        for r in work:
            if any(r[c] != 0 for c in range(1, n)):
                # A row not reduced (shouldn't happen) — re-run on it.
                return self._echelon(result + [r])
            if r[0] != 0:
                return None
        result.sort(key=lambda r: next((c for c in range(1, n) if r[c] != 0), n))
        return result

    def with_rows(self, rows: list[Row]) -> "AffineState":
        reduced = self._echelon(rows)
        if reduced is None:
            return AffineState.bottom(self.variables)
        return AffineState(self.variables, reduced)

    def add_equality(self, row: Row) -> "AffineState":
        if self.is_bottom:
            return self
        return self.with_rows(self.rows + [row])

    # -- queries ----------------------------------------------------------------

    def _col(self, name: str) -> int:
        return 1 + self.variables.index(name)

    def entails_row(self, row: Row) -> bool:
        """Whether the subspace satisfies ``row`` everywhere."""

        if self.is_bottom:
            return True
        candidate = self._echelon(self.rows + [list(row)])
        if candidate is None:
            return False
        return len(candidate) == len(self.rows)

    # -- transfer functions -------------------------------------------------------

    def havoc(self, name: str) -> "AffineState":
        """Forget everything about ``name`` (project its column out)."""

        if self.is_bottom:
            return self
        col = self._col(name)
        kept = [r for r in self.rows if r[col] == 0]
        users = [r for r in self.rows if r[col] != 0]
        # Eliminate the column between pairs of rows that use it.
        for i in range(1, len(users)):
            a, b = users[0], users[i]
            factor = b[col] / a[col]
            kept.append([bv - factor * av for av, bv in zip(a, b)])
        return self.with_rows(kept)

    def assign_linear(self, name: str, const: int, coeffs: dict[str, int]) -> "AffineState":
        """Exact transfer for ``name := const + Σ coeffs[v]·v``."""

        if self.is_bottom:
            return self
        n = len(self.variables) + 1
        col = self._col(name)
        # x_new - e[x_old] = 0, with occurrences of name in e meaning the
        # OLD value: introduce the defining row in terms of a virtual old
        # column by first rewriting rows... Standard trick: if the rhs does
        # not mention name, havoc-then-constrain; otherwise substitute
        # backwards (invertible only when coeff on name != 0).
        self_coeff = coeffs.get(name, 0)
        if self_coeff == 0:
            state = self.havoc(name)
            row = [Fraction(0)] * n
            row[0] = Fraction(const)
            row[col] = Fraction(-1)
            for v, c in coeffs.items():
                row[state._col(v)] += Fraction(c)
            return state.add_equality(row)
        # Invertible update x := a*x + rest (a != 0): substitute
        # x_old = (x_new - rest)/a into every row.
        a = Fraction(self_coeff)
        rest_row = [Fraction(0)] * n
        rest_row[0] = Fraction(const)
        for v, c in coeffs.items():
            if v != name:
                rest_row[self._col(v)] += Fraction(c)
        new_rows: list[Row] = []
        for r in self.rows:
            k = r[col]
            nr = list(r)
            nr[col] = k / a
            for c in range(n):
                if c != col:
                    nr[c] -= (k / a) * rest_row[c]
            new_rows.append(nr)
        return self.with_rows(new_rows)

    def join(self, other: "AffineState") -> "AffineState":
        """Affine hull of the two subspaces (Karr's join)."""

        if self.is_bottom:
            return other.copy()
        if other.is_bottom:
            return self.copy()
        # Keep exactly the equalities of self that other also satisfies,
        # plus linear combinations; the affine hull of two subspaces is the
        # set of equalities valid on both, i.e. the intersection of their
        # row spaces *as constraint sets on points of either subspace*.
        # Compute via generators: points+directions of both, then the
        # equalities vanishing on all generators.
        gen_self = self._generators()
        gen_other = other._generators()
        if gen_self is None or gen_other is None:
            return AffineState.top(self.variables)
        (p1, dirs1), (p2, dirs2) = gen_self, gen_other
        directions = dirs1 + dirs2 + [[b - a for a, b in zip(p1, p2)]]
        return self._from_generators(p1, directions)

    def _generators(self) -> tuple[list, list[list]] | None:
        """A particular point and a basis of directions for the subspace."""

        n_vars = len(self.variables)
        pivots: dict[int, Row] = {}
        for r in self.rows:
            for c in range(1, n_vars + 1):
                if r[c] != 0:
                    pivots[c] = r
                    break
        free_cols = [c for c in range(1, n_vars + 1) if c not in pivots]
        # Particular point: free vars = 0, pivot vars solved.
        point = [Fraction(0)] * n_vars
        for c, row in pivots.items():
            # row: c0 + x_c + sum over free cols (zero) = 0 → x_c = -c0
            value = -row[0]
            for fc in free_cols:
                value -= row[fc] * 0
            point[c - 1] = value / row[c]
        directions: list[list] = []
        for fc in free_cols:
            d = [Fraction(0)] * n_vars
            d[fc - 1] = Fraction(1)
            for c, row in pivots.items():
                d[c - 1] = -row[fc] / row[c]
            directions.append(d)
        return point, directions

    def _from_generators(self, point: list, directions: list[list]) -> "AffineState":
        """Constraints vanishing on ``point + span(directions)``."""

        n_vars = len(self.variables)
        # Find the null space of the direction matrix (rows = directions):
        # vectors w with w·d = 0 for every direction d; each such w gives
        # the equality w·x = w·point.
        basis = _null_space(directions, n_vars)
        rows: list[Row] = []
        for w in basis:
            c0 = -sum(wi * pi for wi, pi in zip(w, point))
            rows.append([c0] + list(w))
        return self.with_rows(rows)

    # -- rendering ----------------------------------------------------------------

    def equalities(self) -> list[tuple[int, dict[str, int]]]:
        """Integer-normalised equalities ``const + Σ coeff·var = 0``."""

        out = []
        for r in self.rows:
            denominators = [f.denominator for f in r]
            lcm = 1
            for d in denominators:
                lcm = lcm * d // _gcd(lcm, d)
            ints = [int(f * lcm) for f in r]
            coeffs = {
                self.variables[i]: ints[i + 1]
                for i in range(len(self.variables))
                if ints[i + 1] != 0
            }
            out.append((ints[0], coeffs))
        return out


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a) or 1


def _null_space(vectors: list[list], n: int) -> list[list]:
    """A basis of { w : w·v = 0 for all v in vectors } over Fraction."""

    # Gaussian elimination on the vectors to get a row-space basis.
    work = [list(map(Fraction, v)) for v in vectors]
    basis_rows: list[list] = []
    pivot_cols: list[int] = []
    for col in range(n):
        pivot = None
        for r in work:
            if r[col] != 0 and all(r[c] == 0 for c in pivot_cols):
                pivot = r
                break
        if pivot is None:
            continue
        work.remove(pivot)
        inv = Fraction(1) / pivot[col]
        pivot = [v * inv for v in pivot]
        for r in work + basis_rows:
            if r[col] != 0:
                f = r[col]
                for c in range(n):
                    r[c] -= f * pivot[c]
        basis_rows.append(pivot)
        pivot_cols.append(col)
    free_cols = [c for c in range(n) if c not in pivot_cols]
    null_basis: list[list] = []
    for fc in free_cols:
        w = [Fraction(0)] * n
        w[fc] = Fraction(1)
        for row, pc in zip(basis_rows, pivot_cols):
            w[pc] = -row[fc]
        null_basis.append(w)
    return null_basis


# ---------------------------------------------------------------------------
# Statement transfer and the loop fixpoint
# ---------------------------------------------------------------------------


def _linear_of(e: Expr) -> tuple[int, dict[str, int]] | None:
    """IR linear decomposition over tracked dimensions (locals and args).

    Dimensions are named in the SMT symbol space (``v!x`` / ``a!n``) so the
    state can relate loop counters to the shared input arguments; calls
    make the expression non-affine.
    """

    from ..consolidation.simplifier import ir_linear
    from ..lang.ast import Arg, Var

    decomposition = ir_linear(e)
    if decomposition is None:
        return None
    const, coeffs = decomposition
    out: dict[str, int] = {}
    for atom, c in coeffs.items():
        if isinstance(atom, Var):
            name = var_sym(atom.name).name
        elif isinstance(atom, Arg):
            name = arg_sym(atom.name).name
        else:
            return None  # calls: not affine over the tracked dimensions
        out[name] = out.get(name, 0) + c
    return const, out


def transfer(state: AffineState, s: Stmt) -> AffineState:
    """Karr transfer of one statement."""

    if state.is_bottom or isinstance(s, (Skip, Notify)):
        return state
    if isinstance(s, Assign):
        name = var_sym(s.var).name
        if name not in state.variables:
            return state
        linear = _linear_of(s.expr)
        if linear is None:
            return state.havoc(name)
        const, coeffs = linear
        if any(v not in state.variables for v in coeffs):
            return state.havoc(name)
        return state.assign_linear(name, const, coeffs)
    if isinstance(s, Seq):
        for sub in s.stmts:
            state = transfer(state, sub)
        return state
    if isinstance(s, If):
        return transfer(state.copy(), s.then).join(transfer(state.copy(), s.orelse))
    if isinstance(s, While):
        return _loop_fixpoint(state, s.body)
    raise TypeError(f"not a statement: {s!r}")


def _loop_fixpoint(entry: AffineState, body: Stmt) -> AffineState:
    state = entry.copy()
    for _ in range(len(entry.variables) + 2):
        nxt = state.join(transfer(state.copy(), body))
        if nxt.rows == state.rows and nxt.is_bottom == state.is_bottom:
            return state
        state = nxt
    return AffineState.top(entry.variables)


# ---------------------------------------------------------------------------
# Integration with the invariant interface
# ---------------------------------------------------------------------------


def equalities_from_formula(psi: Formula, variables: Sequence[str]) -> list[Row]:
    """Affine rows for the equalities among ``psi``'s conjuncts.

    ``variables`` are dimension names in the SMT symbol space.
    """

    name_of = {v: i for i, v in enumerate(variables)}
    rows: list[Row] = []
    parts = psi.args if isinstance(psi, FAnd) else (psi,)
    for p in parts:
        if not isinstance(p, EqF):
            continue
        term = p.term
        if isinstance(term, Sym):
            if term.name in name_of:
                row = [Fraction(0)] * (len(variables) + 1)
                row[1 + name_of[term.name]] = Fraction(1)
                rows.append(row)
            continue
        if isinstance(term, Lin):
            row = [Fraction(term.const)] + [Fraction(0)] * len(variables)
            ok = True
            for atom, coef in term.coeffs:
                if isinstance(atom, Sym) and atom.name in name_of:
                    row[1 + name_of[atom.name]] += Fraction(coef)
                else:
                    ok = False
                    break
            if ok:
                rows.append(row)
    return rows


def affine_loop_invariant(
    engine: SpEngine,
    psi: Formula,
    body: Stmt,
) -> Formula:
    """Loop-head invariant equalities via Karr's analysis.

    The entry state is seeded from the variable-only equalities of ``psi``;
    the result is the conjunction of the fixpoint's equalities as SMT
    formulas (ready to be conjoined with the stable part of ``psi``).
    """

    from ..lang.visitors import stmt_args, stmt_vars
    from ..smt.terms import free_syms

    dims = {var_sym(v).name for v in stmt_vars(body)}
    dims |= {arg_sym(a).name for a in stmt_args(body)}
    # Arguments related to the locals through the entry context extend the
    # space (they are constant through the loop, hence free dimensions).
    dims |= {n for n in free_syms(psi) if n.startswith("a!")}
    variables = sorted(dims)
    if not variables:
        return fand()
    entry = AffineState.top(variables).with_rows(
        equalities_from_formula(psi, variables)
    )
    head = _loop_fixpoint(entry, body)
    if head.is_bottom:
        return fand()
    conjuncts = []
    for const, coeffs in head.equalities():
        term_coeffs = {Sym(v): c for v, c in coeffs.items()}
        conjuncts.append(eq_f(from_linear(const, term_coeffs), Num(0)))
    return fand(*conjuncts)
