"""Sound prefilter synthesis and the vectorizability shape classifier.

Consolidation makes merged UDFs *bigger* per call, so the highest-leverage
static analysis on top of it is a reject-early guard: a cheap, branch-free,
loop-free **necessary condition** ``phi(row)`` with

    ``not phi(row)  =>  the UDF notifies no pid (truthily)``

Rows failing ``phi`` can skip the merged UDF entirely without changing any
result bucket, because the dataflow operators only route a record when a
notification is truthy.  ``phi`` is *necessary*, never sufficient: a row
passing the prefilter still runs the full UDF, so imprecision only costs
speed, never soundness.

Synthesis is a single forward walk over the Figure-1 IR that threads three
things side by side:

1. a **substitution map** from locals to argument-only expressions (an
   ``Assign`` whose right-hand side mentions only ``Arg``s, constants and
   library calls over those extends the map; anything else — including
   every variable a loop body may write — maps to *unknown*);
2. the **path condition**: at each ``Notify`` site the conjunction of the
   rewritten branch conditions on the path, plus the rewritten payload.
   Conjuncts that do not rewrite to argument-only form are *dropped to
   true* (weakening — always sound for a necessary condition).  A loop
   guard, rewritten under the *pre-loop* substitution, is kept for sites
   inside the body: the body cannot execute at all unless the first test
   passed;
3. a strongest-postcondition context ``Ψ`` (:class:`~repro.analysis.sp
   .SpEngine`) used to *certify* each kept site condition as an SMT
   validity query ``Ψ ∧ payload ⊨ condition`` through
   :class:`repro.smt.solver.Solver`.

Sites the interval abstract interpreter proves unreachable — or whose
payload it proves definitely false — are excluded from the disjunction
(they can never produce a truthy notification).  The final filter is
``phi = site_1 ∨ ... ∨ site_n`` over the live sites.

Degradation rules (the pass must never raise and never strengthen):

* a site condition that weakens all the way to ``true`` makes the whole
  filter trivial (``phi = true`` — certificate ``"trivial"``);
* any certificate failure — encoding outside QF_UFLIA, solver ``unknown``
  or an unproved entailment — degrades the *whole* filter to ``true``
  (dropping only the failing disjunct would *strengthen* ``phi``, which
  is unsound);
* an oversized ``phi`` (> :data:`MAX_PHI_SIZE` nodes) degrades to
  ``true``: the guard must stay cheaper than the UDF it guards.

The **shape classifier** tags each program on the vectorizability ladder
``straight-line < branch-free < bounded-loop < unbounded`` ("branch-free"
means free of loop back-edges: ``If``-only programs are if-convertible to
predicated straight-line code).  It reuses the cost-bound machinery: a
program whose worst-case cost is finite has only bounded loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from ..lang.builder import conj, disj
from ..lang.compile import DEFAULT_BACKEND, make_runner
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.functions import FunctionTable
from ..lang.printer import expr_to_str
from ..lang.visitors import assigned_vars, expr_size
from ..smt.solver import Solver
from ..smt.terms import Formula, fand, fnot
from ..telemetry import NULL_TELEMETRY, Telemetry
from .sp import SpEngine
from .static.costbound import program_cost_upper
from .static.domains import IntervalConstDomain
from .static.framework import analyze_program
from .static.values import StaticEnv

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..provenance.recorder import DerivationRecorder, DerivationTree

__all__ = [
    "SHAPES",
    "PREFILTER_PID",
    "MAX_PHI_SIZE",
    "Prefilter",
    "PrefilterGuard",
    "classify_shape",
    "synthesize_prefilter",
    "compile_prefilter",
    "make_guard",
    "prefilter_program",
]

SHAPES = ("straight-line", "branch-free", "bounded-loop", "unbounded")

#: The reserved notification channel a compiled prefilter broadcasts on.
PREFILTER_PID = "__prefilter__"

#: Above this AST size the synthesized filter is considered more expensive
#: than it is worth and degrades to ``true``.
MAX_PHI_SIZE = 400


def _has_stmt(stmt: Stmt, kind: type) -> bool:
    if isinstance(stmt, kind):
        return True
    if isinstance(stmt, Seq):
        return any(_has_stmt(s, kind) for s in stmt.stmts)
    if isinstance(stmt, If):
        return _has_stmt(stmt.then, kind) or _has_stmt(stmt.orelse, kind)
    if isinstance(stmt, While):
        return _has_stmt(stmt.body, kind)
    return False


def classify_shape(
    program: Program,
    functions: Optional[FunctionTable] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> str:
    """Place ``program`` on the vectorizability ladder (:data:`SHAPES`).

    ``straight-line``
        No control flow at all — directly vectorizable.
    ``branch-free``
        No loop back-edges; ``If``-only programs are if-convertible into
        predicated straight-line code.
    ``bounded-loop``
        Every loop has a finite inferred trip count (the program's
        worst-case cost bound is finite) — unrollable.
    ``unbounded``
        At least one loop the trip-count inference cannot bound.
    """

    if _has_stmt(program.body, While):
        bound = program_cost_upper(program, functions, cost_model)
        return "bounded-loop" if bound is not None else "unbounded"
    if _has_stmt(program.body, If):
        return "branch-free"
    return "straight-line"


# ---------------------------------------------------------------------------
# Argument-only rewriting
# ---------------------------------------------------------------------------

Subst = dict[str, Optional[Expr]]


def _rewrite(e: Expr, subst: Mapping[str, Optional[Expr]]) -> Optional[Expr]:
    """Rewrite ``e`` into argument-only form, or None when impossible."""

    if isinstance(e, (IntConst, StrConst, BoolConst, Arg)):
        return e
    if isinstance(e, Var):
        return subst.get(e.name)
    if isinstance(e, Call):
        parts = [_rewrite(a, subst) for a in e.args]
        if any(p is None for p in parts):
            return None
        return Call(e.func, tuple(p for p in parts if p is not None))
    if isinstance(e, BinOp):
        left, right = _rewrite(e.left, subst), _rewrite(e.right, subst)
        if left is None or right is None:
            return None
        return BinOp(e.op, left, right)
    if isinstance(e, Cmp):
        left, right = _rewrite(e.left, subst), _rewrite(e.right, subst)
        if left is None or right is None:
            return None
        return Cmp(e.op, left, right)
    if isinstance(e, Not):
        sub = _rewrite(e.operand, subst)
        return None if sub is None else Not(sub)
    if isinstance(e, BoolOp):
        left, right = _rewrite(e.left, subst), _rewrite(e.right, subst)
        if left is None or right is None:
            return None
        return BoolOp(e.op, left, right)
    return None


def _tick(dropped: Optional[list[int]]) -> None:
    if dropped is not None:
        dropped[0] += 1


def _necessary(
    e: Expr,
    subst: Mapping[str, Optional[Expr]],
    dropped: Optional[list[int]] = None,
) -> Optional[Expr]:
    """A *weakened* argument-only rewrite of ``e`` in positive polarity.

    Whereas :func:`_rewrite` is all-or-nothing, this keeps whatever
    conjuncts of ``e`` do rewrite and drops the rest to ``true`` — sound
    for a necessary condition.  The load-bearing case is a payload like
    ``t > 80 and s > X`` where ``s`` is loop-carried: the cheap conjunct
    ``t > 80`` survives as the filter.  A disjunction needs *both* sides
    (weakening one disjunct to ``true`` absorbs the whole ``or``), and a
    negation flips polarity (:func:`_necessary_neg`).  ``dropped`` is a
    one-cell counter of conjuncts weakened away while a sibling survived
    (a fully-unrewritable expression is the caller's drop, not ours).
    """

    if isinstance(e, BoolOp) and e.op == "and":
        left = _necessary(e.left, subst, dropped)
        right = _necessary(e.right, subst, dropped)
        if left is None and right is None:
            return None
        if left is None:
            _tick(dropped)
            return right
        if right is None:
            _tick(dropped)
            return left
        return BoolOp("and", left, right)
    if isinstance(e, BoolOp) and e.op == "or":
        left = _necessary(e.left, subst, dropped)
        right = _necessary(e.right, subst, dropped)
        if left is None or right is None:
            return None
        return BoolOp("or", left, right)
    if isinstance(e, Not):
        return _necessary_neg(e.operand, subst, dropped)
    return _rewrite(e, subst)


def _necessary_neg(
    e: Expr,
    subst: Mapping[str, Optional[Expr]],
    dropped: Optional[list[int]] = None,
) -> Optional[Expr]:
    """A weakened rewrite of ``¬e``: negation pushed through by De Morgan."""

    if isinstance(e, BoolOp) and e.op == "and":
        # ¬(a ∧ b) = ¬a ∨ ¬b: a disjunction, so both sides are needed.
        left = _necessary_neg(e.left, subst, dropped)
        right = _necessary_neg(e.right, subst, dropped)
        if left is None or right is None:
            return None
        return BoolOp("or", left, right)
    if isinstance(e, BoolOp) and e.op == "or":
        # ¬(a ∨ b) = ¬a ∧ ¬b: keep whichever conjuncts rewrite.
        left = _necessary_neg(e.left, subst, dropped)
        right = _necessary_neg(e.right, subst, dropped)
        if left is None and right is None:
            return None
        if left is None:
            _tick(dropped)
            return right
        if right is None:
            _tick(dropped)
            return left
        return BoolOp("and", left, right)
    if isinstance(e, Not):
        return _necessary(e.operand, subst, dropped)
    sub = _rewrite(e, subst)
    return None if sub is None else Not(sub)


# ---------------------------------------------------------------------------
# Site collection
# ---------------------------------------------------------------------------


@dataclass
class _Site:
    """One live ``Notify`` with its necessary condition and certificate Ψ."""

    pid: str
    condition: Optional[Expr]  # argument-only; None = unconstrained (true)
    hypothesis: Formula  # Ψ at the site ∧ encoded payload


@dataclass
class _Collector:
    engine: SpEngine
    pre_envs: dict[int, StaticEnv]
    live: list[_Site] = field(default_factory=list)
    dead: int = 0
    total: int = 0
    dropped: int = 0
    _drop_cell: list[int] = field(default_factory=lambda: [0])

    def _cell(self) -> list[int]:
        """The shared partial-weakening counter (folded in via ``dropped``)."""

        return self._drop_cell

    def walk(
        self, stmt: Stmt, subst: Subst, path: list[Expr], psi: Formula
    ) -> Formula:
        if isinstance(stmt, Skip):
            return psi
        if isinstance(stmt, Seq):
            for sub in stmt.stmts:
                psi = self.walk(sub, subst, path, psi)
            return psi
        if isinstance(stmt, Assign):
            subst[stmt.var] = _rewrite(stmt.expr, subst)
            return self.engine.assign(psi, stmt.var, stmt.expr)
        if isinstance(stmt, Notify):
            self._site(stmt, subst, path, psi)
            return psi
        if isinstance(stmt, If):
            return self._branch(stmt, subst, path, psi)
        if isinstance(stmt, While):
            return self._loop(stmt, subst, path, psi)
        raise TypeError(f"not a statement: {stmt!r}")

    def _site(
        self, stmt: Notify, subst: Subst, path: list[Expr], psi: Formula
    ) -> None:
        self.total += 1
        env = self.pre_envs.get(id(stmt))
        statically_false = isinstance(stmt.expr, BoolConst) and not stmt.expr.value
        if (
            env is None  # never visited: the abstract state was bottom
            or env.unreachable
            or statically_false
            or env.eval_bool(stmt.expr) is False
        ):
            self.dead += 1
            return
        parts = list(path)
        if not (isinstance(stmt.expr, BoolConst) and stmt.expr.value):
            payload = _necessary(stmt.expr, subst, self._cell())
            if payload is not None:
                parts.append(payload)
            else:
                self.dropped += 1
        condition = conj(*parts) if parts else None
        self.live.append(
            _Site(
                pid=stmt.pid,
                condition=condition,
                hypothesis=self.engine.assume(psi, stmt.expr),
            )
        )

    def _branch(
        self, stmt: If, subst: Subst, path: list[Expr], psi: Formula
    ) -> Formula:
        cond = _necessary(stmt.cond, subst, self._cell())
        neg = _necessary_neg(stmt.cond, subst, self._cell())
        if cond is None or neg is None:
            self.dropped += 1
        then_subst, else_subst = dict(subst), dict(subst)
        then_path = path + ([cond] if cond is not None else [])
        else_path = path + ([neg] if neg is not None else [])
        psi_then = self.walk(
            stmt.then, then_subst, then_path, self.engine.assume(psi, stmt.cond)
        )
        psi_else = self.walk(
            stmt.orelse,
            else_subst,
            else_path,
            self.engine.assume(psi, stmt.cond, negate=True),
        )
        for name in set(then_subst) | set(else_subst):
            a, b = then_subst.get(name), else_subst.get(name)
            subst[name] = a if a is not None and a == b else None
        from ..smt.terms import for_

        return for_(psi_then, psi_else)

    def _loop(
        self, stmt: While, subst: Subst, path: list[Expr], psi: Formula
    ) -> Formula:
        # The body cannot run unless the *first* guard test passed, so the
        # guard rewritten under the pre-loop substitution is a necessary
        # conjunct for every site inside the body.
        guard = _necessary(stmt.cond, subst, self._cell())
        if guard is None:
            self.dropped += 1
        assigned = assigned_vars(stmt.body)
        # Ψ for body sites: the first test passed (pre-loop versions), then
        # an arbitrary number of iterations ran (havoc), and the guard holds
        # again at the iteration the site fires on.
        psi_entry = self.engine.assume(psi, stmt.cond)
        psi_body = self.engine.assume(
            self.engine.havoc(psi_entry, assigned), stmt.cond
        )
        body_subst = dict(subst)
        for name in assigned:
            body_subst[name] = None
        body_path = path + ([guard] if guard is not None else [])
        self.walk(stmt.body, body_subst, body_path, psi_body)
        # Post-loop: every variable the body writes is unknown.
        for name in assigned:
            subst[name] = None
        enc = self.engine.encode_bool(stmt.cond)
        psi_exit = self.engine.havoc(psi, assigned)
        if enc is not None:
            psi_exit = fand(psi_exit, fnot(enc))
        return psi_exit


def _reachability(program: Program) -> dict[int, StaticEnv]:
    """Map each syntactic ``Notify`` (by identity) to its abstract pre-state.

    Sites missing from the map were only ever reached with a bottom state:
    the interval interpreter proved them unreachable.
    """

    pre_envs: dict[int, StaticEnv] = {}

    def visit(stmt: Stmt, state: StaticEnv) -> None:
        if isinstance(stmt, Notify):
            pre_envs[id(stmt)] = state

    analyze_program(IntervalConstDomain.for_program(program), program, visit)
    return pre_envs


# ---------------------------------------------------------------------------
# The synthesized filter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Prefilter:
    """A sound reject-early guard for one UDF.

    ``phi`` is the argument-only necessary condition; ``certificate`` is
    ``"proved"`` (every live site discharged against the solver),
    ``"trivial"`` (the filter weakened to ``true`` — expected precision
    loss, not a failure) or ``"degraded"`` (a certificate step failed and
    the filter fell back to ``true``; see ``degraded_reason``).
    """

    pid: str
    phi: Expr
    shape: str
    certificate: str
    degraded_reason: str = ""
    sites: int = 0
    live_sites: int = 0
    dead_sites: int = 0
    dropped_conjuncts: int = 0
    synthesis_seconds: float = 0.0
    derivation: Optional["DerivationTree"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def trivial(self) -> bool:
        """True when ``phi`` is the constant ``true`` (filters nothing)."""

        return isinstance(self.phi, BoolConst) and self.phi.value

    @property
    def rejects_everything(self) -> bool:
        """True when ``phi`` is the constant ``false`` (no site can fire)."""

        return isinstance(self.phi, BoolConst) and not self.phi.value

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "phi": expr_to_str(self.phi),
            "shape": self.shape,
            "certificate": self.certificate,
            "degraded_reason": self.degraded_reason,
            "trivial": self.trivial,
            "sites": self.sites,
            "live_sites": self.live_sites,
            "dead_sites": self.dead_sites,
            "dropped_conjuncts": self.dropped_conjuncts,
            "synthesis_seconds": round(self.synthesis_seconds, 6),
        }


def synthesize_prefilter(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    solver: Optional[Solver] = None,
    recorder: Optional["DerivationRecorder"] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> Prefilter:
    """Synthesize a sound necessary-condition prefilter for ``program``.

    Never raises: any internal failure (encoding outside the SMT fragment,
    solver ``unknown``, an unproved certificate, an analysis crash)
    degrades the result to ``phi = true``, which filters nothing and is
    vacuously sound.
    """

    started = time.perf_counter()
    shape = classify_shape(program, functions, cost_model)
    if recorder is not None:
        recorder.begin_pair(program.pid, "prefilter")

    phi, certificate, reason, collector = _synthesize(
        program, functions, solver, recorder
    )
    seconds = time.perf_counter() - started

    derivation: Optional["DerivationTree"] = None
    if recorder is not None:
        recorder.leaf(
            "PrefilterResult",
            f"shape={shape} certificate={certificate} phi={expr_to_str(phi)}",
        )
        derivation = recorder.end_pair(f"φ[{program.pid}]", seconds)

    if telemetry.enabled:
        telemetry.counter("prefilter_synthesized_total").inc()
        if certificate == "degraded":
            telemetry.counter("prefilter_degraded_total").inc()
        telemetry.histogram("prefilter_synthesis_seconds").observe(seconds)

    return Prefilter(
        pid=program.pid,
        phi=phi,
        shape=shape,
        certificate=certificate,
        degraded_reason=reason,
        sites=collector.total if collector is not None else 0,
        live_sites=len(collector.live) if collector is not None else 0,
        dead_sites=collector.dead if collector is not None else 0,
        dropped_conjuncts=(
            collector.dropped + collector._drop_cell[0]
            if collector is not None
            else 0
        ),
        synthesis_seconds=seconds,
        derivation=derivation,
    )


def _synthesize(
    program: Program,
    functions: FunctionTable,
    solver: Optional[Solver],
    recorder: Optional["DerivationRecorder"],
) -> tuple[Expr, str, str, Optional[_Collector]]:
    """The fallible core of :func:`synthesize_prefilter`.

    Returns ``(phi, certificate, degraded_reason, collector)``.
    """

    from ..smt.terms import TRUE_F

    try:
        engine = SpEngine(functions)
        collector = _Collector(engine=engine, pre_envs=_reachability(program))
        subst: Subst = {}
        collector.walk(program.body, subst, [], TRUE_F)
    except Exception as exc:  # noqa: BLE001 - degrade, never raise
        return BoolConst(True), "degraded", f"collection failed: {exc}", None

    if not collector.live:
        # Every notify site is statically dead: no row can ever produce a
        # truthy notification, so rejecting everything is sound.
        return BoolConst(False), "proved", "", collector

    if any(site.condition is None for site in collector.live):
        return BoolConst(True), "trivial", "", collector

    conditions: list[Expr] = []
    for site in collector.live:
        assert site.condition is not None
        if site.condition not in conditions:
            conditions.append(site.condition)
    phi = disj(*conditions)
    if expr_size(phi) > MAX_PHI_SIZE:
        return (
            BoolConst(True),
            "degraded",
            f"phi size {expr_size(phi)} exceeds {MAX_PHI_SIZE}",
            collector,
        )

    verdict, reason = _certify(collector, solver, recorder)
    if not verdict:
        return BoolConst(True), "degraded", reason, collector
    return phi, "proved", "", collector


def _certify(
    collector: _Collector,
    solver: Optional[Solver],
    recorder: Optional["DerivationRecorder"],
) -> tuple[bool, str]:
    """Discharge every live site condition as an SMT validity query."""

    from ..provenance.render import clamp, format_formula

    owned = solver if solver is not None else Solver()
    for site in collector.live:
        assert site.condition is not None
        try:
            goal = collector.engine.encode_bool(site.condition)
            if goal is None:
                return False, (
                    f"site {site.pid}: condition outside the SMT fragment: "
                    f"{expr_to_str(site.condition)}"
                )
            checked = time.perf_counter()
            proved = owned.entails(site.hypothesis, goal)
            elapsed = time.perf_counter() - checked
            if recorder is not None:
                recorder.entailment(
                    "prefilter",
                    clamp(format_formula(site.hypothesis)),
                    clamp(expr_to_str(site.condition)),
                    proved,
                    elapsed,
                    "smt",
                )
            if not proved:
                return False, (
                    f"site {site.pid}: certificate not proved "
                    f"(solver sat/unknown) for {expr_to_str(site.condition)}"
                )
        except Exception as exc:  # noqa: BLE001 - degrade, never raise
            return False, f"site {site.pid}: certificate check failed: {exc}"
    return True, ""


# ---------------------------------------------------------------------------
# Compilation into the hot path
# ---------------------------------------------------------------------------


class PrefilterGuard:
    """A compiled prefilter: callable ``args -> (passes, charged_cost)``.

    Any runtime error inside the guard (e.g. a fuzzed UDF whose filter
    expression type-errors on an unusual row) fails *open*: the record is
    passed through to the full UDF, preserving behaviour exactly.
    """

    __slots__ = ("prefilter", "_runner")

    def __init__(
        self,
        prefilter: Prefilter,
        runner: Callable[[Mapping[str, Any]], Any],
    ) -> None:
        self.prefilter = prefilter
        self._runner = runner

    def __call__(self, args: Mapping[str, Any]) -> tuple[bool, int]:
        try:
            result = self._runner(args)
        except Exception:  # noqa: BLE001 - fail open: run the full UDF
            return True, 0
        return bool(result.notification(PREFILTER_PID)), int(result.cost)


def prefilter_program(prefilter: Prefilter, program: Program) -> Program:
    """Wrap ``phi`` as a one-statement program broadcasting on the
    reserved :data:`PREFILTER_PID` channel.

    Shared by :func:`compile_prefilter` (per-record guards) and the
    vectorized Where operators, which run the same wrapper program as a
    whole-column mask kernel compacting batches before the UDF kernels.
    """

    return Program(
        pid=program.pid,
        params=program.params,
        body=Notify(PREFILTER_PID, prefilter.phi),
    )


def compile_prefilter(
    prefilter: Prefilter,
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    backend: str = DEFAULT_BACKEND,
    memoize_calls: bool = False,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> Optional[PrefilterGuard]:
    """Compile ``phi`` through the normal UDF backend, or None if trivial.

    The filter rides the existing compile cache, cost model and backend
    selection unchanged (see :func:`prefilter_program`).
    """

    if prefilter.trivial:
        return None
    wrapper = prefilter_program(prefilter, program)
    runner = make_runner(
        wrapper,
        functions,
        cost_model,
        backend=backend,
        memoize_calls=memoize_calls,
        telemetry=telemetry,
    )
    return PrefilterGuard(prefilter, runner)


def make_guard(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    backend: str = DEFAULT_BACKEND,
    memoize_calls: bool = False,
    telemetry: Telemetry = NULL_TELEMETRY,
    prefilter: Optional[Prefilter] = None,
) -> Optional[PrefilterGuard]:
    """Synthesize (unless given) and compile a guard; None when trivial.

    This is the operator-facing entry point: it never raises, returning
    None — "no guard, run everything" — on any failure.
    """

    try:
        pre = prefilter
        if pre is None:
            pre = synthesize_prefilter(
                program, functions, cost_model, telemetry=telemetry
            )
        return compile_prefilter(
            pre,
            program,
            functions,
            cost_model,
            backend=backend,
            memoize_calls=memoize_calls,
            telemetry=telemetry,
        )
    except Exception:  # noqa: BLE001 - no guard is always sound
        return None
