"""repro.api — the stable five-verb facade over the whole pipeline.

Everything the paper's workflow needs is one of five verbs, usable
in-process today and over HTTP tomorrow without changing error handling:

``consolidate``
    Merge a batch of Figure-1 programs into one (divide-and-conquer),
    returning the full :class:`~repro.consolidation.ConsolidationReport`.
``run``
    Execute a batch over rows — consolidated (the paper's
    ``whereConsolidated``) or un-consolidated (``whereMany``) — returning
    notification buckets and cost metrics.
``register`` / ``unregister``
    Mutate a live :class:`~repro.service.QueryRegistry`: admission,
    plan-cache probe, incremental merge-tree patch, journalled event.
    These are the *same* calls the HTTP server makes, so in-process and
    remote callers see identical semantics and exception types
    (:mod:`repro.service.errors`).
``explain``
    One JSON-able account of how a plan came to be — works on a live
    registry (the service's ``/v1/explain``) or on a plain batch of
    programs (consolidates with provenance recording on).

This module is a *facade*: no logic lives here, only stable signatures
with full type hints.  ``__all__`` is a frozen tuple and
``tests/test_api_surface.py`` pins every signature — changing this
surface is an explicit, reviewed act.
"""

from __future__ import annotations

from typing import Any, Final, Optional, Sequence, Union

from .config import ExecutionConfig
from .consolidation import ConsolidationOptions, ConsolidationReport, consolidate_all
from .lang.ast import Program
from .lang.functions import FunctionTable
from .naiad.dataflow import RunResult
from .naiad.linq import from_collection
from .provenance import derivation_summary
from .service.registry import QueryRegistry, RegisteredQuery

__all__: Final = ("consolidate", "explain", "register", "run", "unregister")


def consolidate(
    programs: Sequence[Program],
    functions: Optional[FunctionTable] = None,
    *,
    options: Optional[ConsolidationOptions] = None,
    config: Optional[ExecutionConfig] = None,
) -> ConsolidationReport:
    """Merge ``programs`` into one consolidated program.

    The report carries the merged program, cost/validation evidence,
    degradation ladder and (under ``config.provenance``) per-pair
    derivations.  ``functions`` falls back to ``config.functions``.
    """

    cfg = config or ExecutionConfig()
    return consolidate_all(
        list(programs),
        cfg.resolve_functions(functions),
        cfg.cost_model,
        options,
        config=cfg,
    )


def run(
    rows: Sequence[Any],
    programs: Sequence[Program],
    functions: Optional[FunctionTable] = None,
    *,
    consolidated: bool = True,
    options: Optional[ConsolidationOptions] = None,
    config: Optional[ExecutionConfig] = None,
) -> RunResult:
    """Execute ``programs`` over ``rows``; buckets keyed by program pid.

    ``consolidated=True`` (the paper's pitch) merges the batch first and
    runs the single ``whereConsolidated`` operator; ``False`` runs the
    un-merged ``whereMany`` baseline.  Both return the same
    :class:`~repro.naiad.dataflow.RunResult` shape, so equivalence checks
    are one ``==`` on ``result.buckets``.
    """

    cfg = config or ExecutionConfig()
    table = cfg.resolve_functions(functions)
    programs = list(programs)
    pids = [p.pid for p in programs]
    query = from_collection(rows, config=cfg)
    if consolidated:
        report = consolidate(programs, table, options=options, config=cfg)
        query = query.where_consolidated(report.program, pids, table)
    else:
        query = query.where_many(programs, table)
    return query.run(cfg)


def register(
    registry: QueryRegistry,
    query: Union[Program, str],
    *,
    tenant: str = "default",
) -> RegisteredQuery:
    """Admit and register one query on a live registry.

    ``query`` may be a :class:`~repro.lang.ast.Program`, concrete
    Figure-1 syntax, or restricted-Python source (``def notify(row): …``).
    Raises :class:`~repro.service.errors.AdmissionError` (with SARIF
    diagnostics), :class:`~repro.service.errors.DuplicateQueryError` or
    :class:`~repro.service.errors.RegistryError` — the same types the
    HTTP client raises.
    """

    return registry.register(query, tenant=tenant)


def unregister(registry: QueryRegistry, pid: str) -> None:
    """Remove one registered query, patching the plan incrementally."""

    registry.unregister(pid)


def explain(
    target: Union[QueryRegistry, Sequence[Program]],
    functions: Optional[FunctionTable] = None,
    *,
    options: Optional[ConsolidationOptions] = None,
    config: Optional[ExecutionConfig] = None,
) -> dict:
    """How the consolidated plan came to be, as one JSON-able dict.

    A live :class:`~repro.service.QueryRegistry` explains itself — tree
    shape, last patch, plan-cache stats, counters.  A plain batch of
    programs is consolidated on the spot with provenance recording on,
    and the dict summarises the derivations (rule counts, entailments,
    rewrites, solver time).
    """

    if isinstance(target, QueryRegistry):
        return target.explain()
    cfg = (config or ExecutionConfig()).evolve(provenance=True)
    report = consolidate(target, functions, options=options, config=cfg)
    return {
        "queries": len(list(target)),
        "merged_pid": report.program.pid,
        "pair_consolidations": report.pair_consolidations,
        "skipped_pairs": len(report.skipped_pairs),
        "derivations": derivation_summary(report.derivations),
    }
