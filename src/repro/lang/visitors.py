"""Traversal and transformation utilities over the IR.

These are the workhorses shared by the analyses and the consolidation
algorithm: variable/call collection, capture-free substitution (the language
has no binders below the lambda, so substitution is structural), local
renaming to enforce the disjoint-locals precondition of consolidation, and
expression typing.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
    seq,
)
from .functions import BOOL, INT, STR, FunctionTable, Sort

__all__ = [
    "subexpressions",
    "expr_vars",
    "expr_args",
    "expr_calls",
    "stmt_exprs",
    "stmt_vars",
    "stmt_args",
    "stmt_calls",
    "assigned_vars",
    "notified_pids",
    "substitute",
    "map_exprs",
    "rename_vars",
    "rename_locals",
    "expr_size",
    "stmt_size",
    "TypeError_",
    "type_of",
    "check_program",
]


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------


def subexpressions(e: Expr) -> Iterator[Expr]:
    """All subexpressions of ``e``, including ``e`` itself (pre-order)."""

    yield e
    if isinstance(e, Call):
        for a in e.args:
            yield from subexpressions(a)
    elif isinstance(e, (BinOp, Cmp, BoolOp)):
        yield from subexpressions(e.left)
        yield from subexpressions(e.right)
    elif isinstance(e, Not):
        yield from subexpressions(e.operand)


def expr_vars(e: Expr) -> set[str]:
    """Local-variable names read by ``e``."""

    return {sub.name for sub in subexpressions(e) if isinstance(sub, Var)}


def expr_args(e: Expr) -> set[str]:
    """Argument names read by ``e``."""

    return {sub.name for sub in subexpressions(e) if isinstance(sub, Arg)}


def expr_calls(e: Expr) -> set[str]:
    """Names of library functions called by ``e``."""

    return {sub.func for sub in subexpressions(e) if isinstance(sub, Call)}


def stmt_exprs(s: Stmt) -> Iterator[Expr]:
    """All expressions occurring in ``s`` in syntactic order."""

    if isinstance(s, (Skip,)):
        return
    if isinstance(s, Assign):
        yield s.expr
    elif isinstance(s, Notify):
        yield s.expr
    elif isinstance(s, Seq):
        for sub in s.stmts:
            yield from stmt_exprs(sub)
    elif isinstance(s, If):
        yield s.cond
        yield from stmt_exprs(s.then)
        yield from stmt_exprs(s.orelse)
    elif isinstance(s, While):
        yield s.cond
        yield from stmt_exprs(s.body)


def stmt_vars(s: Stmt) -> set[str]:
    """Local-variable names read or written anywhere in ``s``."""

    names: set[str] = set(assigned_vars(s))
    for e in stmt_exprs(s):
        names |= expr_vars(e)
    return names


def stmt_args(s: Stmt) -> set[str]:
    names: set[str] = set()
    for e in stmt_exprs(s):
        names |= expr_args(e)
    return names


def stmt_calls(s: Stmt) -> set[str]:
    names: set[str] = set()
    for e in stmt_exprs(s):
        names |= expr_calls(e)
    return names


def assigned_vars(s: Stmt) -> set[str]:
    """Local-variable names assigned anywhere in ``s``."""

    if isinstance(s, Assign):
        return {s.var}
    if isinstance(s, Seq):
        out: set[str] = set()
        for sub in s.stmts:
            out |= assigned_vars(sub)
        return out
    if isinstance(s, If):
        return assigned_vars(s.then) | assigned_vars(s.orelse)
    if isinstance(s, While):
        return assigned_vars(s.body)
    return set()


def notified_pids(s: Stmt) -> set[str]:
    """Program identifiers that ``s`` may notify."""

    if isinstance(s, Notify):
        return {s.pid}
    if isinstance(s, Seq):
        out: set[str] = set()
        for sub in s.stmts:
            out |= notified_pids(sub)
        return out
    if isinstance(s, If):
        return notified_pids(s.then) | notified_pids(s.orelse)
    if isinstance(s, While):
        return notified_pids(s.body)
    return set()


# ---------------------------------------------------------------------------
# Transformation
# ---------------------------------------------------------------------------


def substitute(e: Expr, mapping: dict[Expr, Expr]) -> Expr:
    """Replace occurrences of the *keys* of ``mapping`` (whole subtrees).

    Substitution is outside-in: once a subtree matches a key it is replaced
    wholesale and not re-visited, so mappings may safely mention each other.
    """

    if e in mapping:
        return mapping[e]
    if isinstance(e, Call):
        return Call(e.func, tuple(substitute(a, mapping) for a in e.args))
    if isinstance(e, BinOp):
        return BinOp(e.op, substitute(e.left, mapping), substitute(e.right, mapping))
    if isinstance(e, Cmp):
        return Cmp(e.op, substitute(e.left, mapping), substitute(e.right, mapping))
    if isinstance(e, Not):
        return Not(substitute(e.operand, mapping))
    if isinstance(e, BoolOp):
        return BoolOp(e.op, substitute(e.left, mapping), substitute(e.right, mapping))
    return e


def map_exprs(s: Stmt, f: Callable[[Expr], Expr]) -> Stmt:
    """Rebuild ``s`` with every embedded expression passed through ``f``."""

    if isinstance(s, Skip):
        return s
    if isinstance(s, Assign):
        return Assign(s.var, f(s.expr))
    if isinstance(s, Notify):
        return Notify(s.pid, f(s.expr))
    if isinstance(s, Seq):
        return seq(*(map_exprs(sub, f) for sub in s.stmts))
    if isinstance(s, If):
        return If(f(s.cond), map_exprs(s.then, f), map_exprs(s.orelse, f))
    if isinstance(s, While):
        return While(f(s.cond), map_exprs(s.body, f))
    raise TypeError(f"not a statement: {s!r}")


def rename_vars(s: Stmt, renaming: dict[str, str]) -> Stmt:
    """Rename local variables in reads and writes according to ``renaming``."""

    def on_expr(e: Expr) -> Expr:
        mapping: dict[Expr, Expr] = {
            Var(old): Var(new) for old, new in renaming.items()
        }
        return substitute(e, mapping)

    def walk(st: Stmt) -> Stmt:
        if isinstance(st, Assign):
            return Assign(renaming.get(st.var, st.var), on_expr(st.expr))
        if isinstance(st, Notify):
            return Notify(st.pid, on_expr(st.expr))
        if isinstance(st, Seq):
            return seq(*(walk(sub) for sub in st.stmts))
        if isinstance(st, If):
            return If(on_expr(st.cond), walk(st.then), walk(st.orelse))
        if isinstance(st, While):
            return While(on_expr(st.cond), walk(st.body))
        return st

    return walk(s)


def rename_locals(p: Program, prefix: str | None = None) -> Program:
    """Prefix every local of ``p`` with its pid, e.g. ``x`` -> ``q1.x``.

    Consolidation requires the two programs' locals to be disjoint
    (Figure 1 labels locals with the program index); applying this to each
    input establishes the precondition mechanically.
    """

    tag = prefix if prefix is not None else p.pid
    names = stmt_vars(p.body)
    renaming = {n: f"{tag}.{n}" for n in names if not n.startswith(f"{tag}.")}
    return Program(p.pid, p.params, rename_vars(p.body, renaming))


def expr_size(e: Expr) -> int:
    """Number of AST nodes in ``e``."""

    return sum(1 for _ in subexpressions(e))


def stmt_size(s: Stmt) -> int:
    """Number of AST nodes in ``s`` (statements and expressions)."""

    if isinstance(s, Skip):
        return 1
    if isinstance(s, Assign):
        return 1 + expr_size(s.expr)
    if isinstance(s, Notify):
        return 1 + expr_size(s.expr)
    if isinstance(s, Seq):
        return 1 + sum(stmt_size(sub) for sub in s.stmts)
    if isinstance(s, If):
        return 1 + expr_size(s.cond) + stmt_size(s.then) + stmt_size(s.orelse)
    if isinstance(s, While):
        return 1 + expr_size(s.cond) + stmt_size(s.body)
    raise TypeError(f"not a statement: {s!r}")


# ---------------------------------------------------------------------------
# Typing
# ---------------------------------------------------------------------------


class TypeError_(Exception):
    """A static type error in an IR term."""


def type_of(
    e: Expr,
    functions: FunctionTable | None = None,
    env_sorts: dict[str, Sort] | None = None,
) -> Sort:
    """Infer the sort of ``e`` (``int``, ``bool`` or ``str``).

    ``env_sorts`` gives sorts for arguments and locals; names missing from
    it default to ``int`` (the dominant case in query UDFs).  When
    ``functions`` is provided, call results use the declared result sort and
    argument sorts are checked.
    """

    sorts = env_sorts or {}
    if isinstance(e, IntConst):
        return INT
    if isinstance(e, StrConst):
        return STR
    if isinstance(e, BoolConst):
        return BOOL
    if isinstance(e, (Arg, Var)):
        return sorts.get(e.name, INT)
    if isinstance(e, Call):
        if functions is None or e.func not in functions:
            return INT
        lib = functions[e.func]
        if lib.arg_sorts is not None:
            if len(lib.arg_sorts) != len(e.args):
                raise TypeError_(
                    f"{e.func} expects {len(lib.arg_sorts)} args, got {len(e.args)}"
                )
            for want, actual in zip(lib.arg_sorts, e.args):
                got = type_of(actual, functions, sorts)
                if got != want:
                    raise TypeError_(f"{e.func}: expected {want}, got {got} in {actual}")
        return lib.result_sort
    if isinstance(e, BinOp):
        for side in (e.left, e.right):
            if type_of(side, functions, sorts) != INT:
                raise TypeError_(f"arithmetic on non-int operand in {e}")
        return INT
    if isinstance(e, Cmp):
        lt_ = type_of(e.left, functions, sorts)
        rt = type_of(e.right, functions, sorts)
        if e.op == "=":
            if BOOL in (lt_, rt):
                raise TypeError_(f"equality on booleans in {e}")
        else:
            if lt_ != INT or rt != INT:
                raise TypeError_(f"ordering on non-int operands in {e}")
        return BOOL
    if isinstance(e, Not):
        if type_of(e.operand, functions, sorts) != BOOL:
            raise TypeError_(f"negation of non-bool in {e}")
        return BOOL
    if isinstance(e, BoolOp):
        for side in (e.left, e.right):
            if type_of(side, functions, sorts) != BOOL:
                raise TypeError_(f"connective on non-bool operand in {e}")
        return BOOL
    raise TypeError_(f"not an expression: {e!r}")


def check_program(
    p: Program,
    functions: FunctionTable | None = None,
    env_sorts: dict[str, Sort] | None = None,
) -> None:
    """Type-check every expression in ``p``; raises :class:`TypeError_`.

    Branch and loop conditions and notify payloads must be boolean.
    Assigned variables adopt the sort of their first assignment.
    """

    sorts = dict(env_sorts or {})

    def walk(s: Stmt) -> None:
        if isinstance(s, Assign):
            sorts[s.var] = type_of(s.expr, functions, sorts)
        elif isinstance(s, Notify):
            if type_of(s.expr, functions, sorts) != BOOL:
                raise TypeError_(f"notify of non-bool in {s}")
        elif isinstance(s, Seq):
            for sub in s.stmts:
                walk(sub)
        elif isinstance(s, If):
            if type_of(s.cond, functions, sorts) != BOOL:
                raise TypeError_(f"branch on non-bool in {s}")
            walk(s.then)
            walk(s.orelse)
        elif isinstance(s, While):
            if type_of(s.cond, functions, sorts) != BOOL:
                raise TypeError_(f"loop on non-bool in {s}")
            walk(s.body)

    walk(p.body)
