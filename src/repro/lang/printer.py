"""Pretty printer for the consolidation language.

Produces the concrete syntax accepted by :mod:`repro.lang.parser`, so
``parse_stmt(to_str(s)) == s`` for every statement (round-trip tested).
"""

from __future__ import annotations

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Node,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)

__all__ = ["to_str", "expr_to_str", "stmt_to_str", "program_to_str"]

# Higher binds tighter.  Comparisons are non-associative; arithmetic and
# connectives are left-associative in the parser.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "cmp": 4,
    "+": 5,
    "-": 5,
    "*": 6,
}
_ATOM = 10


def expr_to_str(e: Expr) -> str:
    text, _prec = _expr(e)
    return text


def _paren(child: Expr, parent_prec: int, right_side: bool = False) -> str:
    text, prec = _expr(child)
    if prec < parent_prec or (prec == parent_prec and right_side):
        return f"({text})"
    return text


def _expr(e: Expr) -> tuple[str, int]:
    if isinstance(e, IntConst):
        text = str(e.value)
        return (f"({text})", _ATOM) if e.value < 0 else (text, _ATOM)
    if isinstance(e, StrConst):
        escaped = e.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"', _ATOM
    if isinstance(e, BoolConst):
        return ("true" if e.value else "false"), _ATOM
    if isinstance(e, Arg):
        return f"@{e.name}", _ATOM
    if isinstance(e, Var):
        return e.name, _ATOM
    if isinstance(e, Call):
        args = ", ".join(expr_to_str(a) for a in e.args)
        return f"{e.func}({args})", _ATOM
    if isinstance(e, BinOp):
        p = _PRECEDENCE[e.op]
        return f"{_paren(e.left, p)} {e.op} {_paren(e.right, p, right_side=True)}", p
    if isinstance(e, Cmp):
        p = _PRECEDENCE["cmp"]
        op = "==" if e.op == "=" else e.op
        return f"{_paren(e.left, p + 1)} {op} {_paren(e.right, p + 1)}", p
    if isinstance(e, Not):
        p = _PRECEDENCE["not"]
        return f"!{_paren(e.operand, p + 1)}", p
    if isinstance(e, BoolOp):
        p = _PRECEDENCE[e.op]
        return f"{_paren(e.left, p)} {e.op} {_paren(e.right, p, right_side=True)}", p
    raise TypeError(f"not an expression: {e!r}")


def stmt_to_str(s: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(s, Skip):
        return f"{pad}skip;"
    if isinstance(s, Assign):
        return f"{pad}{s.var} := {expr_to_str(s.expr)};"
    if isinstance(s, Notify):
        return f"{pad}notify {s.pid} {expr_to_str(s.expr)};"
    if isinstance(s, Seq):
        return "\n".join(stmt_to_str(sub, indent) for sub in s.stmts)
    if isinstance(s, If):
        lines = [f"{pad}if ({expr_to_str(s.cond)}) {{"]
        lines.append(stmt_to_str(s.then, indent + 1))
        lines.append(f"{pad}}} else {{")
        lines.append(stmt_to_str(s.orelse, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(s, While):
        lines = [f"{pad}while ({expr_to_str(s.cond)}) {{"]
        lines.append(stmt_to_str(s.body, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"not a statement: {s!r}")


def program_to_str(p: Program) -> str:
    params = ", ".join(p.params)
    header = f"program {p.pid}({params}) {{"
    return "\n".join([header, stmt_to_str(p.body, 1), "}"])


def to_str(node: Node) -> str:
    """Render any AST node to concrete syntax."""

    if isinstance(node, Program):
        return program_to_str(node)
    if isinstance(node, Stmt):
        return stmt_to_str(node)
    return expr_to_str(node)  # type: ignore[arg-type]
