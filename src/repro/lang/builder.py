"""Smart constructors and a small embedded DSL for building IR programs.

The core syntax (Figure 1) has only ``< <= =`` among comparisons; the
builders below provide the full comparison vocabulary by normalising::

    gt(a, b)  ->  b < a
    ge(a, b)  ->  b <= a
    ne(a, b)  ->  !(a == b)

plus lifting of Python literals, so query generators can be written
concisely: ``lt(call("price", arg("row")), 200)``.
"""

from __future__ import annotations

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    FALSE,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    SKIP,
    Skip,
    Stmt,
    StrConst,
    TRUE,
    Var,
    While,
    seq,
)

__all__ = [
    "lift",
    "arg",
    "var",
    "call",
    "add",
    "sub",
    "mul",
    "lt",
    "le",
    "gt",
    "ge",
    "eq",
    "ne",
    "not_",
    "and_",
    "or_",
    "conj",
    "disj",
    "assign",
    "notify",
    "if_",
    "while_",
    "block",
    "program",
    "ite_notify",
]

ExprLike = object  # Expr | int | bool | str


def lift(value: ExprLike) -> Expr:
    """Lift a Python literal (or pass through an :class:`Expr`)."""

    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return StrConst(value)
    raise TypeError(f"cannot lift {value!r} into an expression")


def arg(name: str) -> Arg:
    return Arg(name)


def var(name: str) -> Var:
    return Var(name)


def call(func: str, *args: ExprLike) -> Call:
    return Call(func, tuple(lift(a) for a in args))


def add(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("+", lift(a), lift(b))


def sub(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("-", lift(a), lift(b))


def mul(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("*", lift(a), lift(b))


def lt(a: ExprLike, b: ExprLike) -> Cmp:
    return Cmp("<", lift(a), lift(b))


def le(a: ExprLike, b: ExprLike) -> Cmp:
    return Cmp("<=", lift(a), lift(b))


def gt(a: ExprLike, b: ExprLike) -> Cmp:
    """``a > b`` normalised to ``b < a``."""

    return Cmp("<", lift(b), lift(a))


def ge(a: ExprLike, b: ExprLike) -> Cmp:
    """``a >= b`` normalised to ``b <= a``."""

    return Cmp("<=", lift(b), lift(a))


def eq(a: ExprLike, b: ExprLike) -> Cmp:
    return Cmp("=", lift(a), lift(b))


def ne(a: ExprLike, b: ExprLike) -> Not:
    """``a != b`` normalised to ``!(a == b)``."""

    return Not(eq(a, b))


def not_(a: ExprLike) -> Expr:
    return Not(lift(a))


def and_(a: ExprLike, b: ExprLike) -> BoolOp:
    return BoolOp("and", lift(a), lift(b))


def or_(a: ExprLike, b: ExprLike) -> BoolOp:
    return BoolOp("or", lift(a), lift(b))


def conj(*parts: ExprLike) -> Expr:
    """Left-associated conjunction of any number of operands (``true`` if none)."""

    exprs = [lift(p) for p in parts]
    if not exprs:
        return TRUE
    result = exprs[0]
    for e in exprs[1:]:
        result = BoolOp("and", result, e)
    return result


def disj(*parts: ExprLike) -> Expr:
    """Left-associated disjunction of any number of operands (``false`` if none)."""

    exprs = [lift(p) for p in parts]
    if not exprs:
        return FALSE
    result = exprs[0]
    for e in exprs[1:]:
        result = BoolOp("or", result, e)
    return result


def assign(name: str, value: ExprLike) -> Assign:
    return Assign(name, lift(value))


def notify(pid: str, value: ExprLike) -> Notify:
    return Notify(pid, lift(value))


def if_(cond: ExprLike, then: Stmt, orelse: Stmt = SKIP) -> If:
    return If(lift(cond), then, orelse)


def while_(cond: ExprLike, body: Stmt) -> While:
    return While(lift(cond), body)


def block(*stmts: Stmt) -> Stmt:
    return seq(*stmts)


def program(pid: str, params: tuple[str, ...] | list[str], *body: Stmt) -> Program:
    return Program(pid, tuple(params), seq(*body))


def ite_notify(pid: str, cond: ExprLike) -> If:
    """The canonical UDF epilogue: ``if cond then notify true else notify false``.

    Compiling a filter's final ``return e`` this way (rather than
    ``notify e``) exposes the test predicate to cross-embedding (If 3).
    """

    return If(lift(cond), Notify(pid, TRUE), Notify(pid, FALSE))
