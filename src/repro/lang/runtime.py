"""Runtime support for the compiled execution backend.

:mod:`repro.lang.compile` turns a Figure-1 program into Python source and
``exec``s it into a closure.  The emitted code cannot carry arbitrary
objects in its text, so everything it needs at run time — library-call
wrappers that preserve the interpreter's error contract, memoising call
wrappers, and the translation of a Python ``UnboundLocalError`` back into
the language-level "unbound variable" error — is bound into the closure's
global namespace from this module.

Keeping these helpers separate from the compiler also keeps the import
graph acyclic: the compiler imports the runtime, never the reverse.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .interp import InterpError

__all__ = ["make_lib_call", "make_memo_call", "unbound_error"]


def make_lib_call(name: str, fn: Callable[..., object]) -> Callable[..., object]:
    """Wrap a library function so failures surface as :class:`InterpError`.

    Mirrors ``Interpreter._eval_call``: only the call itself is guarded —
    argument evaluation errors propagate with their own diagnoses.
    """

    def _call(*vals: object) -> object:
        try:
            return fn(*vals)
        except Exception as exc:  # noqa: BLE001 - surface as InterpError
            raise InterpError(f"library call {name} failed: {exc}") from exc

    return _call


def make_memo_call(name: str, fn: Callable[..., object]) -> Callable[..., object]:
    """A library-call wrapper memoising results within one run.

    The cache dict is created afresh by the compiled prologue on every run,
    matching the per-run scope of ``Interpreter``'s ``memoize_calls``.
    Cost accounting is unaffected: the compiler folds the call's declared
    cost in as a constant whether or not the value was cached.
    """

    def _call(cache: dict, *vals: object) -> object:
        key = (name, vals)
        if key in cache:
            return cache[key]
        try:
            result = fn(*vals)
        except Exception as exc:  # noqa: BLE001 - surface as InterpError
            raise InterpError(f"library call {name} failed: {exc}") from exc
        cache[key] = result
        return result

    return _call


def unbound_error(exc: BaseException, source_names: Mapping[str, str]) -> InterpError:
    """Translate a ``NameError``/``UnboundLocalError`` from compiled code
    into the interpreter's unbound-variable error, mapping the mangled slot
    name back to the source-program name."""

    slot = getattr(exc, "name", None)
    name = source_names.get(slot, slot)
    return InterpError(f"unbound variable {name!r}")
