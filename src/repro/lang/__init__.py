"""The consolidation language: syntax, cost semantics, and tooling.

This package implements Figure 1 (syntax) and Figure 2 (cost-annotated
big-step semantics) of the paper, plus the supporting cast every later
stage needs: a pretty printer, a parser for the same concrete syntax,
builders, traversal utilities and a typed library-function table.
"""

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    FALSE,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    SKIP,
    Seq,
    Skip,
    Stmt,
    StrConst,
    TRUE,
    Var,
    While,
    seq,
    seq_head,
    seq_tail,
    statements,
)
from .builder import (
    add,
    and_,
    arg,
    assign,
    block,
    call,
    conj,
    disj,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lift,
    lt,
    mul,
    ne,
    not_,
    notify,
    or_,
    program,
    sub,
    var,
    while_,
)
from .compile import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledProgram,
    CompileError,
    compile_cached,
    compile_program,
    make_runner,
)
from .cost import DEFAULT_COST_MODEL, CostModel
from .functions import BOOL, INT, STR, FunctionTable, LibraryFunction
from .interp import (
    Interpreter,
    InterpError,
    NotificationClash,
    RunResult,
    StepLimitExceeded,
    combine_sequential,
    run_program,
    run_sequentially,
)
from .parser import ParseError, parse_expr, parse_program, parse_stmt
from .vectorize import (
    BatchResult,
    VectorizedProgram,
    VectorizeError,
    clear_vectorize_cache,
    columns_from_records,
    vectorize_cached,
    vectorize_program,
)
from .printer import expr_to_str, program_to_str, stmt_to_str, to_str
from .visitors import (
    assigned_vars,
    check_program,
    expr_args,
    expr_calls,
    expr_size,
    expr_vars,
    map_exprs,
    notified_pids,
    rename_locals,
    rename_vars,
    stmt_args,
    stmt_calls,
    stmt_exprs,
    stmt_size,
    stmt_vars,
    subexpressions,
    substitute,
    type_of,
)
