"""The abstract cost model of the paper's operational semantics (Figure 2).

The semantics is parameterised by an abstract ``cost`` function assigning a
price to each kind of operation.  :class:`CostModel` realises that function
as a plain dataclass; the defaults make memory traffic and branching cheap
relative to library calls, which matches the paper's scenario where UDFs
spend their time in calls such as ``getTempOfMonth`` or ``toLower``.

Library-call costs come from the :class:`~repro.lang.functions.FunctionTable`
rather than from the model, since they vary per function (the ``m`` of
``eval(f(...)) = (c, m)``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Costs for each operation kind in Figure 2's semantics."""

    int_const: int = 0
    str_const: int = 0
    bool_const: int = 0
    var: int = 1
    arg: int = 1
    arith: int = 1
    cmp: int = 1
    neg: int = 1
    logic: int = 1
    assign: int = 1
    notify: int = 1
    branch: int = 2

    def arith_cost(self, op: str) -> int:
        return self.arith

    def cmp_cost(self, op: str) -> int:
        return self.cmp

    def logic_cost(self, op: str) -> int:
        return self.logic


DEFAULT_COST_MODEL = CostModel()
