"""The abstract cost model of the paper's operational semantics (Figure 2).

The semantics is parameterised by an abstract ``cost`` function assigning a
price to each kind of operation.  :class:`CostModel` realises that function
as a plain dataclass; the defaults make memory traffic and branching cheap
relative to library calls, which matches the paper's scenario where UDFs
spend their time in calls such as ``getTempOfMonth`` or ``toLower``.

Library-call costs come from the :class:`~repro.lang.functions.FunctionTable`
rather than from the model, since they vary per function (the ``m`` of
``eval(f(...)) = (c, m)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["CostModel", "DEFAULT_COST_MODEL", "cost_model_from_weights"]


@dataclass(frozen=True)
class CostModel:
    """Costs for each operation kind in Figure 2's semantics."""

    int_const: int = 0
    str_const: int = 0
    bool_const: int = 0
    var: int = 1
    arg: int = 1
    arith: int = 1
    cmp: int = 1
    neg: int = 1
    logic: int = 1
    assign: int = 1
    notify: int = 1
    branch: int = 2

    def arith_cost(self, op: str) -> int:
        return self.arith

    def cmp_cost(self, op: str) -> int:
        return self.cmp

    def logic_cost(self, op: str) -> int:
        return self.logic


DEFAULT_COST_MODEL = CostModel()


def cost_model_from_weights(
    weights: Mapping[str, float], reference: str = "var"
) -> CostModel:
    """Fold calibrated seconds-per-unit weights back into a :class:`CostModel`.

    This is the seam the profiling layer plugs into: a
    :class:`repro.profiling.CalibratedCostModel` carries float weights in
    wall seconds; the Figure-2 semantics wants small integers.  The
    ``reference`` kind (default ``var``) is normalized to cost 1 and every
    other kind scaled relative to it, rounded, and floored at 0 — the same
    shape as the defaults above, just measured instead of assumed.

    Unknown or non-positive reference weights fall back to the smallest
    positive weight present, and an all-zero weight vector degrades to
    :data:`DEFAULT_COST_MODEL` (never a zero-cost model, which would make
    the consolidation cost bound vacuous).
    """

    base = float(weights.get(reference, 0.0))
    if base <= 0.0:
        positive = [w for w in weights.values() if w > 0.0]
        if not positive:
            return DEFAULT_COST_MODEL
        base = min(positive)

    def unit(kind: str) -> int:
        return max(0, round(float(weights.get(kind, 0.0)) / base))

    return CostModel(
        int_const=unit("const"),
        str_const=unit("const"),
        bool_const=unit("const"),
        var=unit("var"),
        arg=unit("arg"),
        arith=unit("arith"),
        cmp=unit("cmp"),
        neg=unit("neg"),
        logic=unit("logic"),
        assign=unit("assign"),
        notify=unit("notify"),
        branch=unit("branch"),
    )
