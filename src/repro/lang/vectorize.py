"""Columnar (vectorized) execution backend for Figure-1 programs.

The compiled backend (:mod:`repro.lang.compile`) removed the interpreter's
per-*node* overhead but still runs one closure call per *record*: argument
dict, env materialisation, ``RunResult`` allocation and a cascade of
per-operand ``isinstance`` checks, times 4000 rows times 50 consolidated
queries.  This module removes the per-record overhead too, by executing a
whole **batch** of records through the program at once:

* batches are struct-of-arrays — plain Python lists as columns, one per
  argument/local, no numpy dependency (mirroring the dependency-free
  telemetry layer);
* every statement's expression is fused into one **column kernel**: a
  generated list comprehension evaluated once per batch, so per-element
  work is a single bytecode loop instead of a closure call.  Dynamic sort
  checks are *hoisted* to one ``all()`` scan per column per kernel where
  the operand is a bare argument/local, and inlined only around nested
  call results;
* ``if`` runs both arms over **selection vectors**: the condition column
  partitions the active rows, each arm executes on its compacted
  sub-batch (gather), and assignments/notifications scatter back — effect
  masking, so an arm's ``notify`` fires only for rows that took it;
* ``while`` executes as a shrinking live-set iteration: every iteration
  re-tests the condition column over the rows still live and charges the
  Figure-2 test cost to each of them.  The per-row fuel ledger burns the
  same per-iteration budget as the compiled backend's loop back-edges, so
  a record that would exceed ``max_steps`` degrades instead of looping on;
* costs are exact: each frame accumulates the statically folded pending
  cost of its basic block and flushes it into a per-record cost array at
  the same boundaries the compiled emitter flushes (branch entry, loop
  tests, notify latency capture, frame exit).  ``SoundnessReport`` and the
  cost-attribution trajectory metrics therefore compare like with like.

The safety story is a **fallback ladder**, not a verifier: any dynamic
condition the kernels cannot reproduce bit-for-bit (a sort-check failure,
a library call raising, a notification clash, a possibly-unassigned local,
fuel exhaustion, a kernel crash) abandons the batch *before any effect is
committed* and re-runs every record through the existing compiled closure
— which reproduces the interpreter's exact result or error, in record
order.  Programs the PR-7 shape classifier marks ``unbounded`` never get
a plan and take the per-row road from the start.  Degradation is recorded
(``BatchResult.fallback`` + ``vectorized_fallback*`` telemetry), never an
error.

The three-way differential oracle (:mod:`repro.testing.oracles`) holds
this backend to *identical* notifications, costs and latencies against the
interpreter and the compiled backend on every fuzzed batch.
"""

from __future__ import annotations

import weakref
from typing import Callable, Mapping, Optional, Sequence

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from .compile import DEFAULT_MAX_STEPS, _static_var_sorts, make_runner
from .cost import DEFAULT_COST_MODEL, CostModel
from .functions import BOOL, INT, STR, FunctionTable
from .interp import RunResult
from .visitors import stmt_size

__all__ = [
    "VECTORIZED_BACKEND",
    "VectorizeError",
    "BatchResult",
    "VectorizedProgram",
    "vectorize_program",
    "vectorize_cached",
    "clear_vectorize_cache",
    "columns_from_records",
    "FAULT_HOOK",
]

# Fault-injection seam (see repro.testing.faults).  Sites:
#   ("vectorize.translate", program) — may raise to force the per-row
#                                      compiled fallback (recorded, never
#                                      an error);
#   ("vectorize.finish", program)    — may return a VectorizedProgram
#                                      transformer, modelling a mis-masked
#                                      plan (the differential oracle must
#                                      catch the corrupted output).
# None — the production value — costs one attribute read per site.
FAULT_HOOK = None

VECTORIZED_BACKEND = "vectorized"

#: Sentinel for "this row has not assigned this local on its path yet".
_UNDEF = object()


class VectorizeError(Exception):
    """The program cannot be translated into column kernels."""


class _Degrade(Exception):
    """Internal: abandon the batch and re-run it per row (always safe)."""


class _KernelCheck(Exception):
    """Internal: a hoisted/inline sort check failed inside a kernel."""


# -- kernel runtime helpers (bound into every kernel namespace) -------------


def _ci(v):
    """Arithmetic operand: int but not bool (the interpreter's check)."""

    if type(v) is int:
        return v
    raise _KernelCheck


def _co(v):
    """Ordering operand: int, bools admitted (the interpreter's check)."""

    if isinstance(v, int):
        return v
    raise _KernelCheck


def _cb(v):
    """Boolean context: exactly bool."""

    if isinstance(v, bool):
        return v
    raise _KernelCheck


def _all_int(col):
    return all(type(v) is int for v in col)


def _all_ord(col):
    return all(isinstance(v, int) for v in col)


def _all_bool(col):
    return all(isinstance(v, bool) for v in col)


_HOIST_FNS = {"int": _all_int, "ord": _all_ord, "bool": _all_bool}


# -- kernels ----------------------------------------------------------------


class _Kernel:
    """One fused column expression: ``fn(n, *gathered_columns) -> list``."""

    __slots__ = ("fn", "srcs", "cost")

    def __init__(self, fn: Callable, srcs: tuple[str, ...], cost: int) -> None:
        self.fn = fn
        self.srcs = srcs
        self.cost = cost


class _KernelBuilder:
    """Translate one expression into a fused comprehension kernel.

    The element translation mirrors :class:`repro.lang.compile._Emitter`'s
    expression walk, with two twists: dynamic checks on bare argument /
    local operands are hoisted to whole-column prechecks (one C-speed
    ``all()`` per column per kernel), and the non-short-circuiting
    connectives compile to ``&`` / ``|`` on checked bools, which evaluate
    both operands exactly as Figure 2 demands.  Any check failure raises
    :class:`_KernelCheck`, which the executor turns into a batch degrade —
    the per-row fallback then reproduces the interpreter's exact error.
    """

    def __init__(
        self, functions: FunctionTable, cost_model: CostModel, var_sorts: dict
    ) -> None:
        self.functions = functions
        self.cm = cost_model
        self.var_sorts = var_sorts
        self.srcs: dict[str, str] = {}  # source name -> element itervar
        self.checks: dict[tuple[str, str], None] = {}  # (name, kind), ordered
        self.local_vars: dict[str, tuple[str, Optional[str]]] = {}
        self.callers: dict[str, tuple[str, int]] = {}
        self.bindings: dict[str, object] = {
            "_ci": _ci,
            "_co": _co,
            "_cb": _cb,
            "_KernelCheck": _KernelCheck,
        }

    def _src(self, name: str) -> str:
        itervar = self.srcs.get(name)
        if itervar is None:
            itervar = f"_x{len(self.srcs)}"
            self.srcs[name] = itervar
        return itervar

    def _caller(self, func: str) -> tuple[str, int]:
        entry = self.callers.get(func)
        if entry is None:
            try:
                lib = self.functions[func]
            except KeyError:
                raise VectorizeError(f"unknown library function {func!r}") from None
            name = f"_f{len(self.callers)}"
            self.bindings[name] = lib.fn
            entry = (name, lib.cost)
            self.callers[func] = entry
        return entry

    def _checked(self, py: str, node: Expr, sort, kind: str) -> str:
        """Guard one operand for ``kind`` ∈ {int, ord, bool} contexts."""

        if kind == "int" and sort == INT:
            return py
        if kind == "ord" and sort in (INT, BOOL):
            return py
        if kind == "bool" and sort == BOOL:
            return py
        if isinstance(node, Arg) or (
            isinstance(node, Var) and node.name not in self.local_vars
        ):
            # Bare column read: hoist to one whole-column precheck.  A
            # fused-run local is a scalar, not a column — wrap it instead.
            self.checks[(node.name, kind)] = None
            return py
        wrapper = {"int": "_ci", "ord": "_co", "bool": "_cb"}[kind]
        return f"{wrapper}({py})"

    def expr(self, e: Expr) -> tuple[str, int, Optional[str]]:
        """Element translation: ``(python_elem, static_cost, sort)``."""

        cm = self.cm
        if isinstance(e, IntConst):
            return repr(e.value), cm.int_const, INT
        if isinstance(e, StrConst):
            return repr(e.value), cm.str_const, STR
        if isinstance(e, BoolConst):
            return ("True" if e.value else "False"), cm.bool_const, BOOL
        if isinstance(e, Arg):
            return self._src(e.name), cm.arg, None
        if isinstance(e, Var):
            local = self.local_vars.get(e.name)
            if local is not None:
                return local[0], cm.var, local[1]
            return self._src(e.name), cm.var, self.var_sorts.get(e.name)
        if isinstance(e, Call):
            parts: list[str] = []
            cost = 0
            for a in e.args:
                py, c, _ = self.expr(a)
                parts.append(py)
                cost += c
            name, call_cost = self._caller(e.func)
            return f"{name}({', '.join(parts)})", cost + call_cost, None
        if isinstance(e, BinOp):
            lpy, lc, ls = self.expr(e.left)
            rpy, rc, rs = self.expr(e.right)
            lpy = self._checked(lpy, e.left, ls, "int")
            rpy = self._checked(rpy, e.right, rs, "int")
            return f"({lpy} {e.op} {rpy})", lc + rc + cm.arith_cost(e.op), INT
        if isinstance(e, Cmp):
            lpy, lc, ls = self.expr(e.left)
            rpy, rc, rs = self.expr(e.right)
            cost = lc + rc + cm.cmp_cost(e.op)
            if e.op == "=":
                # Equality accepts any values, and Python ``==`` over the
                # value domain always yields a genuine bool — so, unlike
                # the compiled emitter's static sort, the *runtime* sort
                # is BOOL and downstream contexts need no re-check.
                return f"({lpy} == {rpy})", cost, BOOL
            lpy = self._checked(lpy, e.left, ls, "ord")
            rpy = self._checked(rpy, e.right, rs, "ord")
            return f"({lpy} {e.op} {rpy})", cost, BOOL
        if isinstance(e, Not):
            opy, oc, osort = self.expr(e.operand)
            opy = self._checked(opy, e.operand, osort, "bool")
            return f"(not {opy})", oc + cm.neg, BOOL
        if isinstance(e, BoolOp):
            # Figure 2 evaluates both operands (no short-circuiting);
            # ``&`` / ``|`` on checked bools do exactly that.
            lpy, lc, ls = self.expr(e.left)
            rpy, rc, rs = self.expr(e.right)
            lpy = self._checked(lpy, e.left, ls, "bool")
            rpy = self._checked(rpy, e.right, rs, "bool")
            symbol = "&" if e.op == "and" else "|"
            return f"({lpy} {symbol} {rpy})", lc + rc + cm.logic_cost(e.op), BOOL
        raise VectorizeError(f"unknown expression node {e!r}")

    def finish(self, elem: str, cost: int) -> _Kernel:
        """Assemble and exec the kernel source around element ``elem``."""

        names = list(self.srcs)
        itervars = [self.srcs[name] for name in names]
        gathered = [f"_g{i}" for i in range(len(names))]
        header = ", ".join(["_n", *gathered])
        lines = [f"def _kern({header}):", "    if not _n:", "        return []"]
        index = {name: i for i, name in enumerate(names)}
        for (name, kind) in self.checks:
            fn = f"_all_{kind}"
            self.bindings[fn] = _HOIST_FNS[kind]
            lines.append(f"    if not {fn}(_g{index[name]}):")
            lines.append("        raise _KernelCheck")
        if not names:
            # Constant element (library calls are deterministic per the
            # paper's assumptions): evaluate once, replicate.
            lines.append(f"    _v = {elem}")
            lines.append("    return [_v] * _n")
        elif len(names) == 1:
            lines.append(f"    return [{elem} for {itervars[0]} in _g0]")
        else:
            tuple_vars = ", ".join(itervars)
            zipped = ", ".join(gathered)
            lines.append(f"    return [{elem} for ({tuple_vars}) in zip({zipped})]")
        source = "\n".join(lines) + "\n"
        namespace = dict(self.bindings)
        exec(compile(source, "<vectorized kernel>", "exec"), namespace)  # noqa: S102
        return _Kernel(namespace["_kern"], tuple(names), cost)


# -- plan nodes -------------------------------------------------------------


class _OpAssign:
    __slots__ = ("kern", "var", "cost")

    def __init__(self, kern: _Kernel, var: str, cost: int) -> None:
        self.kern = kern
        self.var = var
        self.cost = cost  # expr cost + cm.assign


class _OpNotify:
    __slots__ = ("kern", "pid", "cost")

    def __init__(self, kern: _Kernel, pid: str, cost: int) -> None:
        self.kern = kern
        self.pid = pid
        self.cost = cost  # expr cost + cm.notify


class _OpIf:
    __slots__ = ("kern", "entry_cost", "then_ops", "else_ops")

    def __init__(self, kern: _Kernel, entry_cost: int, then_ops, else_ops) -> None:
        self.kern = kern
        self.entry_cost = entry_cost  # cond cost + cm.branch
        self.then_ops = then_ops
        self.else_ops = else_ops


class _OpWhile:
    __slots__ = ("kern", "test_cost", "body_ops", "fuel")

    def __init__(self, kern: _Kernel, test_cost: int, body_ops, fuel: int) -> None:
        self.kern = kern
        self.test_cost = test_cost  # cond cost + cm.branch, per test
        self.body_ops = body_ops
        self.fuel = fuel  # per-iteration budget burn (compiled back-edge)


class _OpStraight:
    """A fused run of consecutive assignments and notifies.

    One kernel evaluates the whole run per element, keeping intermediate
    locals in Python variables; only notify values and the assigned names
    still *live* after the run come back as columns (``notifies`` first,
    then ``out_vars``).  Costs are static over the run: ``flush_prefix``
    is the accumulated cost at the last notify (flushed there, exactly as
    the unfused ops would), and each notify carries its ``lag`` — how far
    its own prefix sits before that flush point.

    ``tail`` marks the final op of a top-level plan: nothing after it can
    charge row-varying cost, so a wholesale notify commit may defer its
    ncost column to ``final costs - (lag + total - flush_prefix)``.
    """

    __slots__ = ("kern", "out_vars", "notifies", "flush_prefix", "total", "tail")

    def __init__(
        self,
        kern: _Kernel,
        out_vars: tuple[str, ...],
        notifies: tuple[tuple[str, int], ...],  # (pid, lag)
        flush_prefix: int,
        total: int,
    ) -> None:
        self.kern = kern
        self.out_vars = out_vars
        self.notifies = notifies
        self.flush_prefix = flush_prefix
        self.total = total
        self.tail = False


def _build_kernel(
    e: Expr,
    functions: FunctionTable,
    cost_model: CostModel,
    var_sorts: dict,
    require_bool: bool,
) -> tuple[_Kernel, int]:
    builder = _KernelBuilder(functions, cost_model, var_sorts)
    elem, cost, sort = builder.expr(e)
    if require_bool:
        elem = builder._checked(elem, e, sort, "bool")
    return builder.finish(elem, cost), cost


def _expr_reads(e: Expr, out: set) -> None:
    if isinstance(e, Var):
        out.add(e.name)
    elif isinstance(e, Call):
        for a in e.args:
            _expr_reads(a, out)
    elif isinstance(e, (BinOp, Cmp, BoolOp)):
        _expr_reads(e.left, out)
        _expr_reads(e.right, out)
    elif isinstance(e, Not):
        _expr_reads(e.operand, out)


def _stmt_reads(s: Stmt, out: set) -> None:
    if isinstance(s, (Assign, Notify)):
        _expr_reads(s.expr, out)
    elif isinstance(s, Seq):
        for sub in s.stmts:
            _stmt_reads(sub, out)
    elif isinstance(s, If):
        _expr_reads(s.cond, out)
        _stmt_reads(s.then, out)
        _stmt_reads(s.orelse, out)
    elif isinstance(s, While):
        _expr_reads(s.cond, out)
        _stmt_reads(s.body, out)


def _flatten(s: Stmt, out: list) -> None:
    if isinstance(s, Seq):
        for sub in s.stmts:
            _flatten(sub, out)
    elif not isinstance(s, Skip):
        out.append(s)


def _fuse_straight(
    run: list,
    functions: FunctionTable,
    cost_model: CostModel,
    var_sorts: dict,
    live_after: set,
):
    """Fuse one run of Assign/Notify statements into a single kernel.

    Returns ``None`` when the run must stay unfused (a pid notified twice
    in the run: the per-row path owns the clash error).  Dead stores are
    still *evaluated* — their operand checks must fire exactly where the
    interpreter would error — they just never materialise a column.
    """

    cm = cost_model
    pids = [st.pid for st in run if isinstance(st, Notify)]
    if len(pids) != len(set(pids)):
        return None
    b = _KernelBuilder(functions, cm, var_sorts)
    body: list[str] = []
    assigned: dict[str, str] = {}  # program var -> kernel local
    prefix_at: list[tuple[str, int]] = []  # (pid, cost prefix at notify)
    outs = 0
    total = 0
    for st in run:
        py, cost, sort = b.expr(st.expr)
        if isinstance(st, Assign):
            # Consolidated programs carry renamed vars like "q0&q1.q0.x";
            # mangle by position, never by name, to stay a valid identifier.
            local = f"_v{len(body)}"
            body.append(f"{local} = {py}")
            b.local_vars[st.var] = (local, sort)
            assigned[st.var] = local
            total += cost + cm.assign
        else:
            py = b._checked(py, st.expr, sort, "bool")
            body.append(f"_a{outs}({py})")
            outs += 1
            total += cost + cm.notify
            prefix_at.append((st.pid, total))
    out_vars = tuple(name for name in assigned if name in live_after)
    for name in out_vars:
        body.append(f"_a{outs}({assigned[name]})")
        outs += 1

    names = list(b.srcs)
    itervars = [b.srcs[name] for name in names]
    gathered = [f"_g{i}" for i in range(len(names))]
    header = ", ".join(["_n", *gathered])
    empty = ", ".join(["[]"] * outs)
    lines = [
        f"def _kern({header}):",
        "    if not _n:",
        f"        return ({empty}{',' if outs == 1 else ''})",
    ]
    index = {name: i for i, name in enumerate(names)}
    for (name, kind) in b.checks:
        fn = f"_all_{kind}"
        b.bindings[fn] = _HOIST_FNS[kind]
        lines.append(f"    if not {fn}(_g{index[name]}):")
        lines.append("        raise _KernelCheck")
    for i in range(outs):
        lines.append(f"    _o{i} = []")
        lines.append(f"    _a{i} = _o{i}.append")
    if not names:
        lines.append("    for _ in range(_n):")
    elif len(names) == 1:
        lines.append(f"    for {itervars[0]} in _g0:")
    else:
        tuple_vars = ", ".join(itervars)
        zipped = ", ".join(gathered)
        lines.append(f"    for ({tuple_vars}) in zip({zipped}):")
    for stmt_line in body:
        lines.append(f"        {stmt_line}")
    rets = ", ".join(f"_o{i}" for i in range(outs))
    lines.append(f"    return ({rets}{',' if outs == 1 else ''})")
    source = "\n".join(lines) + "\n"
    namespace = dict(b.bindings)
    exec(compile(source, "<vectorized kernel>", "exec"), namespace)  # noqa: S102
    kern = _Kernel(namespace["_kern"], tuple(names), total)
    flush_prefix = prefix_at[-1][1] if prefix_at else 0
    notifies = tuple((pid, flush_prefix - prefix) for pid, prefix in prefix_at)
    return _OpStraight(kern, out_vars, notifies, flush_prefix, total)


def _build_one(
    s: Stmt,
    functions: FunctionTable,
    cost_model: CostModel,
    var_sorts: dict,
    live_after: set,
):
    cm = cost_model
    if isinstance(s, Assign):
        kern, cost = _build_kernel(s.expr, functions, cm, var_sorts, False)
        return _OpAssign(kern, s.var, cost + cm.assign)
    if isinstance(s, Notify):
        kern, cost = _build_kernel(s.expr, functions, cm, var_sorts, True)
        return _OpNotify(kern, s.pid, cost + cm.notify)
    if isinstance(s, If):
        kern, cost = _build_kernel(s.cond, functions, cm, var_sorts, True)
        return _OpIf(
            kern,
            cost + cm.branch,
            _build_ops(s.then, functions, cm, var_sorts, live_after),
            _build_ops(s.orelse, functions, cm, var_sorts, live_after),
        )
    if isinstance(s, While):
        kern, cost = _build_kernel(s.cond, functions, cm, var_sorts, True)
        # Anything the loop reads (condition or body) may be consumed on
        # the next iteration; body-local dead stores still fuse away.
        body_live = set(live_after)
        _expr_reads(s.cond, body_live)
        _stmt_reads(s.body, body_live)
        return _OpWhile(
            kern,
            cost + cm.branch,
            _build_ops(s.body, functions, cm, var_sorts, body_live),
            stmt_size(s),
        )
    raise VectorizeError(f"unknown statement node {s!r}")


def _build_ops(
    s: Stmt,
    functions: FunctionTable,
    cost_model: CostModel,
    var_sorts: dict,
    live_after: set = frozenset(),
) -> list:
    """Translate a statement into plan ops, fusing straight-line runs.

    Liveness flows backward: a statement's ops are built knowing exactly
    which names any *later* op (or the caller's continuation) still
    reads, so fused runs only materialise columns someone will consume.
    The analysis never subtracts on assignment — over-approximating
    liveness only costs an extra column, never correctness.
    """

    stmts: list = []
    _flatten(s, stmts)
    ops_rev: list = []
    live = set(live_after)
    i = len(stmts) - 1
    while i >= 0:
        st = stmts[i]
        if isinstance(st, (Assign, Notify)):
            j = i
            while j > 0 and isinstance(stmts[j - 1], (Assign, Notify)):
                j -= 1
            run = stmts[j : i + 1]
            fused = _fuse_straight(run, functions, cost_model, var_sorts, live) if len(run) > 1 else None
            if fused is not None:
                ops_rev.append(fused)
            else:
                for sub in reversed(run):
                    ops_rev.append(
                        _build_one(sub, functions, cost_model, var_sorts, live)
                    )
            for sub in run:
                _stmt_reads(sub, live)
            i = j - 1
        else:
            ops_rev.append(_build_one(st, functions, cost_model, var_sorts, live))
            _stmt_reads(st, live)
            i -= 1
    ops_rev.reverse()
    return ops_rev


# -- batch execution --------------------------------------------------------


class _Frame:
    """One selection of the batch with its compacted column environment.

    ``rows`` are absolute record indices (for cost/notify scatter);
    ``positions`` index into the parent frame (for env gather/scatter).
    Columns gather lazily from the parent and cache; assignments replace a
    whole frame-local column and are scattered back when the frame ends.
    ``undef`` flags columns that may still hold :data:`_UNDEF` for some
    row — reading one degrades the batch, exactly where the interpreter
    would raise an unbound-variable error for *some* active row.
    """

    __slots__ = ("rows", "env", "parent", "positions", "dirty", "undef", "pending")

    def __init__(self, rows, env, parent=None, positions=None) -> None:
        self.rows = rows
        self.env = env
        self.parent = parent
        self.positions = positions
        self.dirty: set[str] = set()
        self.undef: set[str] = set()
        self.pending = 0

    def _fetch(self, name: str) -> tuple[list, bool]:
        """Materialise ``name`` in this frame (no definedness scan)."""

        col = self.env.get(name)
        if col is not None:
            return col, name in self.undef
        if self.parent is None:
            raise _Degrade(f"unbound name {name!r}")
        pcol, flagged = self.parent._fetch(name)
        col = [pcol[j] for j in self.positions]
        self.env[name] = col
        if flagged:
            self.undef.add(name)
        return col, flagged

    def col(self, name: str) -> list:
        """A kernel-readable column: every active row must be defined."""

        col, flagged = self._fetch(name)
        if flagged:
            if any(v is _UNDEF for v in col):
                raise _Degrade(f"possibly-unassigned variable {name!r}")
            self.undef.discard(name)
        return col

    def assign(self, name: str, col: list) -> None:
        self.env[name] = col
        self.undef.discard(name)
        self.dirty.add(name)

    def scatter(self) -> None:
        """Write this frame's assignments back into the parent columns."""

        parent = self.parent
        for name in self.dirty:
            col = self.env[name]
            try:
                pcol, _flagged = parent._fetch(name)
            except _Degrade:
                pcol = [_UNDEF] * len(parent.rows)
                parent.env[name] = pcol
                parent.undef.add(name)
            for j, v in zip(self.positions, col):
                pcol[j] = v
            parent.dirty.add(name)
            if name in self.undef:
                parent.undef.add(name)


class _BatchState:
    """Absolute per-record accumulators for one batch run."""

    __slots__ = (
        "n", "costs", "present", "values", "ncosts", "lazy_ncosts",
        "full_mask", "fuel", "max_steps", "masks",
    )

    def __init__(self, n: int, max_steps: int, collect_masks: bool) -> None:
        self.n = n
        self.costs = [0] * n
        self.present: dict[str, list[bool]] = {}
        self.values: dict[str, list] = {}
        self.ncosts: dict[str, list[int]] = {}
        # pid -> cost lag; ncosts[pid][i] == costs[i] - lag, materialised
        # only if someone actually reads notification costs.
        self.lazy_ncosts: dict[str, int] = {}
        # One shared all-true mask for wholesale commits (identity-checked
        # by consumers for the fast all-notified scan).  Never mutated: any
        # op that would flip one of its flags raises the duplicate-
        # notification degrade before writing.
        self.full_mask: Optional[list[bool]] = None
        self.fuel: Optional[list[int]] = None
        self.max_steps = max_steps
        self.masks: Optional[list[float]] = [] if collect_masks else None


def _flush(frame: _Frame, state: _BatchState) -> None:
    pending = frame.pending
    if pending:
        costs = state.costs
        for r in frame.rows:
            costs[r] += pending
        frame.pending = 0


def _eager_ncosts(state: _BatchState, pid: str) -> list[int]:
    """``state.ncosts[pid]``, materialising a lazily-committed column.

    Reached only when a second notify targets an already-committed pid —
    the caller's clash scan raises on the first shared-mask row, so the
    materialised list is short-lived; correctness is all that matters.
    """

    ncosts = state.ncosts.get(pid)
    if ncosts is None:
        lag = state.lazy_ncosts.pop(pid)
        ncosts = state.ncosts[pid] = (
            [c - lag for c in state.costs] if lag else list(state.costs)
        )
    return ncosts


def _run_kernel(kern: _Kernel, frame: _Frame) -> list:
    cols = [frame.col(name) for name in kern.srcs]
    try:
        return kern.fn(len(frame.rows), *cols)
    except _Degrade:
        raise
    except _KernelCheck:
        raise _Degrade("kernel sort check failed") from None
    except Exception as exc:  # noqa: BLE001 - any kernel crash degrades
        raise _Degrade(f"kernel raised {type(exc).__name__}: {exc}") from exc


def _exec_ops(ops: list, frame: _Frame, state: _BatchState) -> None:
    for op in ops:
        cls = op.__class__
        if cls is _OpAssign:
            frame.assign(op.var, _run_kernel(op.kern, frame))
            frame.pending += op.cost
        elif cls is _OpStraight:
            res = _run_kernel(op.kern, frame)
            k = len(op.notifies)
            for name, col in zip(op.out_vars, res[k:]):
                frame.assign(name, col)
            if not op.notifies:
                frame.pending += op.total
                continue
            frame.pending += op.flush_prefix
            _flush(frame, state)
            rows = frame.rows
            costs = state.costs
            full = len(rows) == state.n
            # Lazy ncosts are only sound when nothing after this op can
            # charge row-varying cost: the tail op of the top-level plan.
            # The final top-frame flush then adds total - flush_prefix to
            # every row uniformly, which folds into the deferred lag.
            lazy_ok = op.tail and frame.parent is None
            lazy_extra = op.total - op.flush_prefix
            for (pid, lag), vals in zip(op.notifies, res):
                present = state.present.get(pid)
                if present is None and full:
                    # Whole-batch frame, first notify on this pid: no
                    # clash is possible, commit the columns wholesale.
                    full_mask = state.full_mask
                    if full_mask is None:
                        full_mask = state.full_mask = [True] * state.n
                    state.present[pid] = full_mask
                    state.values[pid] = vals
                    if lazy_ok:
                        state.lazy_ncosts[pid] = lag + lazy_extra
                    else:
                        state.ncosts[pid] = (
                            [c - lag for c in costs] if lag else list(costs)
                        )
                    continue
                if present is None:
                    present = state.present[pid] = [False] * state.n
                    state.values[pid] = [False] * state.n
                    state.ncosts[pid] = [0] * state.n
                values = state.values[pid]
                ncosts = _eager_ncosts(state, pid)
                for r, v in zip(rows, vals):
                    if present[r]:
                        raise _Degrade(f"duplicate notification for {pid!r}")
                    present[r] = True
                    values[r] = v
                    ncosts[r] = costs[r] - lag
            frame.pending += op.total - op.flush_prefix
        elif cls is _OpNotify:
            vals = _run_kernel(op.kern, frame)
            frame.pending += op.cost
            _flush(frame, state)
            pid = op.pid
            present = state.present.get(pid)
            if present is None:
                present = state.present[pid] = [False] * state.n
                state.values[pid] = [False] * state.n
                state.ncosts[pid] = [0] * state.n
            values, costs = state.values[pid], state.costs
            ncosts = _eager_ncosts(state, pid)
            for r, v in zip(frame.rows, vals):
                if present[r]:
                    raise _Degrade(f"duplicate notification for {pid!r}")
                present[r] = True
                values[r] = v
                ncosts[r] = costs[r]
        elif cls is _OpIf:
            cvals = _run_kernel(op.kern, frame)
            frame.pending += op.entry_cost
            _flush(frame, state)
            then_pos = [j for j, v in enumerate(cvals) if v]
            if state.masks is not None and cvals:
                state.masks.append(len(then_pos) / len(cvals))
            if len(then_pos) == len(cvals):
                else_pos: list[int] = []
            elif not then_pos:
                else_pos = list(range(len(cvals)))
            else:
                else_pos = [j for j, v in enumerate(cvals) if not v]
            rows = frame.rows
            for positions, arm_ops in ((then_pos, op.then_ops), (else_pos, op.else_ops)):
                if not positions or not arm_ops:
                    continue
                child = _Frame(
                    [rows[j] for j in positions], {}, parent=frame, positions=positions
                )
                _exec_ops(arm_ops, child, state)
                _flush(child, state)
                child.scatter()
        else:  # _OpWhile
            _flush(frame, state)
            rows = frame.rows
            positions = list(range(len(rows)))
            fuel = state.fuel
            if fuel is None:
                fuel = state.fuel = [state.max_steps] * state.n
            burn = op.fuel
            while True:
                live_rows = [rows[j] for j in positions]
                for r in live_rows:
                    fuel[r] -= burn
                    if fuel[r] < 0:
                        raise _Degrade("step budget exceeded in loop")
                sub = _Frame(live_rows, {}, parent=frame, positions=positions)
                cvals = _run_kernel(op.kern, sub)
                sub.pending = op.test_cost
                _flush(sub, state)
                cont = [positions[j] for j, v in enumerate(cvals) if v]
                if not cont:
                    break
                body = _Frame(
                    [rows[j] for j in cont], {}, parent=frame, positions=cont
                )
                _exec_ops(op.body_ops, body, state)
                _flush(body, state)
                body.scatter()
                positions = cont


# -- results ----------------------------------------------------------------


class BatchResult:
    """The outcome of one batch execution, column-oriented.

    Per record ``i``: ``costs[i]`` is the exact Figure-2 run cost,
    ``present[pid][i]`` says whether the record's run broadcast on ``pid``
    and ``values[pid][i]`` / ``ncosts[pid][i]`` carry the broadcast value
    and latency.  ``fallback`` records that the batch was executed per-row
    through the compiled closures (a degradation, never an error) and
    ``fallback_reason`` says why.  No per-record env is materialised — the
    dataflow operators only consume notifications and costs, and skipping
    env reconstruction is part of the backend's speedup.
    """

    __slots__ = (
        "n", "costs", "present", "values", "_ncosts", "_lazy_ncosts",
        "full_mask", "fallback", "fallback_reason",
    )

    def __init__(
        self,
        n: int,
        costs: list[int],
        present: dict[str, list[bool]],
        values: dict[str, list],
        ncosts: dict[str, list[int]],
        fallback: bool = False,
        fallback_reason: str = "",
        *,
        lazy_ncosts: Optional[dict[str, int]] = None,
        full_mask: Optional[list[bool]] = None,
    ) -> None:
        self.n = n
        self.costs = costs
        self.present = present
        self.values = values
        self._ncosts = ncosts
        self._lazy_ncosts = lazy_ncosts or {}
        self.full_mask = full_mask
        self.fallback = fallback
        self.fallback_reason = fallback_reason

    @property
    def ncosts(self) -> dict[str, list[int]]:
        """Per-pid notification-cost columns, materialised on first read.

        A wholesale-committed pid's column is ``costs`` minus a constant
        lag; the dataflow operators never read it, so the subtraction is
        deferred to the consumers that do (oracles, tests, run_result).
        """

        lazy = self._lazy_ncosts
        if lazy:
            costs = self.costs
            for pid, lag in lazy.items():
                self._ncosts[pid] = (
                    [c - lag for c in costs] if lag else list(costs)
                )
            self._lazy_ncosts = {}
        return self._ncosts

    def notification(self, pid: str, i: int):
        """Record ``i``'s broadcast on ``pid`` (KeyError when it made none,
        matching :meth:`RunResult.notification`)."""

        present = self.present.get(pid)
        if present is None or not present[i]:
            raise KeyError(pid)
        return self.values[pid][i]

    def notifications_at(self, i: int) -> dict[str, object]:
        return {
            pid: self.values[pid][i]
            for pid, mask in self.present.items()
            if mask[i]
        }

    def notification_costs_at(self, i: int) -> dict[str, int]:
        return {
            pid: self.ncosts[pid][i]
            for pid, mask in self.present.items()
            if mask[i]
        }

    def run_result(self, i: int) -> RunResult:
        """Record ``i`` as a :class:`RunResult` (env intentionally empty)."""

        return RunResult(
            env={},
            notifications=self.notifications_at(i),
            cost=self.costs[i],
            notification_costs=self.notification_costs_at(i),
        )


def columns_from_records(program: Program, records: Sequence) -> dict[str, list]:
    """Struct-of-arrays binding for the single-row-handle UDF convention."""

    if len(program.params) != 1:
        raise VectorizeError(f"UDF {program.pid} must take exactly the row handle")
    return {program.params[0]: list(records)}


# -- the vectorized program -------------------------------------------------


class VectorizedProgram:
    """A program translated to column kernels, with a per-row safety net.

    ``plan`` is ``None`` when the program never vectorizes (shape
    ``unbounded``, translation failure, injected fault); every batch then
    takes the per-row road immediately.  A plan that degrades mid-batch
    abandons all uncommitted state and re-runs the whole batch per row, so
    callers observe exactly the compiled backend's results and errors.
    """

    def __init__(
        self,
        program: Program,
        functions: FunctionTable,
        cost_model: CostModel,
        shape: str,
        plan: Optional[list],
        degraded_reason: str,
        *,
        memoize_calls: bool = False,
        max_steps: int = DEFAULT_MAX_STEPS,
        telemetry=None,
    ) -> None:
        self.program = program
        self.functions = functions
        self.cost_model = cost_model
        self.shape = shape
        self.plan = plan
        self.degraded_reason = degraded_reason
        self.memoize_calls = memoize_calls
        self.max_steps = max_steps
        self.telemetry = telemetry
        self._row_runner: Optional[Callable] = None

    @property
    def vectorized(self) -> bool:
        return self.plan is not None

    def row_runner(self) -> Callable[[Mapping[str, object]], RunResult]:
        """The per-row rung of the ladder (compiled, interp behind it)."""

        runner = self._row_runner
        if runner is None:
            runner = self._row_runner = make_runner(
                self.program,
                self.functions,
                self.cost_model,
                backend="compiled",
                memoize_calls=self.memoize_calls,
                max_steps=self.max_steps,
                telemetry=self.telemetry,
            )
        return runner

    def run_batch(
        self, columns: Mapping[str, Sequence], n: int
    ) -> BatchResult:
        """Execute ``n`` records held column-wise; exact Figure-2 costs.

        Never raises for *vectorization* reasons — only genuine program
        errors (the same the compiled backend raises record by record)
        propagate, from the per-row fallback, in record order.
        """

        telemetry = self.telemetry
        live = telemetry is not None and telemetry.enabled
        if live:
            telemetry.counter("vectorized_batches_total").inc()
            telemetry.counter("vectorized_records_total").inc(n)
            telemetry.histogram("vectorized_batch_size").observe(n)
        if self.plan is None:
            return self._run_rows(columns, n, self.degraded_reason, live)
        state = _BatchState(n, self.max_steps, live)
        try:
            env = {}
            for p in self.program.params:
                col = columns.get(p)
                if col is None:
                    raise _Degrade(f"missing argument column {p!r}")
                env[p] = list(col)
            top = _Frame(range(n), env)
            _exec_ops(self.plan, top, state)
            _flush(top, state)
        except _Degrade as exc:
            return self._run_rows(columns, n, str(exc), live)
        if live and state.masks:
            density = telemetry.histogram("vectorized_mask_density")
            for value in state.masks:
                density.observe(value)
        return BatchResult(
            n, state.costs, state.present, state.values, state.ncosts,
            lazy_ncosts=state.lazy_ncosts, full_mask=state.full_mask,
        )

    def _run_rows(
        self, columns: Mapping[str, Sequence], n: int, reason: str, live: bool
    ) -> BatchResult:
        """Per-row fallback: recorded degradation with exact row semantics."""

        if live:
            self.telemetry.counter("vectorized_fallbacks_total").inc()
            self.telemetry.counter("vectorized_fallback_records_total").inc(n)
        runner = self.row_runner()
        params = [p for p in self.program.params if p in columns]
        costs: list[int] = []
        present: dict[str, list[bool]] = {}
        values: dict[str, list] = {}
        ncosts: dict[str, list[int]] = {}
        for i in range(n):
            result = runner({p: columns[p][i] for p in params})
            costs.append(result.cost)
            for pid, value in result.notifications.items():
                mask = present.get(pid)
                if mask is None:
                    mask = present[pid] = [False] * n
                    values[pid] = [False] * n
                    ncosts[pid] = [0] * n
                mask[i] = True
                values[pid][i] = value
                ncosts[pid][i] = result.notification_costs.get(pid, result.cost)
        return BatchResult(
            n, costs, present, values, ncosts,
            fallback=True, fallback_reason=reason,
        )


def vectorize_program(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    memoize_calls: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    telemetry=None,
) -> VectorizedProgram:
    """Translate ``program`` into a :class:`VectorizedProgram`.

    Never raises: an untranslatable program (unbounded shape, unknown
    library function, unknown AST node, injected fault) yields a
    plan-less program whose every batch degrades — recorded, not an error.
    ``memoize_calls`` does not change kernel execution (library calls are
    deterministic per the paper's assumptions and cost accounting never
    depends on memoisation); it is honoured on the per-row fallback rung.
    """

    try:
        from ..analysis.prefilter import classify_shape  # deferred: import cycle

        shape = classify_shape(program, functions, cost_model)
    except Exception:  # noqa: BLE001 - classification must never block execution
        shape = "unbounded"
    plan: Optional[list] = None
    reason = ""
    if shape == "unbounded":
        reason = "shape classified unbounded; static trip-count bound unavailable"
    else:
        try:
            if FAULT_HOOK is not None:
                FAULT_HOOK("vectorize.translate", program)
            plan = _build_ops(
                program.body, functions, cost_model, _static_var_sorts(program)
            )
            if plan and isinstance(plan[-1], _OpStraight):
                plan[-1].tail = True
        except VectorizeError as exc:
            reason = str(exc)
        except Exception as exc:  # noqa: BLE001 - translation bugs degrade
            reason = f"kernel translation crashed: {type(exc).__name__}: {exc}"
    vectorized = VectorizedProgram(
        program,
        functions,
        cost_model,
        shape,
        plan,
        reason,
        memoize_calls=memoize_calls,
        max_steps=max_steps,
        telemetry=telemetry,
    )
    if FAULT_HOOK is not None:
        transform = FAULT_HOOK("vectorize.finish", program)
        if transform is not None:
            vectorized = transform(vectorized)
    return vectorized


# One cache bucket per function table (weak, like the compile cache), keyed
# by structural program identity and cost model — a consolidated plan served
# repeatedly by the service vectorizes once, not once per run.
_CACHE: "weakref.WeakKeyDictionary[FunctionTable, dict]" = weakref.WeakKeyDictionary()


def vectorize_cached(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    memoize_calls: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    telemetry=None,
) -> VectorizedProgram:
    """Memoising front end to :func:`vectorize_program`."""

    per_table = _CACHE.get(functions)
    if per_table is None:
        per_table = _CACHE.setdefault(functions, {})
    key = (program, cost_model, memoize_calls, max_steps)
    vectorized = per_table.get(key)
    live = telemetry is not None and telemetry.enabled
    if vectorized is None or FAULT_HOOK is not None:
        vectorized = vectorize_program(
            program,
            functions,
            cost_model,
            memoize_calls=memoize_calls,
            max_steps=max_steps,
            telemetry=telemetry,
        )
        per_table[key] = vectorized
        if live:
            telemetry.counter("vectorized_plan_cache_misses_total").inc()
            if not vectorized.vectorized:
                telemetry.counter("vectorized_unvectorizable_total").inc()
    elif live:
        telemetry.counter("vectorized_plan_cache_hits_total").inc()
    # The plan is shared across runs; the telemetry sink is per run.  Rebind
    # on every lookup so a cached plan never counts into a stale registry.
    vectorized.telemetry = telemetry
    return vectorized


def clear_vectorize_cache() -> None:
    _CACHE.clear()
