"""Compile-to-Python execution backend for Figure-1 programs.

The tree-walking :class:`~repro.lang.interp.Interpreter` pays per-node
``isinstance`` dispatch, a fuel tick, a fresh tuple and an env lookup for
every AST node it touches — multiplied by 50 UDFs x thousands of records
in the Figure 9/10 experiments.  This module walks a :class:`Program` once
and emits Python source for a specialised closure instead:

* arithmetic, comparisons and connectives become straight-line Python
  expressions (operands that need the interpreter's dynamic type checks
  are materialised into locals first, so the checks run in the same order
  the interpreter performs them);
* ``if`` / ``while`` become native control flow;
* library calls are bound to local wrapper closures created once at
  compile time (:mod:`repro.lang.runtime`);
* cost accounting is folded into literal-constant ``_cost += k`` additions,
  one per basic block — expression costs in Figure 2 depend only on the
  expression's shape, never on run-time values, so every block's cost is
  a compile-time constant;
* ``notify`` writes into a preallocated notifications dict and records the
  per-pid latency (``_cost`` plus the folded pending constant), exactly as
  the interpreter's ``_elapsed`` bookkeeping does;
* the fuel check is hoisted to loop back-edges, so straight-line code pays
  zero per-node overhead.  Each back-edge burns the static node count of
  one iteration, which bounds runaway loops within a small constant factor
  of the interpreter's per-node budget.

The compiled closure honours the interpreter's observable contract: the
same :class:`RunResult` (env, notifications, cost, notification_costs) and
the same error classes (:class:`InterpError`, :class:`NotificationClash`,
:class:`StepLimitExceeded`).  Error *messages* match the interpreter's in
the common cases; when several dynamic errors race inside one expression
the compiled code may report a different member of the same class.

:func:`make_runner` is the backend selector used by the dataflow
operators, the experiment harness and the CLI: ``backend="compiled"``
(the default) compiles through the per-``(program, cost model, function
table)`` cache so a job's UDFs compile once, not once per record, and any
compilation failure logs a warning and falls back to the interpreter.
"""

from __future__ import annotations

import logging
import re
import weakref
from dataclasses import dataclass, field
from typing import Callable, Mapping

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from .cost import DEFAULT_COST_MODEL, CostModel
from .functions import BOOL, INT, STR, FunctionTable
from .interp import (
    Interpreter,
    InterpError,
    NotificationClash,
    RunResult,
    StepLimitExceeded,
)
from .printer import expr_to_str, stmt_to_str
from .runtime import make_lib_call, make_memo_call, unbound_error
from .visitors import stmt_size

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "CompileError",
    "CompiledProgram",
    "compile_program",
    "compile_cached",
    "clear_compile_cache",
    "make_runner",
    "FAULT_HOOK",
]

logger = logging.getLogger(__name__)

# Fault-injection seam (see repro.testing.faults).  Sites:
#   ("compile.translate", program)    — may raise CompileError to force the
#                                       interpreter fallback;
#   ("compile.cache_lookup", program) — truthy return forces a cache miss;
#   ("compile.finish", program)       — may return a CompiledProgram
#                                       transformer, modelling a miscompile
#                                       (the differential oracle must catch
#                                       the corrupted output).
# None — the production value — costs one attribute read per site.
FAULT_HOOK = None

BACKENDS = ("interp", "compiled", "vectorized")
DEFAULT_BACKEND = "compiled"
DEFAULT_MAX_STEPS = 2_000_000

_ATOM = re.compile(r"^(?:[_A-Za-z]\w*|-?\d+)$")


class CompileError(Exception):
    """The program cannot be translated; callers fall back to the interpreter."""


def _contains_loop(s: Stmt) -> bool:
    if isinstance(s, While):
        return True
    if isinstance(s, Seq):
        return any(_contains_loop(sub) for sub in s.stmts)
    if isinstance(s, If):
        return _contains_loop(s.then) or _contains_loop(s.orelse)
    return False


def _collect_assigns(s: Stmt, out: list[tuple[str, Expr]]) -> None:
    if isinstance(s, Assign):
        out.append((s.var, s.expr))
    elif isinstance(s, Seq):
        for sub in s.stmts:
            _collect_assigns(sub, out)
    elif isinstance(s, If):
        _collect_assigns(s.then, out)
        _collect_assigns(s.orelse, out)
    elif isinstance(s, While):
        _collect_assigns(s.body, out)


def _static_var_sorts(program: Program) -> dict[str, str | None]:
    """Flow-insensitive sort inference for local variables.

    A variable's sort is known when every assignment to it produces the
    same statically known sort ("known" meaning: *if* evaluation yields a
    value, the value has this sort — operators guarantee their result sort
    regardless of operand types).  Known sorts let the emitter elide the
    interpreter's dynamic checks, e.g. on loop counters.  Arguments, call
    results and ``=`` comparisons stay unknown, exactly the places the
    interpreter checks dynamically.
    """

    assigns: list[tuple[str, Expr]] = []
    _collect_assigns(program.body, assigns)
    params = set(program.params)
    sorts: dict[str, str | None] = {}

    def esort(e: Expr) -> str | None:
        if isinstance(e, IntConst):
            return INT
        if isinstance(e, StrConst):
            return STR
        if isinstance(e, BoolConst):
            return BOOL
        if isinstance(e, Var):
            return None if e.name in params else sorts.get(e.name)
        if isinstance(e, BinOp):
            return INT
        if isinstance(e, Cmp):
            return None if e.op == "=" else BOOL
        if isinstance(e, (Not, BoolOp)):
            return BOOL
        return None  # Arg, Call

    # Known-ness only grows, so the fixpoint needs at most one round per
    # assigned name.
    for _ in range(len(assigns) + 1):
        new: dict[str, str | None] = {}
        for name, e in assigns:
            s = esort(e)
            if name in new and new[name] != s:
                s = None
            new[name] = None if name in params else s
        if new == sorts:
            break
        sorts = new
    return sorts


class _Emitter:
    """Single-pass AST -> Python source translator.

    ``pending`` accumulates the statically known cost of the current basic
    block; it is flushed into the run-time ``_cost`` accumulator only at
    block boundaries (branch joins, loop back-edges, function exit) and
    read without flushing at ``notify`` latency captures.
    """

    def __init__(
        self, functions: FunctionTable, cost_model: CostModel, memoize_calls: bool
    ) -> None:
        self.functions = functions
        self.cm = cost_model
        self.memoize = memoize_calls
        self.lines: list[str] = []
        # Globals bound into the exec namespace of the compiled closure.
        self.bindings: dict[str, object] = {
            "_InterpError": InterpError,
            "_NotificationClash": NotificationClash,
            "_StepLimitExceeded": StepLimitExceeded,
            "_unbound_error": unbound_error,
        }
        self.slots: dict[str, str] = {}  # source name -> mangled local
        self.callers: dict[str, tuple[str, int]] = {}  # func -> (global, cost)
        self.var_sorts: dict[str, str | None] = {}
        self.pending = 0
        self._tmp = 0

    # -- infrastructure -----------------------------------------------------

    def emit(self, depth: int, line: str) -> None:
        self.lines.append("    " * depth + line)

    def slot(self, name: str) -> str:
        mangled = self.slots.get(name)
        if mangled is None:
            mangled = f"_u{len(self.slots)}"
            self.slots[name] = mangled
        return mangled

    def caller(self, func: str) -> tuple[str, int]:
        entry = self.callers.get(func)
        if entry is None:
            try:
                lib = self.functions[func]
            except KeyError:
                raise CompileError(f"unknown library function {func!r}") from None
            name = f"_c{len(self.callers)}"
            wrapper = (
                make_memo_call(func, lib.fn) if self.memoize else make_lib_call(func, lib.fn)
            )
            self.bindings[name] = wrapper
            entry = (name, lib.cost)
            self.callers[func] = entry
        return entry

    def materialize(self, py: str, depth: int) -> str:
        """Pin ``py`` to a local so it can be checked / reused by name.

        Atoms (locals and integer literals) are returned unchanged — reading
        them is side-effect free apart from the unbound-local check, which
        the first use triggers exactly where the interpreter would.
        """

        if _ATOM.match(py) or py.startswith(("'", '"')):
            return py
        name = f"_t{self._tmp}"
        self._tmp += 1
        self.emit(depth, f"{name} = {py}")
        return name

    def force(self, py: str, depth: int) -> str:
        """Evaluate ``py`` *here*, even if it is a bare local read.

        Used where Figure 2 demands evaluation that Python would otherwise
        delay or skip — the non-short-circuiting connectives and the
        eval-before-clash-check order of ``notify`` — so an unbound-local
        error surfaces exactly where the interpreter raises it.
        """

        if py in ("True", "False") or py.startswith(("'", '"', "_t")) or py.lstrip("-").isdigit():
            return py
        name = f"_t{self._tmp}"
        self._tmp += 1
        self.emit(depth, f"{name} = {py}")
        return name

    def flush(self, depth: int) -> None:
        if self.pending:
            self.emit(depth, f"_cost += {self.pending}")
        self.pending = 0

    def _check(self, depth: int, cond: str, exc: str, message: str) -> None:
        self.emit(depth, f"if {cond}:")
        self.emit(depth + 1, f"raise {exc}({message!r})")

    def _check_int(self, name: str, e: Expr, depth: int, kind: str) -> None:
        # Matches the interpreter's arithmetic requirement: int but not bool.
        self._check(
            depth,
            f"not isinstance({name}, int) or isinstance({name}, bool)",
            "_InterpError",
            f"{kind}: {expr_to_str(e)}",
        )

    def _check_ordered(self, name: str, e: Expr, depth: int) -> None:
        # The interpreter's ordering check admits bools (they are ints).
        self._check(
            depth,
            f"not isinstance({name}, int)",
            "_InterpError",
            f"ordering on non-integers: {expr_to_str(e)}",
        )

    def _check_bool(self, name: str, message: str, depth: int) -> None:
        self._check(depth, f"not isinstance({name}, bool)", "_InterpError", message)

    # -- expressions --------------------------------------------------------

    def expr(self, e: Expr, depth: int) -> tuple[str, int, str | None]:
        """Translate ``e``; returns ``(python_expr, static_cost, sort)``.

        ``sort`` is the *statically guaranteed* run-time sort, or ``None``
        when unknown (args, locals, library calls, ``=`` comparisons — the
        places where the interpreter performs dynamic checks).  Known-sort
        sub-expressions are provably side-effect free, which is what makes
        inlining them into short-circuiting Python connectives sound.
        """

        cm = self.cm
        if isinstance(e, IntConst):
            return repr(e.value), cm.int_const, INT
        if isinstance(e, StrConst):
            return repr(e.value), cm.str_const, STR
        if isinstance(e, BoolConst):
            return ("True" if e.value else "False"), cm.bool_const, BOOL
        if isinstance(e, Arg):
            return self.slot(e.name), cm.arg, None
        if isinstance(e, Var):
            return self.slot(e.name), cm.var, self.var_sorts.get(e.name)
        if isinstance(e, Call):
            parts: list[str] = []
            cost = 0
            for a in e.args:
                py, c, _ = self.expr(a, depth)
                parts.append(py)
                cost += c
            name, call_cost = self.caller(e.func)
            args = ", ".join(["_cache", *parts] if self.memoize else parts)
            return f"{name}({args})", cost + call_cost, None
        if isinstance(e, BinOp):
            lpy, lc, ls = self.expr(e.left, depth)
            rpy, rc, rs = self.expr(e.right, depth)
            if ls != INT:
                lpy = self.materialize(lpy, depth)
            if rs != INT:
                rpy = self.materialize(rpy, depth)
            if ls != INT:
                self._check_int(lpy, e, depth, "arithmetic on non-integers")
            if rs != INT:
                self._check_int(rpy, e, depth, "arithmetic on non-integers")
            return f"({lpy} {e.op} {rpy})", lc + rc + cm.arith_cost(e.op), INT
        if isinstance(e, Cmp):
            lpy, lc, ls = self.expr(e.left, depth)
            rpy, rc, rs = self.expr(e.right, depth)
            cost = lc + rc + cm.cmp_cost(e.op)
            if e.op == "=":
                # Equality accepts any values; Python ``==`` on the wrapped
                # value domain (ints/bools/strs) returns exactly what the
                # interpreter stores.  Sort stays unknown so downstream
                # boolean contexts re-check, as the interpreter does.
                return f"({lpy} == {rpy})", cost, None
            if ls not in (INT, BOOL):
                lpy = self.materialize(lpy, depth)
            if rs not in (INT, BOOL):
                rpy = self.materialize(rpy, depth)
            if ls not in (INT, BOOL):
                self._check_ordered(lpy, e, depth)
            if rs not in (INT, BOOL):
                self._check_ordered(rpy, e, depth)
            return f"({lpy} {e.op} {rpy})", cost, BOOL
        if isinstance(e, Not):
            opy, oc, osort = self.expr(e.operand, depth)
            if osort != BOOL:
                opy = self.materialize(opy, depth)
                self._check_bool(opy, f"negation of non-boolean: {expr_to_str(e)}", depth)
            return f"(not {opy})", oc + cm.neg, BOOL
        if isinstance(e, BoolOp):
            # Figure 2 evaluates both operands (no short-circuiting).
            # Unknown-sort operands are materialised — forcing evaluation —
            # and known-bool operands are side-effect free, so the Python
            # connective below cannot skip an effect the semantics demands.
            lpy, lc, ls = self.expr(e.left, depth)
            lpy = self.materialize(lpy, depth) if ls != BOOL else self.force(lpy, depth)
            rpy, rc, rs = self.expr(e.right, depth)
            rpy = self.materialize(rpy, depth) if rs != BOOL else self.force(rpy, depth)
            msg = f"connective on non-booleans: {expr_to_str(e)}"
            if ls != BOOL:
                self._check_bool(lpy, msg, depth)
            if rs != BOOL:
                self._check_bool(rpy, msg, depth)
            return f"({lpy} {e.op} {rpy})", lc + rc + cm.logic_cost(e.op), BOOL
        raise CompileError(f"unknown expression node {e!r}")

    # -- statements ---------------------------------------------------------

    def stmt(self, s: Stmt, depth: int) -> None:
        cm = self.cm
        if isinstance(s, Skip):
            return
        if isinstance(s, Assign):
            py, cost, _sort = self.expr(s.expr, depth)
            self.emit(depth, f"{self.slot(s.var)} = {py}")
            self.pending += cost + cm.assign
            return
        if isinstance(s, Notify):
            py, cost, sort = self.expr(s.expr, depth)
            if sort != BOOL:
                py = self.materialize(py, depth)
                self._check_bool(py, f"notify of non-boolean: {stmt_to_str(s)}", depth)
            else:
                # The interpreter evaluates the value *before* the clash
                # check; force bare reads so an unbound variable wins the
                # race exactly as it does there.
                py = self.force(py, depth)
            self._check(
                depth,
                f"{s.pid!r} in _nots",
                "_NotificationClash",
                f"duplicate notification for {s.pid!r}",
            )
            self.emit(depth, f"_nots[{s.pid!r}] = {py}")
            self.pending += cost + cm.notify
            at = f"_cost + {self.pending}" if self.pending else "_cost"
            self.emit(depth, f"_ncosts[{s.pid!r}] = {at}")
            return
        if isinstance(s, Seq):
            for sub in s.stmts:
                self.stmt(sub, depth)
            return
        if isinstance(s, If):
            py, cost, sort = self.expr(s.cond, depth)
            if sort != BOOL:
                py = self.materialize(py, depth)
                self._check_bool(py, f"branch on non-boolean: {expr_to_str(s.cond)}", depth)
            self.pending += cost + cm.branch
            entry = self.pending
            self.emit(depth, f"if {py}:")
            self._block(s.then, depth + 1, entry)
            self.emit(depth, "else:")
            self._block(s.orelse, depth + 1, entry)
            self.pending = 0
            return
        if isinstance(s, While):
            self.flush(depth)
            fuel = stmt_size(s)  # one iteration's worth of interpreter ticks
            self.emit(depth, "while True:")
            d = depth + 1
            self.emit(d, f"_fuel -= {fuel}")
            self.emit(d, "if _fuel < 0:")
            self.emit(d + 1, "raise _StepLimitExceeded('exceeded %d steps' % _budget)")
            py, cost, sort = self.expr(s.cond, d)
            if sort != BOOL:
                py = self.materialize(py, d)
                self._check_bool(py, f"loop on non-boolean: {expr_to_str(s.cond)}", d)
            test_cost = cost + cm.branch
            self.emit(d, f"if not {py}:")
            if test_cost:
                self.emit(d + 1, f"_cost += {test_cost}")
            self.emit(d + 1, "break")
            self.pending = test_cost
            self.stmt(s.body, d)
            self.flush(d)
            return
        raise CompileError(f"unknown statement node {s!r}")

    def _block(self, s: Stmt, depth: int, entry_cost: int) -> None:
        before = len(self.lines)
        self.pending = entry_cost
        self.stmt(s, depth)
        self.flush(depth)
        if len(self.lines) == before:
            self.emit(depth, "pass")

    # -- whole programs -----------------------------------------------------

    def build(self, program: Program) -> str:
        params = program.params
        self.var_sorts = _static_var_sorts(program)
        self.emit(0, "def _compiled_run(_args, _budget):")
        if params:
            have = " and ".join(f"{p!r} in _args" for p in params)
            self.emit(1, f"if not ({have}):")
            self.emit(
                2,
                "raise _InterpError('missing arguments: %s' % "
                f"[_p for _p in {params!r} if _p not in _args])",
            )
            for p in params:
                self.emit(1, f"{self.slot(p)} = _args[{p!r}]")
        if _contains_loop(program.body):
            self.emit(1, "_fuel = _budget")
        self.emit(1, "_nots = {}")
        self.emit(1, "_ncosts = {}")
        self.emit(1, "_cost = 0")
        if self.memoize:
            self.emit(1, "_cache = {}")
        self.emit(1, "try:")
        before = len(self.lines)
        self.stmt(program.body, 2)
        self.flush(2)
        if len(self.lines) == before:
            self.emit(2, "pass")
        # A read of a never-assigned slot compiles to a *global* load and
        # raises plain NameError; UnboundLocalError (its subclass) covers
        # slots assigned on some path only.  Catch the base class.
        self.emit(1, "except NameError as _exc:")
        self.emit(2, "raise _unbound_error(_exc, _SRC_NAMES) from None")
        self.emit(1, "_loc = locals()")
        self.emit(
            1,
            "_env = {_src: _loc[_py] for _py, _src in _SLOT_LIST if _py in _loc}",
        )
        self.emit(1, "return _env, _nots, _cost, _ncosts")
        self.bindings["_SLOT_LIST"] = tuple(
            (mangled, src) for src, mangled in self.slots.items()
        )
        self.bindings["_SRC_NAMES"] = {
            mangled: src for src, mangled in self.slots.items()
        }
        return "\n".join(self.lines) + "\n"


@dataclass
class CompiledProgram:
    """A program specialised to one (cost model, function table) pair.

    ``source`` keeps the generated Python for debugging; ``run`` has the
    exact observable contract of :meth:`Interpreter.run`.
    """

    program: Program
    source: str
    max_steps: int = DEFAULT_MAX_STEPS
    _fn: Callable = field(default=None, repr=False, compare=False)

    def run(self, args: Mapping[str, object], max_steps: int | None = None) -> RunResult:
        env, notifications, cost, notification_costs = self._fn(
            args, self.max_steps if max_steps is None else max_steps
        )
        return RunResult(
            env=env,
            notifications=notifications,
            cost=cost,
            notification_costs=notification_costs,
        )


def compile_program(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    memoize_calls: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CompiledProgram:
    """Translate ``program`` into a specialised Python closure.

    Raises :class:`CompileError` if translation is impossible (unknown
    library function or AST node) — callers are expected to fall back to
    the interpreter, which reproduces the corresponding dynamic error lazily.
    """

    if FAULT_HOOK is not None:
        FAULT_HOOK("compile.translate", program)
    emitter = _Emitter(functions, cost_model, memoize_calls)
    try:
        source = emitter.build(program)
        code = compile(source, f"<compiled {program.pid}>", "exec")
    except CompileError:
        raise
    except Exception as exc:  # noqa: BLE001 - any emission bug becomes CompileError
        raise CompileError(f"cannot compile {program.pid}: {exc}") from exc
    namespace = dict(emitter.bindings)
    exec(code, namespace)  # noqa: S102 - source is generated above, not user input
    compiled = CompiledProgram(
        program=program,
        source=source,
        max_steps=max_steps,
        _fn=namespace["_compiled_run"],
    )
    if FAULT_HOOK is not None:
        transform = FAULT_HOOK("compile.finish", program)
        if transform is not None:
            compiled = transform(compiled)
    return compiled


# One cache bucket per function table (weak, so dropping a dataset frees
# its compiled UDFs), keyed by the structural program identity and cost
# model — whereMany's 50 UDFs compile once per job, not once per record.
_CACHE: "weakref.WeakKeyDictionary[FunctionTable, dict]" = weakref.WeakKeyDictionary()


def compile_cached(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    memoize_calls: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    telemetry=None,
) -> CompiledProgram:
    """Memoising front end to :func:`compile_program`.

    ``telemetry`` records cache traffic (``compile_cache_hits_total`` /
    ``compile_cache_misses_total``) and times each actual compilation into
    the ``compile_seconds`` histogram.
    """

    per_table = _CACHE.get(functions)
    if per_table is None:
        per_table = _CACHE.setdefault(functions, {})
    key = (program, cost_model, memoize_calls, max_steps)
    compiled = per_table.get(key)
    if compiled is not None and FAULT_HOOK is not None:
        if FAULT_HOOK("compile.cache_lookup", program):
            compiled = None
    live = telemetry is not None and telemetry.enabled
    if compiled is None:
        if live:
            from time import perf_counter

            started = perf_counter()
        compiled = compile_program(
            program,
            functions,
            cost_model,
            memoize_calls=memoize_calls,
            max_steps=max_steps,
        )
        per_table[key] = compiled
        if live:
            telemetry.counter("compile_cache_misses_total").inc()
            telemetry.histogram("compile_seconds").observe(perf_counter() - started)
    elif live:
        telemetry.counter("compile_cache_hits_total").inc()
    return compiled


def clear_compile_cache() -> None:
    _CACHE.clear()


def _diagnose_compile_failure(program: Program, functions: FunctionTable) -> str:
    """Best-effort static explanation for a failed translation.

    The silent half of the compiled backend's contract — "any failure falls
    back to the interpreter" — hides *why* a program was rejected.  Running
    the UDF linter over the program turns the common causes (calls to
    functions absent from the table, sort errors the interpreter would only
    hit at run time) into named findings appended to the fallback warning.
    """

    try:
        from ..analysis.static.lint import lint_program

        findings = lint_program(program, functions).errors
    except Exception:  # noqa: BLE001 - diagnosis must never mask the fallback
        return ""
    if not findings:
        return ""
    notes = "; ".join(f"{f.rule}: {f.message}" for f in findings[:3])
    return f" [static diagnosis: {notes}]"


def make_runner(
    program: Program,
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    *,
    backend: str = DEFAULT_BACKEND,
    memoize_calls: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    telemetry=None,
    profiler=None,
) -> Callable[[Mapping[str, object]], RunResult]:
    """Return ``args -> RunResult`` for the chosen execution backend.

    ``backend="compiled"`` (the default) uses the compile cache and falls
    back to a private interpreter — with a logged warning and a
    ``compile_fallbacks_total`` count — if compilation fails for any
    reason, so callers always get a working runner.

    ``profiler`` (a :class:`repro.profiling.Profiler`) wraps the returned
    runner with the sampling hook, tagged with the backend that actually
    serves it (``compiled`` vs the interpreter fallback).  ``None`` — the
    default — returns the bare runner: the hook costs nothing when off
    because it is never installed.
    """

    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    live = telemetry is not None and telemetry.enabled
    profiled = profiler is not None and profiler.enabled

    def _hook(
        runner: Callable[[Mapping[str, object]], RunResult], served_by: str
    ) -> Callable[[Mapping[str, object]], RunResult]:
        if not profiled:
            return runner
        return profiler.wrap_runner(runner, program, functions, served_by)

    if backend in ("compiled", "vectorized"):
        # The vectorized backend is batch-oriented: its column kernels live
        # in repro.lang.vectorize and are driven from the dataflow
        # operators' flush path.  Any caller asking for a *per-record*
        # runner under backend="vectorized" (prefilter guards, harness
        # probes, the fallback rung itself) gets the compiled closure —
        # which is exactly what a one-row batch degrades to anyway.
        try:
            return _hook(
                compile_cached(
                    program,
                    functions,
                    cost_model,
                    memoize_calls=memoize_calls,
                    max_steps=max_steps,
                    telemetry=telemetry,
                ).run,
                "compiled",
            )
        except Exception as exc:  # noqa: BLE001 - fallback must be unconditional
            if live:
                telemetry.counter("compile_fallbacks_total").inc()
            logger.warning(
                "compiled backend unavailable for %s (%s); falling back to the interpreter%s",
                program.pid,
                exc,
                _diagnose_compile_failure(program, functions),
            )
    interp = Interpreter(
        functions, cost_model, max_steps=max_steps, memoize_calls=memoize_calls
    )

    def _run(args: Mapping[str, object]) -> RunResult:
        return interp.run(program, args)

    return _hook(_run, "interp")
