"""Abstract syntax of the consolidation language (Figure 1 of the paper).

The language is a small imperative core:

* programs ``lambda a1..ak. S`` with a statement body,
* statements: ``skip``, assignment, sequencing, conditionals
  (``S1 (+)e S2``), while loops, and ``notify_i e`` broadcasts,
* integer expressions: constants, arguments, locals, library calls and
  ``+ - *``,
* boolean expressions: constants, comparisons (``< <= =``) and the boolean
  connectives.

Two pragmatic extensions over the paper's Figure 1, both used by the paper's
own examples:

* **String constants.**  The worked examples compare airline names and words.
  Strings are opaque: the only operations are equality and library calls, so
  the SMT layer treats each distinct string as a distinct integer constant
  (interning), which preserves exactly the reasoning the calculus needs.
* **Notify of expressions.**  Figure 1 restricts ``notify`` to boolean
  constants, but the consolidated program of Example 1 broadcasts a computed
  boolean (``return (c == "southwest", false)``).  We allow ``notify_i e``
  for an arbitrary boolean expression; a constant is just the special case.

All nodes are immutable (frozen dataclasses) and compare structurally, so
they can be used as dictionary keys, memoised, and shared freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "Expr",
    "IntExpr",
    "BoolExpr",
    "Stmt",
    "IntConst",
    "StrConst",
    "BoolConst",
    "Arg",
    "Var",
    "Call",
    "BinOp",
    "Cmp",
    "Not",
    "BoolOp",
    "Skip",
    "Assign",
    "Notify",
    "Seq",
    "If",
    "While",
    "Program",
    "SKIP",
    "TRUE",
    "FALSE",
    "ARITH_OPS",
    "CMP_OPS",
    "BOOL_OPS",
    "seq",
    "seq_head",
    "seq_tail",
    "statements",
]

ARITH_OPS = ("+", "-", "*")
CMP_OPS = ("<", "<=", "=")
BOOL_OPS = ("and", "or")


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .printer import to_str

        return to_str(self)


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Integer expressions (IE in Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IntConst(Expr):
    """An integer literal."""

    value: int


@dataclass(frozen=True, slots=True)
class StrConst(Expr):
    """An opaque string literal (see module docstring)."""

    value: str


@dataclass(frozen=True, slots=True)
class Arg(Expr):
    """A program argument ``alpha_j``.

    Arguments are shared between all programs being consolidated: every UDF
    in a batch receives the same input row, so an ``Arg`` with the same name
    denotes the same value in every program.
    """

    name: str


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A local variable ``x_{i,j}``.

    Local variables of distinct programs are kept disjoint by prefixing the
    program identifier to the name (``rename_locals`` in
    :mod:`repro.lang.visitors` establishes this before consolidation).
    """

    name: str


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """A call ``f(e1, ..., ek)`` to an externally provided library function.

    Library functions are deterministic and side-effect free (the paper's
    well-behavedness assumption), which is what justifies replacing a call
    with a previously computed value during cross-simplification.
    """

    func: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """An arithmetic operation ``e1 (.) e2`` with ``(.)`` in ``+ - *``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"not an arithmetic operator: {self.op!r}")


# ---------------------------------------------------------------------------
# Boolean expressions (BE in Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoolConst(Expr):
    """A boolean literal (top / bottom in the paper)."""

    value: bool


@dataclass(frozen=True, slots=True)
class Cmp(Expr):
    """A comparison ``e1 (<=|<|=) e2``.

    Only the paper's three comparison operators exist in the core syntax;
    ``>``, ``>=`` and ``!=`` are provided as smart constructors in
    :mod:`repro.lang.builder` that normalise to these.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"not a comparison operator: {self.op!r}")


@dataclass(frozen=True, slots=True)
class Not(Expr):
    """Boolean negation."""

    operand: Expr


@dataclass(frozen=True, slots=True)
class BoolOp(Expr):
    """A binary boolean connective (``and`` / ``or``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BOOL_OPS:
            raise ValueError(f"not a boolean operator: {self.op!r}")


IntExpr = Union[IntConst, StrConst, Arg, Var, Call, BinOp]
BoolExpr = Union[BoolConst, Cmp, Not, BoolOp]


# ---------------------------------------------------------------------------
# Statements (S in Figure 1)
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Skip(Stmt):
    """The no-op statement."""


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """An assignment ``x := e`` to a local variable."""

    var: str
    expr: Expr


@dataclass(frozen=True, slots=True)
class Notify(Stmt):
    """``notify_i e`` — broadcast the value of ``e`` on behalf of program i.

    The paper's semantics collects broadcasts into a notification
    environment ``N`` mapping program identifiers to booleans; a program may
    notify its own identifier at most once per run.
    """

    pid: str
    expr: Expr


@dataclass(frozen=True, slots=True)
class Seq(Stmt):
    """A sequence of statements ``S1; ...; Sn``.

    Sequences are kept *flat*: no element of ``stmts`` is itself a ``Seq``,
    and ``Skip`` never appears inside a non-trivial sequence.  Use the
    :func:`seq` smart constructor to build sequences; it enforces both
    invariants, which the consolidation algorithm's ``hd``/``tl`` view
    (:func:`seq_head` / :func:`seq_tail`) relies on.
    """

    stmts: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "stmts", tuple(self.stmts))
        for s in self.stmts:
            if isinstance(s, Seq):
                raise ValueError("Seq must be flat; use seq() to construct")


@dataclass(frozen=True, slots=True)
class If(Stmt):
    """A conditional ``S1 (+)e S2``: run ``then`` if ``cond`` holds."""

    cond: Expr
    then: Stmt
    orelse: Stmt


@dataclass(frozen=True, slots=True)
class While(Stmt):
    """A while loop."""

    cond: Expr
    body: Stmt


SKIP = Skip()
TRUE = BoolConst(True)
FALSE = BoolConst(False)


def seq(*stmts: Stmt) -> Stmt:
    """Build a flat sequence, dropping ``Skip`` and splicing nested ``Seq``.

    Returns ``SKIP`` for the empty sequence and the sole statement for a
    singleton, so the result is always in normal form.
    """

    flat: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Seq):
            flat.extend(s.stmts)
        elif isinstance(s, Skip):
            continue
        else:
            flat.append(s)
    if not flat:
        return SKIP
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def seq_head(s: Stmt) -> Stmt:
    """``hd`` from the paper: the first non-sequence statement of ``s``."""

    if isinstance(s, Seq):
        return s.stmts[0]
    return s


def seq_tail(s: Stmt) -> Stmt:
    """``tl`` from the paper: everything after :func:`seq_head`.

    Yields ``SKIP`` when ``s`` is not a sequence, mirroring the paper's
    convention (and implicitly its Skip 2 rule).
    """

    if isinstance(s, Seq):
        return seq(*s.stmts[1:])
    return SKIP


def statements(s: Stmt) -> Iterator[Stmt]:
    """Iterate the top-level statements of ``s`` in execution order."""

    if isinstance(s, Seq):
        yield from s.stmts
    elif not isinstance(s, Skip):
        yield s


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Program(Node):
    """A program ``Pi_i = lambda a1...ak. S``.

    ``pid`` is the unique program identifier used by ``notify`` statements;
    ``params`` are the argument names (the same tuple for every program in a
    consolidation batch, since they all read the same input).
    """

    pid: str
    params: tuple[str, ...]
    body: Stmt

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
