"""Cost-annotated big-step interpreter (Figure 2 of the paper).

Evaluation judgments::

    E, e ⇓k c          eval_expr(env, e)  -> (value, cost)
    E, S ⇓k E', N      exec_stmt(env, S)  -> (env', notifications, cost)

``E`` maps argument and local-variable names to values; ``N`` maps program
identifiers to the boolean each program broadcast.  The disjoint-union
``N1 ⊎ N2`` of the semantics is enforced: a second notification for the same
program identifier raises :class:`NotificationClash`, because consolidated
programs must broadcast each constituent's result exactly once.

Library calls are resolved through a :class:`~repro.lang.functions
.FunctionTable`; optionally the interpreter memoises calls *within a single
run* purely for wall-clock efficiency of the host — memoisation does **not**
alter the accounted cost, so measured costs always reflect the paper's
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, MutableMapping

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from .cost import DEFAULT_COST_MODEL, CostModel
from .functions import FunctionTable

__all__ = [
    "Interpreter",
    "RunResult",
    "InterpError",
    "NotificationClash",
    "StepLimitExceeded",
    "combine_sequential",
    "run_program",
    "run_sequentially",
]

Value = object  # int | bool | str


class InterpError(Exception):
    """A dynamic error: unbound variable, type mismatch, unknown function."""


class NotificationClash(InterpError):
    """Raised when one run notifies the same program identifier twice."""


class StepLimitExceeded(InterpError):
    """Raised when a run exceeds the configured step budget."""


@dataclass
class RunResult:
    """The outcome of executing a statement or program.

    ``notification_costs`` records, per program identifier, the cumulative
    execution cost at the moment its result was broadcast — the *latency*
    of that query's answer.  The paper broadcasts results as soon as they
    are computed precisely to keep these latencies low (footnote 2), and
    its Section 8 discusses latency-aware consolidation; the latency
    experiment builds on this measurement.
    """

    env: dict[str, Value]
    notifications: dict[str, bool]
    cost: int
    notification_costs: dict[str, int] = field(default_factory=dict)

    def notification(self, pid: str) -> bool:
        return self.notifications[pid]

    def latency(self, pid: str) -> int:
        return self.notification_costs[pid]


class Interpreter:
    """Executes programs under Figure 2's cost semantics.

    Parameters
    ----------
    functions:
        The library-function table supplying implementations and call costs.
    cost_model:
        Per-operation costs; defaults to :data:`DEFAULT_COST_MODEL`.
    max_steps:
        A fuel budget guarding against runaway loops (each statement or
        expression node evaluated consumes one step).
    memoize_calls:
        When true, repeated library calls with identical arguments within a
        single ``run`` reuse the Python-level result.  Cost accounting is
        unaffected; this only speeds up the host interpreter.
    """

    def __init__(
        self,
        functions: FunctionTable,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_steps: int = 2_000_000,
        memoize_calls: bool = False,
    ) -> None:
        self.functions = functions
        self.cost_model = cost_model
        self.max_steps = max_steps
        self.memoize_calls = memoize_calls
        self._steps = 0
        self._call_cache: dict[tuple, Value] = {}
        self._elapsed = 0
        self._notification_costs: dict[str, int] = {}

    # -- public API ---------------------------------------------------------

    def _reset(self) -> None:
        """Clear all per-run state (fuel, memo cache, latency bookkeeping).

        Shared by :meth:`run` and :meth:`eval_expr` so both entry points
        start from the same blank slate — in particular the call-memo cache
        never leaks values from one evaluation into the next.
        """

        self._steps = 0
        self._call_cache.clear()
        self._elapsed = 0
        self._notification_costs = {}

    def run(self, program: Program, args: Mapping[str, Value]) -> RunResult:
        """Run ``program`` on an argument binding covering all its params."""

        missing = [p for p in program.params if p not in args]
        if missing:
            raise InterpError(f"missing arguments: {missing}")
        env: dict[str, Value] = {p: args[p] for p in program.params}
        self._reset()
        notifications: dict[str, bool] = {}
        cost = self._exec(program.body, env, notifications)
        return RunResult(
            env=env,
            notifications=notifications,
            cost=cost,
            notification_costs=dict(self._notification_costs),
        )

    def eval_expr(self, expr: Expr, env: Mapping[str, Value]) -> tuple[Value, int]:
        """Evaluate one expression; returns ``(value, cost)``."""

        self._reset()
        return self._eval(expr, env)

    # -- expressions ---------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(f"exceeded {self.max_steps} steps")

    def _eval(self, e: Expr, env: Mapping[str, Value]) -> tuple[Value, int]:
        self._tick()
        cm = self.cost_model
        if isinstance(e, IntConst):
            return e.value, cm.int_const
        if isinstance(e, StrConst):
            return e.value, cm.str_const
        if isinstance(e, BoolConst):
            return e.value, cm.bool_const
        if isinstance(e, Arg):
            try:
                return env[e.name], cm.arg
            except KeyError:
                raise InterpError(f"unbound argument {e.name!r}") from None
        if isinstance(e, Var):
            try:
                return env[e.name], cm.var
            except KeyError:
                raise InterpError(f"unbound variable {e.name!r}") from None
        if isinstance(e, Call):
            return self._eval_call(e, env)
        if isinstance(e, BinOp):
            lv, lc = self._eval(e.left, env)
            rv, rc = self._eval(e.right, env)
            if not isinstance(lv, int) or not isinstance(rv, int) or isinstance(lv, bool) or isinstance(rv, bool):
                raise InterpError(f"arithmetic on non-integers: {e}")
            if e.op == "+":
                v = lv + rv
            elif e.op == "-":
                v = lv - rv
            else:
                v = lv * rv
            return v, lc + rc + cm.arith_cost(e.op)
        if isinstance(e, Cmp):
            lv, lc = self._eval(e.left, env)
            rv, rc = self._eval(e.right, env)
            if e.op == "=":
                v = lv == rv
            else:
                if not isinstance(lv, int) or not isinstance(rv, int):
                    raise InterpError(f"ordering on non-integers: {e}")
                v = lv < rv if e.op == "<" else lv <= rv
            return v, lc + rc + cm.cmp_cost(e.op)
        if isinstance(e, Not):
            v, c = self._eval(e.operand, env)
            if not isinstance(v, bool):
                raise InterpError(f"negation of non-boolean: {e}")
            return (not v), c + cm.neg
        if isinstance(e, BoolOp):
            # Figure 2 evaluates both operands (no short-circuiting); the
            # calculus relies on this for its cost bounds, so we match it.
            lv, lc = self._eval(e.left, env)
            rv, rc = self._eval(e.right, env)
            if not isinstance(lv, bool) or not isinstance(rv, bool):
                raise InterpError(f"connective on non-booleans: {e}")
            v = (lv and rv) if e.op == "and" else (lv or rv)
            return v, lc + rc + cm.logic_cost(e.op)
        raise InterpError(f"unknown expression node {e!r}")

    def _eval_call(self, e: Call, env: Mapping[str, Value]) -> tuple[Value, int]:
        vals: list[Value] = []
        argcost = 0
        for a in e.args:
            v, c = self._eval(a, env)
            vals.append(v)
            argcost += c
        lib = self.functions[e.func]
        key = (e.func, tuple(vals)) if self.memoize_calls else None
        if key is not None and key in self._call_cache:
            result = self._call_cache[key]
        else:
            try:
                result = lib.fn(*vals)
            except Exception as exc:  # noqa: BLE001 - surface as InterpError
                raise InterpError(f"library call {e.func} failed: {exc}") from exc
            if key is not None:
                self._call_cache[key] = result
        return result, argcost + lib.cost

    # -- statements ----------------------------------------------------------

    def _exec(
        self,
        s: Stmt,
        env: MutableMapping[str, Value],
        notifications: dict[str, bool],
    ) -> int:
        self._tick()
        cm = self.cost_model
        if isinstance(s, Skip):
            return 0
        if isinstance(s, Assign):
            v, c = self._eval(s.expr, env)
            env[s.var] = v
            self._elapsed += c + cm.assign
            return c + cm.assign
        if isinstance(s, Notify):
            v, c = self._eval(s.expr, env)
            if not isinstance(v, bool):
                raise InterpError(f"notify of non-boolean: {s}")
            if s.pid in notifications:
                raise NotificationClash(f"duplicate notification for {s.pid!r}")
            notifications[s.pid] = v
            self._elapsed += c + cm.notify
            self._notification_costs[s.pid] = self._elapsed
            return c + cm.notify
        if isinstance(s, Seq):
            total = 0
            for sub in s.stmts:
                total += self._exec(sub, env, notifications)
            return total
        if isinstance(s, If):
            v, c = self._eval(s.cond, env)
            if not isinstance(v, bool):
                raise InterpError(f"branch on non-boolean: {s.cond}")
            self._elapsed += c + cm.branch
            branch = s.then if v else s.orelse
            return c + cm.branch + self._exec(branch, env, notifications)
        if isinstance(s, While):
            total = 0
            while True:
                v, c = self._eval(s.cond, env)
                if not isinstance(v, bool):
                    raise InterpError(f"loop on non-boolean: {s.cond}")
                total += c + cm.branch
                self._elapsed += c + cm.branch
                if not v:
                    return total
                total += self._exec(s.body, env, notifications)
        raise InterpError(f"unknown statement node {s!r}")


def run_program(
    program: Program,
    args: Mapping[str, Value],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    **kwargs,
) -> RunResult:
    """Convenience wrapper: build an interpreter and run one program."""

    return Interpreter(functions, cost_model, **kwargs).run(program, args)


def combine_sequential(results) -> RunResult:
    """Fold per-program :class:`RunResult`\\ s into the sequential baseline.

    Notification environments are combined disjointly; local environments
    are unioned with later programs winning on (formally disallowed,
    operationally harmless) name collisions.  Each program's broadcast
    latencies are offset by the cost of everything that ran before it.
    Shared by :func:`run_sequentially` and the compiled backend's
    sequential driver, so both baselines combine results identically.
    """

    env: dict[str, Value] = {}
    notifications: dict[str, bool] = {}
    notification_costs: dict[str, int] = {}
    cost = 0
    for r in results:
        env.update(r.env)
        for pid, value in r.notifications.items():
            if pid in notifications:
                raise NotificationClash(f"duplicate notification for {pid!r}")
            notifications[pid] = value
        # Latency in the sequential baseline: everything before this
        # program plus its own progress at broadcast time.
        for pid, at in r.notification_costs.items():
            notification_costs[pid] = cost + at
        cost += r.cost
    return RunResult(
        env=env,
        notifications=notifications,
        cost=cost,
        notification_costs=notification_costs,
    )


def run_sequentially(
    programs: list[Program],
    args: Mapping[str, Value],
    functions: FunctionTable,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    **kwargs,
) -> RunResult:
    """Run several programs in sequence on the same input.

    This is the ``Π1; Π2; ...`` baseline of Definition 1; see
    :func:`combine_sequential` for how the outcomes are merged.
    """

    interp = Interpreter(functions, cost_model, **kwargs)
    return combine_sequential(interp.run(p, args) for p in programs)
