"""Recursive-descent parser for the concrete syntax of the IR.

The grammar matches what :mod:`repro.lang.printer` emits::

    program  ::= "program" ident "(" [ident ("," ident)*] ")" "{" stmt* "}"
    stmt     ::= "skip" ";"
               | ident ":=" expr ";"
               | "notify" ident expr ";"
               | "if" "(" expr ")" "{" stmt* "}" ["else" "{" stmt* "}"]
               | "while" "(" expr ")" "{" stmt* "}"
    expr     ::= disjunction of conjunctions of (negated) comparisons
                 over arithmetic over atoms

Arguments are written ``@name``; ``>``, ``>=`` and ``!=`` are surface sugar
normalised exactly like the builders in :mod:`repro.lang.builder`.
Identifiers may contain dots (prefixed locals such as ``q1.x``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    FALSE,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    SKIP,
    Stmt,
    StrConst,
    TRUE,
    Var,
    While,
    seq,
)

__all__ = ["ParseError", "parse_expr", "parse_stmt", "parse_program"]


class ParseError(Exception):
    """A syntax error, with position information in the message."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<int>\d+)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<op>:=|<=|>=|==|!=|&&|\|\||[-+*<>!=(),;{}@])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"program", "skip", "notify", "if", "else", "while", "true", "false", "and", "or"}


@dataclass
class _Token:
    kind: str  # 'int' | 'string' | 'ident' | 'op' | 'eof'
    text: str
    pos: int


def _tokenize(src: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if m is None:
            raise ParseError(f"unexpected character {src[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        tokens.append(_Token(m.lastgroup or "op", m.group(), m.start()))
    tokens.append(_Token("eof", "", len(src)))
    return tokens


class _Parser:
    def __init__(self, src: str) -> None:
        self.tokens = _tokenize(src)
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok.text == text and tok.kind in ("op", "ident")

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r} but found {tok.text!r} at offset {tok.pos}")
        return tok

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident" or tok.text in _KEYWORDS:
            raise ParseError(f"expected identifier but found {tok.text!r} at offset {tok.pos}")
        return tok.text

    # -- expressions ---------------------------------------------------------

    def expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.at("or") or self.at("||"):
            self.next()
            left = BoolOp("or", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self.at("and") or self.at("&&"):
            self.next()
            left = BoolOp("and", left, self._not())
        return left

    def _not(self) -> Expr:
        if self.at("!"):
            self.next()
            return Not(self._not())
        return self._cmp()

    def _cmp(self) -> Expr:
        left = self._arith()
        tok = self.peek()
        if tok.text in ("<", "<=", "==", ">", ">=", "!="):
            self.next()
            right = self._arith()
            if tok.text == "<":
                return Cmp("<", left, right)
            if tok.text == "<=":
                return Cmp("<=", left, right)
            if tok.text == "==":
                return Cmp("=", left, right)
            if tok.text == ">":
                return Cmp("<", right, left)
            if tok.text == ">=":
                return Cmp("<=", right, left)
            return Not(Cmp("=", left, right))
        return left

    def _arith(self) -> Expr:
        left = self._term()
        while self.peek().text in ("+", "-") and self.peek().kind == "op":
            op = self.next().text
            left = BinOp(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._atom()
        while self.at("*"):
            self.next()
            left = BinOp("*", left, self._atom())
        return left

    def _atom(self) -> Expr:
        tok = self.peek()
        if tok.text == "-" and tok.kind == "op":
            # Unary minus: the printer emits negative IntConst as "(-120)".
            self.next()
            inner = self._atom()
            if isinstance(inner, IntConst):
                return IntConst(-inner.value)
            return BinOp("-", IntConst(0), inner)
        if tok.kind == "int":
            self.next()
            return IntConst(int(tok.text))
        if tok.kind == "string":
            self.next()
            raw = tok.text[1:-1]
            return StrConst(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if tok.text == "true":
            self.next()
            return TRUE
        if tok.text == "false":
            self.next()
            return FALSE
        if tok.text == "@":
            self.next()
            return Arg(self.expect_ident())
        if tok.text == "(":
            self.next()
            inner = self.expr()
            self.expect(")")
            return inner
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            name = self.expect_ident()
            if self.at("("):
                self.next()
                args: list[Expr] = []
                if not self.at(")"):
                    args.append(self.expr())
                    while self.at(","):
                        self.next()
                        args.append(self.expr())
                self.expect(")")
                return Call(name, tuple(args))
            return Var(name)
        raise ParseError(f"unexpected token {tok.text!r} at offset {tok.pos}")

    # -- statements ----------------------------------------------------------

    def stmts_until(self, closer: str) -> Stmt:
        out: list[Stmt] = []
        while not self.at(closer) and self.peek().kind != "eof":
            out.append(self.stmt())
        return seq(*out)

    def stmt(self) -> Stmt:
        tok = self.peek()
        if tok.text == "skip":
            self.next()
            self.expect(";")
            return SKIP
        if tok.text == "notify":
            self.next()
            pid = self.expect_ident()
            value = self.expr()
            self.expect(";")
            return Notify(pid, value)
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.expr()
            self.expect(")")
            self.expect("{")
            then = self.stmts_until("}")
            self.expect("}")
            orelse: Stmt = SKIP
            if self.at("else"):
                self.next()
                self.expect("{")
                orelse = self.stmts_until("}")
                self.expect("}")
            return If(cond, then, orelse)
        if tok.text == "while":
            self.next()
            self.expect("(")
            cond = self.expr()
            self.expect(")")
            self.expect("{")
            body = self.stmts_until("}")
            self.expect("}")
            return While(cond, body)
        name = self.expect_ident()
        self.expect(":=")
        value = self.expr()
        self.expect(";")
        return Assign(name, value)

    def program(self) -> Program:
        self.expect("program")
        pid = self.expect_ident()
        self.expect("(")
        params: list[str] = []
        if not self.at(")"):
            params.append(self.expect_ident())
            while self.at(","):
                self.next()
                params.append(self.expect_ident())
        self.expect(")")
        self.expect("{")
        body = self.stmts_until("}")
        self.expect("}")
        return Program(pid, tuple(params), body)

    def eof(self) -> None:
        tok = self.peek()
        if tok.kind != "eof":
            raise ParseError(f"trailing input starting at {tok.text!r} (offset {tok.pos})")


def parse_expr(src: str) -> Expr:
    """Parse a single expression."""

    p = _Parser(src)
    e = p.expr()
    p.eof()
    return e


def parse_stmt(src: str) -> Stmt:
    """Parse a statement sequence (returned in ``seq`` normal form)."""

    p = _Parser(src)
    s = p.stmts_until("\0")
    p.eof()
    return s


def parse_program(src: str) -> Program:
    """Parse a full ``program pid(args) { ... }`` definition."""

    p = _Parser(src)
    prog = p.program()
    p.eof()
    return prog
