"""Library function tables.

Programs in the consolidation language call externally provided, pure,
deterministic functions (``eval`` in Figure 2).  A :class:`FunctionTable`
supplies, for each function name:

* a Python implementation used by the interpreter,
* a fixed invocation cost used by the cost semantics, and
* a result sort (``int`` / ``bool`` / ``str``) used by type checking and the
  SMT bridge.

The invocation cost is the ``m`` of ``eval(f(c1..ck)) = (c, m)``; argument
evaluation costs are added by the interpreter separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

__all__ = ["Sort", "INT", "BOOL", "STR", "LibraryFunction", "FunctionTable"]


Sort = str
INT: Sort = "int"
BOOL: Sort = "bool"
STR: Sort = "str"
_SORTS = (INT, BOOL, STR)


@dataclass(frozen=True)
class LibraryFunction:
    """A pure library function visible to UDFs.

    ``fn`` must be deterministic and side-effect free — this is the paper's
    well-behavedness requirement, and it is what makes memoising a call
    result across programs sound.
    """

    name: str
    fn: Callable[..., object]
    cost: int = 10
    result_sort: Sort = INT
    arg_sorts: tuple[Sort, ...] | None = None

    def __post_init__(self) -> None:
        if self.result_sort not in _SORTS:
            raise ValueError(f"unknown sort {self.result_sort!r}")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


class FunctionTable:
    """An immutable-by-convention registry of library functions."""

    def __init__(self, functions: Iterable[LibraryFunction] = ()) -> None:
        self._functions: dict[str, LibraryFunction] = {}
        for f in functions:
            self.register(f)

    def register(self, f: LibraryFunction) -> None:
        if f.name in self._functions:
            raise ValueError(f"duplicate library function {f.name!r}")
        self._functions[f.name] = f

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __getitem__(self, name: str) -> LibraryFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"unknown library function {name!r}") from None

    def __iter__(self):
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def names(self) -> list[str]:
        return sorted(self._functions)

    def merged(self, other: "FunctionTable") -> "FunctionTable":
        """The union of two tables; shared names must agree exactly."""

        merged = FunctionTable(self)
        for f in other:
            if f.name in merged._functions:
                if merged._functions[f.name] is not f and merged._functions[f.name] != f:
                    raise ValueError(f"conflicting definitions for {f.name!r}")
            else:
                merged.register(f)
        return merged
