"""Greedy delta-debugging over UDF batches.

Given a failing batch and a predicate that re-checks the failure, shrink
to a local minimum: first drop whole programs, then repeatedly apply the
single most aggressive structural reduction that keeps the predicate true
(delete a statement, replace a branch by one arm, unroll a loop to its
body, collapse a sub-expression to a constant) until nothing smaller still
fails.

The predicate is the arbiter of validity: a reduction may orphan a
variable or drop a ``notify`` — if that changes the failure (or masks it),
the predicate returns False and the candidate is discarded.  Reductions
are yielded most-aggressive-first so big subtrees disappear in few
predicate calls, and the total number of predicate invocations is bounded
by ``max_checks`` (each one typically re-runs the oracle battery, which is
the expensive part).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..lang.ast import (
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    SKIP,
    Seq,
    Skip,
    Stmt,
    While,
    seq,
)
from ..lang.visitors import notified_pids, stmt_size

__all__ = ["shrink_batch", "batch_size"]


def batch_size(programs: Sequence[Program]) -> int:
    """Total AST node count across the batch (the minimisation metric)."""

    return sum(stmt_size(p.body) for p in programs)


_BOOLISH = (Cmp, Not, BoolOp, BoolConst)


def _min_consts(e: Expr) -> Iterator[Expr]:
    """The smallest replacements of ``e``'s (syntactic) sort."""

    if isinstance(e, _BOOLISH):
        if not isinstance(e, BoolConst):
            yield BoolConst(True)
            yield BoolConst(False)
    elif not isinstance(e, IntConst):
        yield IntConst(0)


def _expr_reductions(e: Expr) -> Iterator[Expr]:
    """Strictly smaller variants of ``e``, most aggressive first."""

    yield from _min_consts(e)
    if isinstance(e, BinOp):
        yield e.left
        yield e.right
        for red in _expr_reductions(e.left):
            yield BinOp(e.op, red, e.right)
        for red in _expr_reductions(e.right):
            yield BinOp(e.op, e.left, red)
    elif isinstance(e, Cmp):
        for red in _expr_reductions(e.left):
            yield Cmp(e.op, red, e.right)
        for red in _expr_reductions(e.right):
            yield Cmp(e.op, e.left, red)
    elif isinstance(e, Not):
        if isinstance(e.operand, _BOOLISH):
            yield e.operand
        for red in _expr_reductions(e.operand):
            yield Not(red)
    elif isinstance(e, BoolOp):
        yield e.left
        yield e.right
        for red in _expr_reductions(e.left):
            yield BoolOp(e.op, red, e.right)
        for red in _expr_reductions(e.right):
            yield BoolOp(e.op, e.left, red)
    elif isinstance(e, Call):
        for i, a in enumerate(e.args):
            for red in _expr_reductions(a):
                yield Call(e.func, e.args[:i] + (red,) + e.args[i + 1 :])


def _stmt_reductions(s: Stmt) -> Iterator[Stmt]:
    """Strictly smaller variants of ``s``, most aggressive first."""

    if isinstance(s, Skip):
        return
    if isinstance(s, Seq):
        # Drop each element (biggest first), then reduce in place.
        order = sorted(range(len(s.stmts)), key=lambda i: -stmt_size(s.stmts[i]))
        for i in order:
            yield seq(*(s.stmts[:i] + s.stmts[i + 1 :]))
        for i in order:
            for red in _stmt_reductions(s.stmts[i]):
                yield seq(*(s.stmts[:i] + (red,) + s.stmts[i + 1 :]))
        return
    if isinstance(s, Assign):
        for red in _expr_reductions(s.expr):
            yield Assign(s.var, red)
        return
    if isinstance(s, Notify):
        for red in _expr_reductions(s.expr):
            yield Notify(s.pid, red)
        return
    if isinstance(s, If):
        yield s.then
        yield s.orelse
        for red in _stmt_reductions(s.then):
            yield If(s.cond, red, s.orelse)
        for red in _stmt_reductions(s.orelse):
            yield If(s.cond, s.then, red)
        for red in _expr_reductions(s.cond):
            yield If(red, s.then, s.orelse)
        return
    if isinstance(s, While):
        yield SKIP
        yield s.body
        for red in _stmt_reductions(s.body):
            yield While(s.cond, red)
        for red in _expr_reductions(s.cond):
            yield While(red, s.body)
        return


def shrink_batch(
    programs: Sequence[Program],
    is_failing: Callable[[list[Program]], bool],
    max_checks: int = 2000,
) -> list[Program]:
    """Minimise a failing batch while ``is_failing`` stays true.

    Returns the smallest batch found; the input is returned unchanged if
    the predicate does not even hold on it (nothing to minimise).
    """

    best = list(programs)
    if not is_failing(best):
        return best
    checks = [max_checks]
    # Each surviving program must keep its notification interface: a UDF
    # that no longer notifies its pid is malformed for the dataflow
    # operators, and the crash it causes would masquerade as the original
    # failure.  (Dropping a *whole* program removes its pids — that's fine.)
    interface = {p.pid: notified_pids(p.body) for p in programs}

    def try_candidate(candidate: list[Program]) -> bool:
        if checks[0] <= 0:
            return False
        for p in candidate:
            if notified_pids(p.body) != interface[p.pid]:
                return False
        checks[0] -= 1
        return is_failing(candidate)

    improved = True
    while improved and checks[0] > 0:
        improved = False
        # 1. Drop whole programs, biggest first.
        if len(best) > 1:
            order = sorted(range(len(best)), key=lambda i: -stmt_size(best[i].body))
            for i in order:
                candidate = best[:i] + best[i + 1 :]
                if try_candidate(candidate):
                    best = candidate
                    improved = True
                    break
            if improved:
                continue
        # 2. One structural reduction inside one program.
        for i, p in enumerate(best):
            for body in _stmt_reductions(p.body):
                candidate = best[:i] + [Program(p.pid, p.params, body)] + best[i + 1 :]
                if try_candidate(candidate):
                    best = candidate
                    improved = True
                    break
            if improved:
                break
    return best
