"""The differential oracle battery.

One generated (or corpus) batch of UDFs is pushed through every redundant
execution path the repository has, and every pair of paths that must agree
is checked:

* **interp vs compiled** — each program runs on every input under the
  tree-walking interpreter and the compiled backend; environments,
  notifications, *exact* cost and per-pid notification latencies must all
  match (or both paths must fail with the same error class);
* **whereMany vs whereConsolidated** — the batch runs through the dataflow
  engine both unconsolidated and consolidated; the per-pid result buckets
  must be identical and the consolidated UDF cost must obey the
  cost-never-worse bound (Theorem 2);
* **serial vs thread vs process** — ``consolidate_all`` is deterministic,
  so all executors must produce the *structurally identical* merged
  program;
* **check_soundness** — Definition 1 re-checked directly on the merged
  program (notification equality + cost bound per input);
* **validate_consolidation** — the static validator must not *refute* the
  merge (``unknown`` is acceptable: it is the validator giving up, not a
  counterexample);
* **calibrated planner parity** — the batch is consolidated again under
  the cost-driven planner (uniform fallback model); reordered, skipped or
  budget-demoted merges must leave the notification buckets identical to
  ``whereMany`` and keep the consolidated cost never worse;
* **prefilter soundness** — every program (and the merged program) gets a
  synthesized reject-early guard; a row the guard rejects must produce no
  truthy notification when the full UDF runs;
* **interp vs compiled vs vectorized** — the three-way backend oracle:
  every program (and the merged program) runs as one column batch under
  the vectorized backend, and per record the notifications, *exact* cost
  and per-pid latencies must match the interpreter (closing the triangle:
  interp↔compiled is already checked above); then the whole batch runs
  through the dataflow engine under ``backend="vectorized"`` and must
  produce identical notification buckets and *exactly equal* UDF cost to
  the compiled run, for whereMany and whereConsolidated alike.

Every disagreement comes back as a :class:`Discrepancy`; an empty list is
the oracle saying "all paths agree on this case".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..config import ExecutionConfig
from ..consolidation.divide_conquer import (
    SMT_UNKNOWN_NOTE,
    ConsolidationReport,
    consolidate_all,
)
from ..datasets.records import Dataset
from ..lang.ast import Program
from ..lang.compile import make_runner
from ..lang.cost import DEFAULT_COST_MODEL, CostModel
from ..lang.interp import Interpreter
from ..naiad.linq import run_where_consolidated, run_where_many

__all__ = ["Discrepancy", "BatteryResult", "run_battery"]


@dataclass
class Discrepancy:
    """One disagreement between two execution paths that must agree."""

    oracle: str  # 'backend' | 'dataflow' | 'executor' | 'soundness' | 'validator' | 'planner' | 'prefilter' | 'vectorized'
    detail: str
    args: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass
class BatteryResult:
    """Everything one battery run observed (kept for reporting/shrinking)."""

    discrepancies: list[Discrepancy] = field(default_factory=list)
    report: ConsolidationReport | None = None
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.discrepancies


def _run_or_error(runner, args):
    """Run one path; normalise the outcome to (result, error-class-name)."""

    try:
        return runner(args), None
    except Exception as exc:  # noqa: BLE001 - the *class* is the observable
        return None, type(exc).__name__


def _check_backends(
    programs: Sequence[Program],
    dataset: Dataset,
    inputs: Sequence[Mapping[str, object]],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    interp = Interpreter(dataset.functions, cost_model)
    for program in programs:
        compiled = make_runner(
            program, dataset.functions, cost_model, backend="compiled"
        )
        for args in inputs:
            want, want_err = _run_or_error(
                lambda a, p=program: interp.run(p, a), args
            )
            got, got_err = _run_or_error(compiled, args)
            if want_err or got_err:
                if want_err != got_err:
                    out.append(
                        Discrepancy(
                            "backend",
                            f"{program.pid}: interp error {want_err}, "
                            f"compiled error {got_err}",
                            dict(args),
                        )
                    )
                continue
            if want.notifications != got.notifications:
                out.append(
                    Discrepancy(
                        "backend",
                        f"{program.pid}: notifications differ: "
                        f"interp {want.notifications} vs compiled {got.notifications}",
                        dict(args),
                    )
                )
            elif want.cost != got.cost:
                out.append(
                    Discrepancy(
                        "backend",
                        f"{program.pid}: cost differs: interp {want.cost} "
                        f"vs compiled {got.cost}",
                        dict(args),
                    )
                )
            elif want.notification_costs != got.notification_costs:
                out.append(
                    Discrepancy(
                        "backend",
                        f"{program.pid}: notification latencies differ: "
                        f"interp {want.notification_costs} vs "
                        f"compiled {got.notification_costs}",
                        dict(args),
                    )
                )
            elif want.env != got.env:
                out.append(
                    Discrepancy(
                        "backend",
                        f"{program.pid}: final environments differ",
                        dict(args),
                    )
                )


def _check_dataflow(
    programs: Sequence[Program],
    dataset: Dataset,
    rows: Sequence[object],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> ConsolidationReport | None:
    config = ExecutionConfig(cost_model=cost_model)
    try:
        many = run_where_many(rows, programs, dataset.functions, config=config)
        consolidated, report = run_where_consolidated(
            rows, programs, dataset.functions, config=config
        )
    except Exception as exc:  # noqa: BLE001 - a crash in either path is a finding
        out.append(
            Discrepancy("dataflow", f"dataflow run raised {type(exc).__name__}: {exc}")
        )
        return None
    pids = [p.pid for p in programs]
    for pid in pids:
        a = many.buckets.get(pid, [])
        b = consolidated.buckets.get(pid, [])
        if a != b:
            out.append(
                Discrepancy(
                    "dataflow",
                    f"bucket {pid!r} differs: whereMany {a!r} "
                    f"vs whereConsolidated {b!r}",
                )
            )
    if consolidated.metrics.udf_cost > many.metrics.udf_cost:
        out.append(
            Discrepancy(
                "dataflow",
                "cost-never-worse violated: consolidated UDF cost "
                f"{consolidated.metrics.udf_cost} > whereMany "
                f"{many.metrics.udf_cost}",
            )
        )
    return report


def _check_executors(
    programs: Sequence[Program],
    dataset: Dataset,
    cost_model: CostModel,
    executors: Sequence[str],
    out: list[Discrepancy],
) -> None:
    if len(programs) < 2 or len(executors) < 2:
        return
    reference = None
    for executor in executors:
        try:
            report = consolidate_all(
                list(programs),
                dataset.functions,
                cost_model,
                executor=executor,
            )
        except Exception as exc:  # noqa: BLE001
            out.append(
                Discrepancy(
                    "executor",
                    f"consolidate_all(executor={executor!r}) raised "
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        # The SMT-unknown note is deterministic precision loss, identical
        # across executors — not an executor-specific fallback.
        hard = report.skipped_pairs or [
            d for d in report.degradations if not d.startswith(SMT_UNKNOWN_NOTE)
        ]
        if hard:
            out.append(
                Discrepancy(
                    "executor",
                    f"executor {executor!r} degraded unexpectedly: {hard}",
                )
            )
        if reference is None:
            reference = (executor, report.program)
        elif report.program != reference[1]:
            out.append(
                Discrepancy(
                    "executor",
                    f"merged programs differ between executors "
                    f"{reference[0]!r} and {executor!r}",
                )
            )


def _check_soundness(
    programs: Sequence[Program],
    report: ConsolidationReport,
    dataset: Dataset,
    inputs: Sequence[Mapping[str, object]],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    from ..consolidation.verify import check_soundness

    sound = check_soundness(
        list(programs), report.program, dataset.functions, inputs, cost_model
    )
    for violation in sound.violations:
        out.append(
            Discrepancy(
                "soundness",
                f"{violation.kind}: {violation.detail}",
                dict(violation.args),
            )
        )


def _check_validator(
    programs: Sequence[Program],
    report: ConsolidationReport,
    dataset: Dataset,
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    try:
        from ..analysis.static import validate_consolidation

        validation = validate_consolidation(
            list(programs), report.program, dataset.functions, cost_model
        )
    except Exception as exc:  # noqa: BLE001 - the validator crashing is a finding
        out.append(
            Discrepancy(
                "validator", f"validate_consolidation raised {type(exc).__name__}: {exc}"
            )
        )
        return
    if validation.refuted:
        out.append(
            Discrepancy(
                "validator",
                "static validator refuted the merge: "
                + "; ".join(validation.details),
            )
        )


def _check_prefilter(
    programs: Sequence[Program],
    report: ConsolidationReport | None,
    dataset: Dataset,
    inputs: Sequence[Mapping[str, object]],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    """Prefilter soundness: a rejected row must notify nobody (truthily).

    Every program in the batch — and the merged program, when dataflow
    produced one — gets a synthesized guard; for each input the guard
    rejects, the full UDF is run under the interpreter and must yield no
    truthy notification.  A full run that *raises* notifies nobody, so a
    rejection there is correct, not a discrepancy.  Synthesis itself must
    never raise (degradation to ``phi = true`` is its only failure mode).
    """

    from ..analysis.prefilter import compile_prefilter, synthesize_prefilter

    interp = Interpreter(dataset.functions, cost_model)
    targets = list(programs)
    if report is not None:
        targets.append(report.program)
    for program in targets:
        try:
            prefilter = synthesize_prefilter(program, dataset.functions, cost_model)
            guard = compile_prefilter(prefilter, program, dataset.functions, cost_model)
        except Exception as exc:  # noqa: BLE001 - "never raises" is the contract
            out.append(
                Discrepancy(
                    "prefilter",
                    f"{program.pid}: synthesis raised {type(exc).__name__}: {exc}",
                )
            )
            continue
        if guard is None:
            continue
        for args in inputs:
            passes, _cost = guard(args)
            if passes:
                continue
            try:
                result = interp.run(program, args)
            except Exception:  # noqa: BLE001 - a crashing UDF notifies nobody
                continue
            truthy = [pid for pid, value in result.notifications.items() if value]
            if truthy:
                out.append(
                    Discrepancy(
                        "prefilter",
                        f"{program.pid}: prefilter rejected a row that "
                        f"notifies {truthy}",
                        dict(args),
                    )
                )


def _check_planner(
    programs: Sequence[Program],
    dataset: Dataset,
    rows: Sequence[object],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    """Calibrated-planner parity: planning must never change semantics.

    The cost-driven planner reorders merges, skips predicted-unprofitable
    pairs (composing them sequentially) and may demote merges to no-SMT
    under budget — all of which must be *plan*-level decisions only.  The
    batch is consolidated again under ``planner="calibrated"`` (with the
    uniform fallback model, so the check needs no trace) and its dataflow
    run must reproduce the ``whereMany`` baseline's buckets exactly,
    with consolidated UDF cost never worse (Theorem 2 survives planning).
    """

    if len(programs) < 2:
        return
    config = ExecutionConfig(cost_model=cost_model, planner="calibrated")
    try:
        many = run_where_many(rows, programs, dataset.functions, config=config)
        planned, report = run_where_consolidated(
            rows, programs, dataset.functions, config=config
        )
    except Exception as exc:  # noqa: BLE001 - a planner crash is a finding
        out.append(
            Discrepancy(
                "planner",
                f"calibrated-planner run raised {type(exc).__name__}: {exc}",
            )
        )
        return
    for pid in (p.pid for p in programs):
        a = many.buckets.get(pid, [])
        b = planned.buckets.get(pid, [])
        if a != b:
            out.append(
                Discrepancy(
                    "planner",
                    f"bucket {pid!r} differs under the calibrated planner: "
                    f"whereMany {a!r} vs planned {b!r}",
                )
            )
    if planned.metrics.udf_cost > many.metrics.udf_cost:
        out.append(
            Discrepancy(
                "planner",
                "cost-never-worse violated under the calibrated planner: "
                f"consolidated UDF cost {planned.metrics.udf_cost} > "
                f"whereMany {many.metrics.udf_cost}",
            )
        )
    if report.planner != "calibrated":
        out.append(
            Discrepancy(
                "planner",
                f"report.planner is {report.planner!r}, expected 'calibrated'",
            )
        )


def _check_vectorized(
    programs: Sequence[Program],
    report: ConsolidationReport | None,
    dataset: Dataset,
    rows: Sequence[object],
    inputs: Sequence[Mapping[str, object]],
    cost_model: CostModel,
    out: list[Discrepancy],
) -> None:
    """Three-way interp vs compiled vs vectorized differential oracle.

    Record level: each program's whole input set runs as *one* column
    batch; per record the batch must reproduce the interpreter's
    notifications, exact cost and notification latencies — or, when some
    record errors, the batch must raise the same error class the
    interpreter raises first (the per-row fallback replays records in
    order, so the first erroring record wins on both paths).  A batch
    that silently *returns* where the interpreter errors is exactly how a
    mis-masked kernel shows up.  Bucket level: the dataflow engine runs
    the batch under ``backend="vectorized"`` and must match the compiled
    run's buckets and exact UDF cost for whereMany and (reusing the
    already-consolidated merged program) whereConsolidated.
    """

    from ..lang.vectorize import columns_from_records, vectorize_program
    from ..naiad.linq import from_collection

    interp = Interpreter(dataset.functions, cost_model)
    targets = list(programs)
    if report is not None:
        targets.append(report.program)
    for program in targets:
        wants = []
        first_err = None
        for args in inputs:
            want, want_err = _run_or_error(
                lambda a, p=program: interp.run(p, a), args
            )
            if want_err is not None:
                first_err = want_err
                break
            wants.append(want)
        vp = vectorize_program(program, dataset.functions, cost_model)
        try:
            columns = columns_from_records(
                program, [args[program.params[0]] for args in inputs]
            )
            batch = vp.run_batch(columns, len(inputs))
            batch_err = None
        except Exception as exc:  # noqa: BLE001 - the class is the observable
            batch, batch_err = None, type(exc).__name__
        if first_err is not None or batch_err is not None:
            if first_err != batch_err:
                out.append(
                    Discrepancy(
                        "vectorized",
                        f"{program.pid}: interp error {first_err}, "
                        f"vectorized batch error {batch_err}",
                    )
                )
            continue
        for i, want in enumerate(wants):
            if want.notifications != batch.notifications_at(i):
                out.append(
                    Discrepancy(
                        "vectorized",
                        f"{program.pid}: notifications differ at record {i}: "
                        f"interp {want.notifications} vs "
                        f"vectorized {batch.notifications_at(i)}",
                        dict(inputs[i]),
                    )
                )
            elif want.cost != batch.costs[i]:
                out.append(
                    Discrepancy(
                        "vectorized",
                        f"{program.pid}: cost differs at record {i}: "
                        f"interp {want.cost} vs vectorized {batch.costs[i]}",
                        dict(inputs[i]),
                    )
                )
            elif want.notification_costs != batch.notification_costs_at(i):
                out.append(
                    Discrepancy(
                        "vectorized",
                        f"{program.pid}: notification latencies differ at "
                        f"record {i}: interp {want.notification_costs} vs "
                        f"vectorized {batch.notification_costs_at(i)}",
                        dict(inputs[i]),
                    )
                )
    compiled_cfg = ExecutionConfig(cost_model=cost_model, backend="compiled")
    vector_cfg = ExecutionConfig(cost_model=cost_model, backend="vectorized")
    try:
        many_c = run_where_many(rows, programs, dataset.functions, config=compiled_cfg)
        many_v = run_where_many(rows, programs, dataset.functions, config=vector_cfg)
    except Exception as exc:  # noqa: BLE001 - a crash in either path is a finding
        out.append(
            Discrepancy(
                "vectorized", f"whereMany run raised {type(exc).__name__}: {exc}"
            )
        )
        return
    if many_c.buckets != many_v.buckets:
        out.append(
            Discrepancy(
                "vectorized",
                "whereMany buckets differ between compiled and vectorized",
            )
        )
    elif many_c.metrics.udf_cost != many_v.metrics.udf_cost:
        out.append(
            Discrepancy(
                "vectorized",
                f"whereMany UDF cost differs: compiled "
                f"{many_c.metrics.udf_cost} vs vectorized "
                f"{many_v.metrics.udf_cost}",
            )
        )
    if report is None:
        return
    pids = [p.pid for p in programs]
    results = {}
    for label, cfg in (("compiled", compiled_cfg), ("vectorized", vector_cfg)):
        try:
            results[label] = (
                from_collection(rows, config=cfg)
                .where_consolidated(report.program, pids, dataset.functions)
                .run(cfg)
            )
        except Exception as exc:  # noqa: BLE001
            out.append(
                Discrepancy(
                    "vectorized",
                    f"whereConsolidated[{label}] raised {type(exc).__name__}: {exc}",
                )
            )
            return
    cons_c, cons_v = results["compiled"], results["vectorized"]
    if cons_c.buckets != cons_v.buckets:
        out.append(
            Discrepancy(
                "vectorized",
                "whereConsolidated buckets differ between compiled and vectorized",
            )
        )
    elif cons_c.metrics.udf_cost != cons_v.metrics.udf_cost:
        out.append(
            Discrepancy(
                "vectorized",
                f"whereConsolidated UDF cost differs: compiled "
                f"{cons_c.metrics.udf_cost} vs vectorized "
                f"{cons_v.metrics.udf_cost}",
            )
        )


def run_battery(
    programs: Sequence[Program],
    dataset: Dataset,
    inputs: Sequence[Mapping[str, object]] | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    executors: Sequence[str] = ("serial", "thread"),
    check_validator: bool = True,
    deadline: float | None = None,
) -> BatteryResult:
    """Run every differential oracle over one batch; collect disagreements.

    ``inputs`` defaults to a spread of the dataset's rows.  ``executors``
    controls the ``consolidate_all`` parity check (pass all three of
    ``("serial", "thread", "process")`` for the full, slower sweep).
    ``deadline`` is an absolute :func:`time.perf_counter` instant; it is
    re-checked between oracle stages, so one slow battery cannot overrun a
    fuzzing time budget by a whole five-stage run.  A battery cut short
    comes back with ``timed_out=True`` and only the stages that finished.
    """

    if inputs is None:
        step = max(1, len(dataset.rows) // 6)
        inputs = [{programs[0].params[0]: r} for r in dataset.rows[::step][:6]]
    rows = [args[programs[0].params[0]] for args in inputs]
    result = BatteryResult()
    out = result.discrepancies

    def expired() -> bool:
        if deadline is not None and time.perf_counter() > deadline:
            result.timed_out = True
            return True
        return False

    if expired():
        return result
    _check_backends(programs, dataset, inputs, cost_model, out)
    if expired():
        return result
    report = _check_dataflow(programs, dataset, rows, cost_model, out)
    result.report = report
    if expired():
        return result
    _check_executors(programs, dataset, cost_model, executors, out)
    if report is not None:
        if expired():
            return result
        _check_soundness(programs, report, dataset, inputs, cost_model, out)
        if check_validator:
            if expired():
                return result
            _check_validator(programs, report, dataset, cost_model, out)
    if expired():
        return result
    _check_planner(programs, dataset, rows, cost_model, out)
    if expired():
        return result
    _check_prefilter(programs, report, dataset, inputs, cost_model, out)
    if expired():
        return result
    _check_vectorized(programs, report, dataset, rows, inputs, cost_model, out)
    return result
