"""The on-disk regression corpus (``tests/corpus/``) and its replayer.

Every file is one minimized case in a line-oriented text format that both
humans and the concrete-syntax parser read directly::

    # name: compile-notify-flip
    # schema: weather
    # seed: 41
    # size: 2
    # fault: miscompile
    # expect: discrepancy
    # note: minimal program whose notification a miscompile flips
    program q0(row) {
      notify q0 true;
    }

Header lines are ``# key: value`` pairs; everything after the first
non-comment line is a sequence of programs in the concrete syntax of
:mod:`repro.lang.parser`.  Recognised keys:

* ``schema`` (required) — one of the five domain schemas;
* ``fault`` — a fault context from :mod:`repro.testing.faults` to replay
  under (default ``none``);
* ``expect`` — ``pass`` (default; the battery must report *zero*
  discrepancies) or ``discrepancy`` (the battery must catch at least one:
  these cases pin down that the oracle detects a bug class);
* ``inputs`` — JSON list of row handles to drive the oracles with
  (default: the standard spread of the schema's dataset);
* ``seed``/``size``/``name``/``note`` — provenance, free-form.

Replaying a case (:func:`replay_case`) runs the full differential oracle
battery under the declared fault and checks the declared expectation.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..lang.ast import Program
from ..lang.parser import parse_program
from ..lang.printer import program_to_str

__all__ = ["CorpusCase", "read_case", "write_case", "replay_case", "corpus_files"]

_HEADER_RE = re.compile(r"^#\s*([A-Za-z_]+)\s*:\s*(.*)$")

_FAULTS = ("none", "smt_unknown", "smt_crash", "compile_cache_miss",
           "compile_fallback", "miscompile", "consolidation_pair_crash",
           "vectorize_crash", "vectorize_mismask")


@dataclass
class CorpusCase:
    """One replayable regression case."""

    schema: str
    programs: list[Program]
    name: str = ""
    fault: str = "none"
    expect: str = "pass"  # 'pass' | 'discrepancy'
    inputs: list[int] | None = None
    meta: dict = field(default_factory=dict)


def _fault_context(fault: str):
    from contextlib import nullcontext

    from . import faults

    if fault == "none":
        return nullcontext()
    if fault not in _FAULTS:
        raise ValueError(f"unknown fault {fault!r}; choose from {_FAULTS}")
    return getattr(faults, fault)()


def read_case(path: str | Path) -> CorpusCase:
    """Parse one corpus file."""

    text = Path(path).read_text()
    meta: dict[str, str] = {}
    body_lines: list[str] = []
    in_header = True
    for line in text.splitlines():
        if in_header:
            m = _HEADER_RE.match(line)
            if m:
                meta[m.group(1).lower()] = m.group(2).strip()
                continue
            if not line.strip():
                continue
            in_header = False
        body_lines.append(line)
    if "schema" not in meta:
        raise ValueError(f"{path}: missing '# schema:' header")

    # Split the body at each top-level "program " keyword.
    chunks: list[list[str]] = []
    for line in body_lines:
        if line.lstrip().startswith("program "):
            chunks.append([line])
        elif chunks:
            chunks[-1].append(line)
        elif line.strip():
            raise ValueError(f"{path}: content before first program: {line!r}")
    if not chunks:
        raise ValueError(f"{path}: no programs")
    programs = [parse_program("\n".join(chunk)) for chunk in chunks]

    inputs = None
    if "inputs" in meta:
        inputs = json.loads(meta["inputs"])
    return CorpusCase(
        schema=meta["schema"],
        programs=programs,
        name=meta.get("name", Path(path).stem),
        fault=meta.get("fault", "none"),
        expect=meta.get("expect", "pass"),
        inputs=inputs,
        meta=meta,
    )


def write_case(path: str | Path, case: CorpusCase) -> Path:
    """Render one case to disk in the corpus format; returns the path."""

    path = Path(path)
    lines = [f"# name: {case.name or path.stem}", f"# schema: {case.schema}"]
    for key in ("seed", "size", "note"):
        if key in case.meta:
            lines.append(f"# {key}: {case.meta[key]}")
    if case.fault != "none":
        lines.append(f"# fault: {case.fault}")
    if case.expect != "pass":
        lines.append(f"# expect: {case.expect}")
    if case.inputs is not None:
        lines.append(f"# inputs: {json.dumps(case.inputs)}")
    lines.append("")
    for program in case.programs:
        lines.append(program_to_str(program).rstrip())
        lines.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines))
    return path


def replay_case(case: CorpusCase, executors: Sequence[str] = ("serial", "thread")):
    """Run the oracle battery on a corpus case under its declared fault.

    Returns the :class:`~repro.testing.oracles.BatteryResult`; raises
    ``AssertionError`` when the outcome contradicts the case's ``expect``
    header.
    """

    from .generator import schema_dataset
    from .oracles import run_battery

    dataset = schema_dataset(case.schema)
    param = case.programs[0].params[0]
    inputs = None
    if case.inputs is not None:
        inputs = [{param: row} for row in case.inputs]
    check_validator = True
    if case.fault != "none":
        # Under an injected fault the cross-executor parity and the static
        # validator are not meaningful oracles (stateful fault counters make
        # executors diverge; solver crashes escape through the validator);
        # what a fault case asserts is that the *execution* paths still
        # agree — dataflow equality, soundness, backend differential.
        executors = ("serial",)
        check_validator = case.fault in (
            "smt_unknown", "compile_cache_miss",
            "vectorize_crash", "vectorize_mismask",
        )
    with _fault_context(case.fault):
        result = run_battery(
            case.programs,
            dataset,
            inputs=inputs,
            executors=executors,
            check_validator=check_validator,
        )
    if case.expect == "pass" and not result.ok:
        raise AssertionError(
            f"corpus case {case.name!r} expected zero discrepancies, got: "
            + "; ".join(str(d) for d in result.discrepancies)
        )
    if case.expect == "discrepancy" and result.ok:
        raise AssertionError(
            f"corpus case {case.name!r} expected the battery to catch a "
            "discrepancy, but every oracle passed — the harness lost its "
            "ability to detect this bug class"
        )
    return result


def corpus_files(directory: str | Path) -> list[Path]:
    """All corpus case files under ``directory``, sorted for determinism."""

    return sorted(Path(directory).glob("*.txt"))
