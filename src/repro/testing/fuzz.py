"""The fuzzing driver behind ``repro fuzz``.

Round-robins generated cases across the five domain schemas, runs the
differential oracle battery on each, and — when a case fails — shrinks it
with the delta-debugger and (optionally) writes the minimized case into
the regression corpus.  Every case is identified by its replayable
``(seed, schema, size)`` triple, printed with any failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .corpus import CorpusCase, write_case
from .generator import SCHEMAS, CaseSpec, case_inputs, generate_case, schema_dataset
from .oracles import run_battery
from .shrinker import batch_size, shrink_batch

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass
class FuzzFailure:
    """One case on which some oracle pair disagreed, plus its minimisation."""

    spec: CaseSpec
    oracles: list[str]
    details: list[str]
    shrunk_size: int = 0
    corpus_path: str | None = None


@dataclass
class FuzzReport:
    """The outcome of one fuzzing run."""

    cases_run: int = 0
    elapsed: float = 0.0
    per_schema: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _slug(spec: CaseSpec) -> str:
    return f"fuzz-{spec.schema}-seed{spec.seed}-size{spec.size}"


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    schemas: Sequence[str] | None = None,
    size: int = 3,
    time_budget: float | None = None,
    emit_corpus: str | None = None,
    executors: Sequence[str] = ("serial", "thread"),
    shrink: bool = True,
    progress=None,
) -> FuzzReport:
    """Fuzz ``cases`` generated batches; return the aggregate report.

    ``seed`` derives every case's own seed (case ``i`` uses ``seed + i``),
    so two runs with the same arguments test the same batches.
    ``time_budget`` (seconds) stops early without failing — the deadline
    is enforced *inside* each battery (between oracle stages), not just
    between cases, so a slow case cannot overrun the budget by a whole
    five-stage run.  ``emit_corpus`` names a directory that receives one
    corpus file per (shrunk) failure.  ``progress`` is an optional
    callable fed one line per 25 cases.
    """

    names = list(schemas) if schemas else sorted(SCHEMAS)
    for name in names:
        if name not in SCHEMAS:
            raise ValueError(f"unknown schema {name!r}; choose from {sorted(SCHEMAS)}")
    report = FuzzReport(per_schema={n: 0 for n in names})
    started = time.perf_counter()
    deadline = None if time_budget is None else started + time_budget

    for i in range(cases):
        if deadline is not None and time.perf_counter() > deadline:
            break
        schema = names[i % len(names)]
        # Vary size a little around the requested level so small and
        # mid-size shapes both appear.
        case_size = max(1, size - 1 + (i // len(names)) % 3)
        spec = CaseSpec(seed + i, schema, case_size)
        programs = generate_case(spec.seed, spec.schema, spec.size)
        dataset = schema_dataset(schema)
        inputs = case_inputs(schema)
        result = run_battery(
            programs, dataset, inputs=inputs, executors=executors, deadline=deadline
        )
        if result.timed_out:
            # The battery was cut off mid-way: the case is incomplete, so
            # it does not count toward cases_run, but any discrepancy the
            # finished stages produced is still a real finding — record it
            # unshrunk (shrinking re-runs batteries and would blow the
            # budget) before stopping.
            if not result.ok:
                report.failures.append(
                    FuzzFailure(
                        spec=spec,
                        oracles=sorted({d.oracle for d in result.discrepancies}),
                        details=[str(d) for d in result.discrepancies[:5]],
                        shrunk_size=batch_size(programs),
                    )
                )
            break
        report.cases_run += 1
        report.per_schema[schema] += 1
        if progress is not None and (i + 1) % 25 == 0:
            progress(
                f"  {i + 1}/{cases} cases, "
                f"{len(report.failures)} failure(s), "
                f"{time.perf_counter() - started:.1f}s"
            )
        if result.ok:
            continue

        oracles = sorted({d.oracle for d in result.discrepancies})
        failure = FuzzFailure(
            spec=spec,
            oracles=oracles,
            details=[str(d) for d in result.discrepancies[:5]],
        )
        minimized = list(programs)
        if shrink:

            def still_fails(candidate: list) -> bool:
                if not candidate:
                    return False
                try:
                    rerun = run_battery(
                        candidate, dataset, inputs=inputs, executors=executors
                    )
                except Exception:  # noqa: BLE001 - crashes are not *this* failure
                    return False
                return any(d.oracle in oracles for d in rerun.discrepancies)

            minimized = shrink_batch(programs, still_fails, max_checks=400)
        failure.shrunk_size = batch_size(minimized)
        if emit_corpus:
            path = Path(emit_corpus) / f"{_slug(spec)}.txt"
            write_case(
                path,
                CorpusCase(
                    schema=schema,
                    programs=minimized,
                    name=_slug(spec),
                    expect="discrepancy",
                    inputs=[args[programs[0].params[0]] for args in inputs],
                    meta={
                        "seed": str(spec.seed),
                        "size": str(spec.size),
                        "note": "auto-minimized fuzz failure: "
                        + ", ".join(oracles),
                    },
                ),
            )
            failure.corpus_path = str(path)
        report.failures.append(failure)

    report.elapsed = time.perf_counter() - started
    return report
