"""Typed random generator for well-formed Figure-1 UDF batches.

Every generated case is a replayable ``(seed, schema, size)`` triple: the
same triple always yields the same batch of programs, byte for byte, so a
failing fuzz case can be re-run from its three numbers alone (and the
corpus stores exactly those numbers as provenance).

The generator is *typed* and *total* by construction:

* locals are integer-sorted and always assigned before use (branch-local
  definitions are intersected away, so no path reads an unbound variable);
* accessor calls receive the row argument plus ground extra arguments
  drawn from the schema's declared valid ranges (or a loop counter whose
  static bounds fit the range), so every call is in-domain for the small
  cached datasets;
* loops are counter loops with static trip counts ≤ 4, so every program
  terminates well inside the interpreter's fuel budget;
* each program notifies exactly once per path through the canonical
  ``if c then notify true else notify false`` epilogue (or a single bare
  ``notify``), and programs in a batch use distinct pids — the
  consolidation preconditions hold for every generated batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from ..datasets.records import Dataset
from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Stmt,
    Var,
    While,
    seq,
)

__all__ = [
    "Accessor",
    "Schema",
    "SCHEMAS",
    "CaseSpec",
    "generate_case",
    "case_inputs",
    "schema_dataset",
]

ROW = "row"


@dataclass(frozen=True)
class Accessor:
    """One library accessor: name plus valid ranges for non-row arguments."""

    name: str
    extra_args: tuple[tuple[int, int], ...] = ()  # inclusive (lo, hi) per arg


@dataclass(frozen=True)
class Schema:
    """What the generator may call in one domain, plus its small dataset."""

    name: str
    accessors: tuple[Accessor, ...]
    dataset_args: tuple[tuple[str, object], ...]


def _weather_dataset() -> Dataset:
    from ..datasets.weather import generate_weather

    return generate_weather(cities=20, years=2, seed=7)


def _flight_dataset() -> Dataset:
    from ..datasets.flights import generate_flights

    return generate_flights(airlines=20, cities=10, seed=7)


def _news_dataset() -> Dataset:
    from ..datasets.news import generate_news

    return generate_news(articles=50, seed=7)


def _twitter_dataset() -> Dataset:
    from ..datasets.twitter import generate_twitter

    return generate_twitter(tweets=50, seed=7)


def _stock_dataset() -> Dataset:
    from ..datasets.stocks import generate_stocks

    return generate_stocks(companies=10, total_daily_rows=500, seed=7)


_DATASET_MAKERS = {
    "weather": _weather_dataset,
    "flight": _flight_dataset,
    "news": _news_dataset,
    "twitter": _twitter_dataset,
    "stock": _stock_dataset,
}

SCHEMAS: dict[str, Schema] = {
    "weather": Schema(
        "weather",
        (
            Accessor("monthly_avg_temp", ((1, 12),)),
            Accessor("monthly_rainfall", ((1, 12),)),
            Accessor("yearly_avg_temp"),
            Accessor("yearly_rainfall"),
        ),
        (),
    ),
    "flight": Schema(
        "flight",
        (
            Accessor("has_direct", ((0, 9), (0, 9))),
            Accessor("direct_price", ((0, 9), (0, 9))),
            Accessor("has_connection", ((0, 9), (0, 9))),
            Accessor("connecting_price", ((0, 9), (0, 9))),
            Accessor("avg_price", ((0, 9), (0, 9))),
        ),
        (),
    ),
    "news": Schema(
        "news",
        (
            Accessor("contains_word", ((0, 299),)),
            Accessor("avg_word_length"),
            Accessor("max_word_length"),
            Accessor("word_count"),
        ),
        (),
    ),
    "twitter": Schema(
        "twitter",
        (
            Accessor("smiley_count"),
            Accessor("tweet_language"),
            Accessor("tweet_length"),
            Accessor("sentiment_score", ((0, 5),)),
            Accessor("topic_score", ((0, 6),)),
        ),
        (),
    ),
    "stock": Schema(
        "stock",
        (
            Accessor("avg_volume"),
            Accessor("max_stock_value"),
            Accessor("min_stock_value"),
            Accessor("stddev"),
            Accessor("last_close"),
        ),
        (),
    ),
}


@lru_cache(maxsize=None)
def schema_dataset(schema: str) -> Dataset:
    """The small, cached, deterministic dataset backing one schema."""

    try:
        maker = _DATASET_MAKERS[schema]
    except KeyError:
        raise ValueError(
            f"unknown schema {schema!r}; choose from {sorted(SCHEMAS)}"
        ) from None
    return maker()


@dataclass(frozen=True)
class CaseSpec:
    """The replayable identity of one generated case."""

    seed: int
    schema: str
    size: int

    def __str__(self) -> str:
        return f"(seed={self.seed}, schema={self.schema!r}, size={self.size})"


class _ProgramGen:
    """One program's worth of typed generation state."""

    def __init__(self, rng: random.Random, schema: Schema, size: int) -> None:
        self.rng = rng
        self.schema = schema
        self.size = max(1, size)
        # name -> static (lo, hi) bounds when known (loop counters), else None
        self.int_vars: dict[str, tuple[int, int] | None] = {}
        self._fresh = 0

    # -- expressions --------------------------------------------------------

    def _extra_arg(self, lo: int, hi: int) -> Expr:
        """A ground constant in [lo, hi], or a loop counter proven inside it."""

        fitting = [
            name
            for name, bounds in self.int_vars.items()
            if bounds is not None and lo <= bounds[0] and bounds[1] <= hi
        ]
        if fitting and self.rng.random() < 0.4:
            return Var(self.rng.choice(fitting))
        return IntConst(self.rng.randint(lo, hi))

    def accessor_call(self) -> Call:
        acc = self.rng.choice(self.schema.accessors)
        args: list[Expr] = [Arg(ROW)]
        for lo, hi in acc.extra_args:
            args.append(self._extra_arg(lo, hi))
        return Call(acc.name, tuple(args))

    def int_expr(self, depth: int) -> Expr:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.30:
            return IntConst(self.rng.randint(-20, 200))
        if roll < 0.55 and self.int_vars:
            return Var(self.rng.choice(sorted(self.int_vars)))
        if roll < 0.80:
            return self.accessor_call()
        op = self.rng.choice(("+", "-", "*"))
        return BinOp(op, self.int_expr(depth - 1), self.int_expr(depth - 1))

    def bool_expr(self, depth: int) -> Expr:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.55:
            op = self.rng.choice(("<", "<=", "="))
            return Cmp(op, self.int_expr(depth - 1), self.int_expr(depth - 1))
        if roll < 0.70:
            return Not(self.bool_expr(depth - 1))
        if roll < 0.95:
            op = self.rng.choice(("and", "or"))
            return BoolOp(op, self.bool_expr(depth - 1), self.bool_expr(depth - 1))
        return BoolConst(self.rng.random() < 0.5)

    # -- statements ---------------------------------------------------------

    def fresh_var(self) -> str:
        self._fresh += 1
        return f"v{self._fresh}"

    def gen_assign(self, depth: int) -> Stmt:
        # Mostly define fresh names; sometimes overwrite an existing one.
        # Range-tracked variables (loop counters) are never overwritten —
        # their static bounds guarantee loop termination and in-range
        # accessor arguments.
        plain = [n for n, bounds in self.int_vars.items() if bounds is None]
        if plain and self.rng.random() < 0.3:
            name = self.rng.choice(sorted(plain))
        else:
            name = self.fresh_var()
        stmt = Assign(name, self.int_expr(depth))
        self.int_vars[name] = None
        return stmt

    def gen_if(self, depth: int, budget: int) -> Stmt:
        cond = self.bool_expr(depth)
        before = dict(self.int_vars)
        then = self.gen_block(depth - 1, budget)
        then_vars = self.int_vars
        self.int_vars = dict(before)
        orelse = self.gen_block(depth - 1, budget) if self.rng.random() < 0.6 else seq()
        # Only names defined on *both* paths survive the join.
        self.int_vars = {
            name: bounds
            for name, bounds in then_vars.items()
            if name in self.int_vars
        }
        return If(cond, then, orelse)

    def gen_loop(self, depth: int, budget: int) -> Stmt:
        """A counter loop with static trip count ≤ 4 (always terminates)."""

        counter = self.fresh_var()
        lo = self.rng.randint(0, 8)
        trips = self.rng.randint(1, 4)
        hi = lo + trips
        init = Assign(counter, IntConst(lo))
        self.int_vars[counter] = (lo, hi - 1)
        body_stmts = [self.gen_stmt(depth - 1, budget) for _ in range(self.rng.randint(1, 2))]
        body_stmts.append(Assign(counter, BinOp("+", Var(counter), IntConst(1))))
        loop = While(Cmp("<", Var(counter), IntConst(hi)), seq(*body_stmts))
        # After the loop the counter equals hi — still statically bounded.
        self.int_vars[counter] = (hi, hi)
        return seq(init, loop)

    def gen_stmt(self, depth: int, budget: int) -> Stmt:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.55:
            return self.gen_assign(max(1, depth))
        if roll < 0.80:
            return self.gen_if(depth, max(1, budget // 2))
        return self.gen_loop(depth, max(1, budget // 2))

    def gen_block(self, depth: int, budget: int) -> Stmt:
        return seq(*(self.gen_stmt(depth, budget) for _ in range(max(1, budget))))

    # -- whole programs -----------------------------------------------------

    def build(self, pid: str) -> Program:
        depth = 1 + min(3, self.size // 2)
        body = self.gen_block(depth, self.size)
        cond = self.bool_expr(depth)
        if self.rng.random() < 0.7:
            epilogue: Stmt = If(cond, Notify(pid, _TRUE), Notify(pid, _FALSE))
        else:
            epilogue = Notify(pid, cond)
        return Program(pid, (ROW,), seq(body, epilogue))


_TRUE = BoolConst(True)
_FALSE = BoolConst(False)


def generate_case(
    seed: int, schema: str, size: int, n_programs: int | None = None
) -> list[Program]:
    """The batch of UDFs identified by ``(seed, schema, size)``.

    ``size`` scales both the per-program statement budget and (unless
    pinned by ``n_programs``) the batch width.  The same triple always
    returns structurally identical programs.
    """

    sch = SCHEMAS.get(schema)
    if sch is None:
        raise ValueError(f"unknown schema {schema!r}; choose from {sorted(SCHEMAS)}")
    rng = random.Random((seed, schema, size).__repr__())
    if n_programs is None:
        n_programs = rng.randint(2, 2 + min(4, max(1, size)))
    programs = []
    for i in range(n_programs):
        gen = _ProgramGen(rng, sch, size)
        programs.append(gen.build(f"q{i}"))
    return programs


def case_inputs(schema: str, limit: int = 6) -> list[dict[str, object]]:
    """Concrete row bindings for differential runs (a sample of the dataset)."""

    ds = schema_dataset(schema)
    step = max(1, len(ds.rows) // limit)
    return [{ROW: r} for r in ds.rows[::step][:limit]]
