"""Context-manager fault injection for the three trusted subsystems.

Each production module exposes one module-global ``FAULT_HOOK`` seam
(:mod:`repro.smt.solver`, :mod:`repro.lang.compile`,
:mod:`repro.consolidation.divide_conquer`), called as
``hook(site, payload)`` and costing a single attribute read when unset.
The context managers here install a hook for the duration of a ``with``
block and always restore the previous value, so faults cannot leak across
tests.

What each fault must *prove* when used in a test:

* ``smt_unknown`` / ``smt_crash`` — the consolidation driver keeps going:
  unknown verdicts merely skip optimisations; crashes degrade single pairs
  to the sequential baseline (``ConsolidationReport.skipped_pairs``);
* ``compile_cache_miss`` / ``compile_fallback`` — ``make_runner`` still
  hands back a working runner (recompilation, or the interpreter);
* ``miscompile`` — the *differential oracle* catches the corrupted
  backend; this is the harness testing itself;
* ``consolidation_pair_crash`` / ``worker_death`` — a mid-batch failure
  (in-process or a killed pool worker) degrades, never raises.

Compilation faults clear the compile cache on entry *and* exit: entry so
the fault actually sees compilations (not stale cache hits), exit so a
corrupted program cannot outlive its fault window.

Process pools: the driver creates its pool lazily *inside* the batch, and
Linux forks workers, so a hook installed before ``consolidate_all`` is
inherited by the children — which is what lets ``worker_death`` kill a
real worker process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..consolidation import divide_conquer as _dc
from ..lang import compile as _compile
from ..lang import vectorize as _vectorize
from ..smt import solver as _solver

__all__ = [
    "fault_hook",
    "smt_unknown",
    "smt_crash",
    "compile_cache_miss",
    "compile_fallback",
    "miscompile",
    "consolidation_pair_crash",
    "worker_death",
    "vectorize_crash",
    "vectorize_mismask",
]


@contextmanager
def fault_hook(module, hook):
    """Install ``hook`` as ``module.FAULT_HOOK`` for the block's duration."""

    previous = module.FAULT_HOOK
    module.FAULT_HOOK = hook
    try:
        yield hook
    finally:
        module.FAULT_HOOK = previous


def _after_counter(after: int, effect):
    """A hook that lets ``after`` calls through, then applies ``effect``."""

    remaining = [after]

    def hook(site, payload):
        if remaining[0] > 0:
            remaining[0] -= 1
            return None
        return effect(site, payload)

    return hook


@contextmanager
def smt_unknown(after: int = 0):
    """Force every solver check past the first ``after`` to return 'unknown'.

    Models budget exhaustion mid-batch: the optimiser must skip
    opportunities (fewer merges, larger programs) but stay sound.  Note the
    forced verdicts are memoised like real ones, so a solver created inside
    the window keeps degrading after it — use fresh solvers per batch, as
    ``consolidate_all`` does.
    """

    with fault_hook(
        _solver, _after_counter(after, lambda site, payload: "unknown")
    ) as hook:
        yield hook


@contextmanager
def smt_crash(after: int = 0, exc: type[Exception] = RuntimeError):
    """Make solver checks raise — a solver bug escaping as an exception."""

    def effect(site, payload):
        raise exc("injected SMT solver crash")

    with fault_hook(_solver, _after_counter(after, effect)) as hook:
        yield hook


@contextmanager
def compile_cache_miss():
    """Force every ``compile_cached`` lookup to miss (recompile each time)."""

    def hook(site, payload):
        return True if site == "compile.cache_lookup" else None

    _compile.clear_compile_cache()
    try:
        with fault_hook(_compile, hook) as h:
            yield h
    finally:
        _compile.clear_compile_cache()


@contextmanager
def compile_fallback():
    """Make every compilation fail, forcing the interpreter fallback path."""

    def hook(site, payload):
        if site == "compile.translate":
            raise _compile.CompileError("injected translation failure")
        return None

    _compile.clear_compile_cache()
    try:
        with fault_hook(_compile, hook) as h:
            yield h
    finally:
        _compile.clear_compile_cache()


def _flip_first_notification(compiled):
    """The default miscompile: negate the first notification's value."""

    import dataclasses

    inner = compiled._fn

    def corrupted(args, budget):
        env, notifications, cost, notification_costs = inner(args, budget)
        for pid in sorted(notifications):
            value = notifications[pid]
            if isinstance(value, bool):
                notifications[pid] = not value
                break
        return env, notifications, cost, notification_costs

    return dataclasses.replace(compiled, _fn=corrupted)


@contextmanager
def miscompile(transform=None):
    """Deliberately corrupt every compiled program (default: flip a notify).

    This is the harness testing *itself*: with this fault active the
    differential oracle battery must report backend discrepancies — a
    silent pass would mean the oracle cannot catch real miscompiles.
    """

    transform = transform or _flip_first_notification

    def hook(site, payload):
        return transform if site == "compile.finish" else None

    _compile.clear_compile_cache()
    try:
        with fault_hook(_compile, hook) as h:
            yield h
    finally:
        _compile.clear_compile_cache()


@contextmanager
def consolidation_pair_crash(after: int = 0, exc: type[Exception] = RuntimeError):
    """Make in-process pair merges raise after the first ``after`` pairs."""

    def effect(site, payload):
        if site == "consolidate.pair":
            raise exc("injected pair-merge crash")
        return None

    with fault_hook(_dc, _after_counter(after, effect)) as hook:
        yield hook


@contextmanager
def worker_death(after: int = 0):
    """Kill the process-pool worker handling a pair merge (hard ``_exit``).

    ``os._exit`` skips all cleanup, exactly like an OOM kill; the parent
    observes ``BrokenProcessPool`` and must redo the level serially.  The
    counter lives in the forked child, so with a fresh pool the first
    ``after`` pairs survive *per worker*; ``after=0`` kills on first use.
    """

    def effect(site, payload):
        if site == "consolidate.worker":
            os._exit(17)
        return None

    with fault_hook(_dc, _after_counter(after, effect)) as hook:
        yield hook


@contextmanager
def vectorize_crash():
    """Make every kernel translation crash: batches must degrade per-row.

    The vectorized backend's contract is that translation failure is a
    *recorded degradation*, never an error — every batch runs through the
    compiled closures instead, producing identical results.
    """

    def hook(site, payload):
        if site == "vectorize.translate":
            raise RuntimeError("injected kernel-translation crash")
        return None

    _vectorize.clear_vectorize_cache()
    try:
        with fault_hook(_vectorize, hook) as h:
            yield h
    finally:
        _vectorize.clear_vectorize_cache()


def _negate_kernel(kern):
    inner = kern.fn

    def flipped(n, *cols):
        return [not v for v in inner(n, *cols)]

    return _vectorize._Kernel(flipped, kern.srcs, kern.cost)


def _negate_straight_kernel(kern, n_notifies):
    """Flip every notify column of a fused straight-line kernel, leaving
    the materialised variable columns behind them untouched."""

    inner = kern.fn

    def flipped(n, *cols):
        res = inner(n, *cols)
        return tuple(
            [not v for v in col] if i < n_notifies else col
            for i, col in enumerate(res)
        )

    return _vectorize._Kernel(flipped, kern.srcs, kern.cost)


def _mismask_first_branch(vectorized):
    """The default mis-mask: negate the first If's condition column, so
    every record takes the wrong arm (falling back to flipping the first
    notify's values on branchless plans)."""

    def walk(ops):
        for op in ops:
            if isinstance(op, _vectorize._OpIf):
                op.kern = _negate_kernel(op.kern)
                return True
            if isinstance(op, _vectorize._OpWhile) and walk(op.body_ops):
                return True
        for op in ops:
            if isinstance(op, _vectorize._OpNotify):
                op.kern = _negate_kernel(op.kern)
                return True
            if isinstance(op, _vectorize._OpStraight) and op.notifies:
                op.kern = _negate_straight_kernel(op.kern, len(op.notifies))
                return True
        return False

    if vectorized.plan is not None:
        walk(vectorized.plan)
    return vectorized


@contextmanager
def vectorize_mismask(transform=None):
    """Deliberately mis-mask every vectorized plan (default: wrong If arm).

    Like :func:`miscompile`, this is the harness testing itself: the
    three-way differential oracle must report ``vectorized`` discrepancies
    while this fault is active — a silent pass would mean mask bugs in the
    column kernels could ship undetected.  The cache is cleared on entry
    *and* exit so a corrupted plan cannot outlive its fault window.
    """

    transform = transform or _mismask_first_branch

    def hook(site, payload):
        return transform if site == "vectorize.finish" else None

    _vectorize.clear_vectorize_cache()
    try:
        with fault_hook(_vectorize, hook) as h:
            yield h
    finally:
        _vectorize.clear_vectorize_cache()
