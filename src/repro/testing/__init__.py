"""Differential fuzzing and fault-injection harness (the testing subsystem).

The paper's central claim is *semantic*: the consolidated program is
observationally equivalent to running the UDFs in sequence and never costs
more (Theorems 1-2).  This package backs that claim with adversarial,
replayable machinery:

* :mod:`repro.testing.generator` — a typed random program generator
  producing well-formed Figure-1 UDFs over all five domain schemas; every
  case is a replayable ``(seed, schema, size)`` triple;
* :mod:`repro.testing.oracles` — the differential oracle battery:
  interpreter vs compiled backend, ``whereMany`` vs ``whereConsolidated``,
  serial vs thread vs process ``consolidate_all``, exact cost accounting
  and the cost-never-worse bound, with the static validator as cross-check;
* :mod:`repro.testing.faults` — context-manager fault injection into the
  SMT solver, the compile pipeline and the consolidation driver, asserting
  the system degrades to the sequential baseline instead of crashing or
  miscompiling;
* :mod:`repro.testing.shrinker` — a delta-debugging minimiser over the UDF
  AST for failing cases;
* :mod:`repro.testing.corpus` — the on-disk regression corpus format
  (``tests/corpus/``) and its replay loader;
* :mod:`repro.testing.fuzz` — the fuzzing driver behind ``repro fuzz``.
"""

from .generator import SCHEMAS, CaseSpec, case_inputs, generate_case, schema_dataset
from .oracles import BatteryResult, Discrepancy, run_battery
from .faults import (
    compile_cache_miss,
    compile_fallback,
    consolidation_pair_crash,
    fault_hook,
    miscompile,
    smt_crash,
    smt_unknown,
    vectorize_crash,
    vectorize_mismask,
    worker_death,
)
from .shrinker import shrink_batch
from .corpus import CorpusCase, corpus_files, read_case, replay_case, write_case
from .fuzz import FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "SCHEMAS",
    "CaseSpec",
    "generate_case",
    "case_inputs",
    "schema_dataset",
    "BatteryResult",
    "Discrepancy",
    "run_battery",
    "fault_hook",
    "smt_unknown",
    "smt_crash",
    "compile_cache_miss",
    "compile_fallback",
    "miscompile",
    "consolidation_pair_crash",
    "worker_death",
    "vectorize_crash",
    "vectorize_mismask",
    "shrink_batch",
    "CorpusCase",
    "corpus_files",
    "read_case",
    "write_case",
    "replay_case",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
]
