"""The :class:`Telemetry` facade — one handle for tracer + registry.

Instrumented subsystems (dataflow, consolidation, SMT, compiled backend,
harness) take a single ``telemetry`` object rather than separate tracer
and registry arguments; :class:`~repro.config.ExecutionConfig` carries it
through the public API.  Three configurations cover every use:

* ``NULL_TELEMETRY`` (the default) — both halves are no-ops; ``enabled``
  is False so hot paths skip instrumentation entirely;
* ``Telemetry.capture()`` — metrics on, tracing off (the common
  production shape: counters are cheap, span forests are not free);
* ``Telemetry.capture(trace=True)`` — both on (the CLI's ``--trace``).

``child()`` creates a scoped registry that is merged back on
``absorb()`` — the experiment harness uses this to give every Figure-9
row its own metrics snapshot while the batch-wide registry still
aggregates everything.
"""

from __future__ import annotations

import time as _time

from .metrics import MetricsRegistry
from .noop import NullRegistry, NullTracer
from .spans import Tracer

__all__ = ["Telemetry", "NULL_TELEMETRY"]


class _Timer:
    """Observe a block's wall-clock seconds into one histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(_time.perf_counter() - self._started)


class _NullTimer:
    """The disabled timer: enter/exit, nothing else."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()

_NULL_TRACER = NullTracer()
_NULL_REGISTRY = NullRegistry()


class Telemetry:
    """A (tracer, metrics registry) pair with an ``enabled`` fast-flag."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self, tracer=None, metrics=None, enabled: bool = True) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled

    # -- constructors --------------------------------------------------------

    @classmethod
    def capture(cls, trace: bool = False) -> "Telemetry":
        """A live telemetry: fresh registry, tracing only when asked."""

        return cls(tracer=Tracer() if trace else _NULL_TRACER)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op telemetry (also importable as NULL_TELEMETRY)."""

        return NULL_TELEMETRY

    def child(self) -> "Telemetry":
        """A scoped registry sharing this telemetry's tracer.

        Disabled telemetry returns itself, so callers need no branching.
        """

        if not self.enabled:
            return self
        return Telemetry(tracer=self.tracer, metrics=MetricsRegistry())

    def absorb(self, child: "Telemetry") -> None:
        """Fold a :meth:`child`'s metrics back into this registry."""

        if self.enabled and child is not self:
            self.metrics.merge(child.metrics)

    # -- delegation ----------------------------------------------------------

    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    def counter(self, name: str, **labels):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        if buckets is None:
            return self.metrics.histogram(name, **labels)
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def time(self, name: str, **labels):
        """Time a block into the histogram ``name`` (seconds observed).

        >>> with telemetry.time("service_patch_seconds"):
        ...     patch_the_tree()

        Disabled telemetry times nothing — the context manager is a
        shared no-op, so the hot path allocates nothing.
        """

        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.metrics.histogram(name, **labels))

    # -- output --------------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-able artifact: metrics plus (if traced) the span forest."""

        doc = {"metrics": self.metrics.snapshot()}
        spans = self.tracer.to_dicts()
        if spans:
            doc["spans"] = spans
        return doc

    def export(self, sink) -> None:
        """Push one snapshot into a sink (see :mod:`repro.telemetry.sinks`)."""

        sink.export(self.snapshot())


NULL_TELEMETRY = Telemetry(tracer=_NULL_TRACER, metrics=_NULL_REGISTRY, enabled=False)
