"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is the write side of the observability layer (see DESIGN.md
§Telemetry).  Instrumented code asks the registry for a named instrument —
``registry.counter("smt_checks_total")`` — and the registry hands back the
same object for the same ``(name, labels)`` pair every time, so hot paths
can hold a reference and skip the lookup entirely.

Design constraints, in order:

* **dependency-free** — everything here is standard library;
* **cheap** — ``Counter.inc`` is one attribute add; ``Histogram.observe``
  one ``bisect`` plus two adds.  The no-op twins in
  :mod:`repro.telemetry.noop` make the disabled path cheaper still;
* **mergeable** — per-experiment and per-process registries are folded
  into a parent with :meth:`MetricsRegistry.merge`, which is what lets the
  experiment harness give every Figure-9 row its own snapshot and the
  process-pool consolidation driver report child-process counters;
* **snapshot-able** — :meth:`MetricsRegistry.snapshot` returns plain
  JSON-able dicts; the sinks (:mod:`repro.telemetry.sinks`) render those
  to JSONL or Prometheus text exposition.

Histograms use *fixed* bucket boundaries chosen at creation time
(Prometheus-style cumulative ``le`` buckets plus an implicit ``+Inf``), so
merging two histograms of the same name is element-wise addition.
"""

from __future__ import annotations

from bisect import bisect_left
from threading import Lock
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

# Seconds-scale boundaries sized for this repository's workloads: SMT
# checks sit around 0.1-10 ms, pair consolidations around 1-500 ms, and
# whole dataflow runs up to a few seconds.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

# Count-scale boundaries (program sizes, record counts, ...).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)

LabelItems = "tuple[tuple[str, str], ...]"


def _label_items(labels: Mapping[str, str]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (int or float amounts)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (rates, depths, ratios)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution over fixed bucket boundaries.

    ``counts[i]`` is the number of observations ``<= boundaries[i]``
    exclusive of earlier buckets (i.e. *non*-cumulative per-bucket counts);
    ``counts[-1]`` is the ``+Inf`` overflow bucket.  The snapshot reports
    the Prometheus-style *cumulative* form.
    """

    __slots__ = ("name", "labels", "boundaries", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple = (),
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(boundaries)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram boundaries must be non-empty and sorted")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left keeps ``le`` inclusive: value == boundary lands in
        # that boundary's bucket, matching Prometheus semantics.
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        cumulative = []
        running = 0
        for boundary, n in zip(self.boundaries, self.counts):
            running += n
            cumulative.append([boundary, running])
        cumulative.append(["+Inf", self.count])
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create registry of instruments, keyed by ``(name, labels)``.

    Creation is locked (the thread-pool consolidation driver shares one
    registry across workers); the instruments themselves rely on the GIL
    for their single add, the same contract ``collections.Counter`` has.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._lock = Lock()

    def _get(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_items(labels))
        found = self._instruments.get(key)
        if found is None:
            with self._lock:
                found = self._instruments.get(key)
                if found is None:
                    found = cls(name, key[1], **kwargs)
                    self._instruments[key] = found
        if not isinstance(found, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(found).__name__}"
            )
        return found

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, boundaries=buckets)

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry (additive).

        Counters and histograms add; gauges take the other registry's
        latest value (it is the more recent observation).
        """

        for inst in other:
            if isinstance(inst, Counter):
                self._get(Counter, inst.name, dict(inst.labels)).inc(inst.value)
            elif isinstance(inst, Histogram):
                mine = self._get(
                    Histogram, inst.name, dict(inst.labels), boundaries=inst.boundaries
                )
                if mine.boundaries != inst.boundaries:
                    raise ValueError(
                        f"histogram {inst.name!r} bucket boundaries differ"
                    )
                for i, n in enumerate(inst.counts):
                    mine.counts[i] += n
                mine.sum += inst.sum
                mine.count += inst.count
            elif isinstance(inst, Gauge):
                self._get(Gauge, inst.name, dict(inst.labels)).set(inst.value)

    def merge_counts(self, counts: Mapping[str, float], prefix: str = "", **labels) -> None:
        """Increment one counter per ``counts`` entry (stats-dict bridge).

        Existing subsystems report dict snapshots (``SolverStats``,
        ``SimplifyStats``); this folds such a dict into the registry
        without per-call-site boilerplate.
        """

        for key, value in counts.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter(f"{prefix}{key}", **labels).inc(value)

    def snapshot(self) -> dict:
        """JSON-able snapshot grouped by instrument kind, sorted by name."""

        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for inst in self._instruments.values():
            out[inst.kind + "s"].append(inst.snapshot())
        for group in out.values():
            group.sort(key=lambda m: (m["name"], sorted(m["labels"].items())))
        return out
