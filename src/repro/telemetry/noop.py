"""No-op twins of the tracing/metrics primitives.

The default :class:`~repro.telemetry.core.Telemetry` is the *null* one, so
every instrumented call site in the dataflow engine, the consolidator and
the solver must cost (almost) nothing when nobody asked for telemetry.
The twins here guarantee that:

* every method is an empty ``pass``/constant return — no clock reads, no
  allocation, no dict lookups;
* ``NullTracer.span`` returns one shared reusable context manager;
* ``NullRegistry.counter/gauge/histogram`` return shared singletons whose
  ``inc``/``set``/``observe`` do nothing;
* both expose ``enabled = False`` so hot loops that want *literally zero*
  overhead can hoist one boolean check and skip instrumentation wholesale
  (the dataflow engine's per-record loop does exactly this).

``benchmarks/bench_telemetry_overhead.py`` pins the claim down: the
telemetry-off whereMany[50] Weather run must stay within 5% of a bare
re-implementation of the engine loop with no telemetry hooks at all.
"""

from __future__ import annotations

__all__ = [
    "NullSpan",
    "NullTracer",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
]


class NullSpan:
    """A reusable, inert span: context manager + recorder, all no-ops."""

    __slots__ = ()
    name = "null"
    attributes: dict = {}
    children: tuple = ()
    wall_seconds = 0.0
    cpu_seconds = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key, value) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = NullSpan()


class NullTracer:
    __slots__ = ()
    enabled = False
    roots: tuple = ()

    def span(self, name, **attributes) -> NullSpan:
        return _NULL_SPAN

    def to_dicts(self) -> list:
        return []


class NullCounter:
    __slots__ = ()
    name = "null"
    labels: tuple = ()
    value = 0

    def inc(self, amount=1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = "null"
    labels: tuple = ()
    value = 0

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = "null"
    labels: tuple = ()
    boundaries: tuple = ()
    sum = 0.0
    count = 0

    def observe(self, value) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    __slots__ = ()
    enabled = False

    def counter(self, name, **labels) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name, **labels) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name, buckets=(), **labels) -> NullHistogram:
        return _NULL_HISTOGRAM

    def merge(self, other) -> None:
        pass

    def merge_counts(self, counts, prefix="", **labels) -> None:
        pass

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}
