"""Tracing spans: nested wall/CPU timers with key:value attributes.

A :class:`Span` measures one region of work — a dataflow run, a pair
consolidation, one SMT check — with both wall-clock and CPU time, and
carries arbitrary ``key: value`` attributes.  Spans nest: entering a span
while another is open makes it a child, so a finished trace is a forest
mirroring the call structure::

    figure9.experiment {domain: weather, family: Mix}
      consolidate.batch {n: 50}
        consolidate.pair {left: q1, right: q2}
        ...
      dataflow.run {operator: whereConsolidated[50]}

The :class:`Tracer` owns the forest and the open-span stack.  It is
deliberately *not* thread-safe — a tracer belongs to one logical execution
(the thread/process-pool consolidation drivers keep their tracer on the
driving thread and record pool work through the metrics registry instead).

Use :class:`repro.telemetry.noop.NullTracer` when tracing is off; its
``span`` returns a shared no-op context manager and the hot path pays one
method call, no allocation, no clock read.
"""

from __future__ import annotations

from time import perf_counter, process_time

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region.  Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_wall",
        "end_wall",
        "start_cpu",
        "end_cpu",
        "_tracer",
    )

    def __init__(self, name: str, attributes: dict | None = None, tracer=None) -> None:
        self.name = name
        self.attributes = attributes or {}
        self.children: list[Span] = []
        self.start_wall = self.end_wall = 0.0
        self.start_cpu = self.end_cpu = 0.0
        self._tracer = tracer

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_wall = perf_counter()
        self.start_cpu = process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_cpu = process_time()
        self.end_wall = perf_counter()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- recording -----------------------------------------------------------

    def set(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.end_wall - self.start_wall)

    @property
    def cpu_seconds(self) -> float:
        return max(0.0, self.end_cpu - self.start_cpu)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_seconds, 6),
            "cpu_s": round(self.cpu_seconds, 6),
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Owns a forest of finished spans and the stack of open ones."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes) -> Span:
        """Open a span (context manager); nests under the open span, if any."""

        span = Span(name, attributes, tracer=self)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (a span leaked across an exception):
        # unwind to the exiting span rather than corrupting the stack.
        while self._stack:
            if self._stack.pop() is span:
                break

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.roots]
