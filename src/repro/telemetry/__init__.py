"""repro.telemetry — dependency-free tracing spans + metrics registry.

The observability layer behind :class:`repro.config.ExecutionConfig` and
the CLI's ``--metrics-out`` / ``--trace`` flags (see DESIGN.md
§Telemetry):

* :mod:`repro.telemetry.spans` — nested wall/CPU spans;
* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms, and the :class:`MetricsRegistry`;
* :mod:`repro.telemetry.core` — the :class:`Telemetry` facade and the
  no-op default ``NULL_TELEMETRY``;
* :mod:`repro.telemetry.noop` — the zero-overhead twins;
* :mod:`repro.telemetry.sinks` — in-memory, JSONL, and Prometheus text
  exposition sinks.
"""

from .core import NULL_TELEMETRY, Telemetry
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .noop import NullRegistry, NullTracer
from .sinks import (
    InMemorySink,
    JsonlFileSink,
    PrometheusTextSink,
    TelemetrySink,
    prometheus_text,
)
from .spans import Span, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "TelemetrySink",
    "InMemorySink",
    "JsonlFileSink",
    "PrometheusTextSink",
    "prometheus_text",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]
