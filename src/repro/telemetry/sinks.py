"""Telemetry sinks: where snapshots go.

A sink is anything with ``export(snapshot: dict) -> None``, where the
snapshot is what :meth:`repro.telemetry.core.Telemetry.snapshot` returns
(``{"metrics": {...}, "spans": [...]}``).  Three implementations:

* :class:`InMemorySink` — keeps snapshots in a list (tests, notebooks);
* :class:`JsonlFileSink` — appends one JSON document per line, the format
  the CLI's ``--metrics-out`` artifact builds on and EXPERIMENTS.md
  documents next to the ``BENCH_*.json`` files;
* :class:`PrometheusTextSink` — renders the metrics half in the
  Prometheus text exposition format (version 0.0.4), so an operator can
  point a node-exporter-style textfile collector at the output.

:func:`prometheus_text` is the pure renderer, usable without a sink.
"""

from __future__ import annotations

import json
from typing import Protocol, runtime_checkable

__all__ = [
    "TelemetrySink",
    "InMemorySink",
    "JsonlFileSink",
    "PrometheusTextSink",
    "prometheus_text",
]


@runtime_checkable
class TelemetrySink(Protocol):
    def export(self, snapshot: dict) -> None: ...


class InMemorySink:
    """Accumulates snapshots in memory (``sink.exports``)."""

    def __init__(self) -> None:
        self.exports: list[dict] = []

    def export(self, snapshot: dict) -> None:
        self.exports.append(snapshot)


class JsonlFileSink:
    """Appends each snapshot as one line of JSON to ``path``."""

    def __init__(self, path) -> None:
        self.path = path

    def export(self, snapshot: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(snapshot, sort_keys=True) + "\n")


class PrometheusTextSink:
    """Overwrites ``path`` with the text exposition of the latest snapshot."""

    def __init__(self, path) -> None:
        self.path = path

    def export(self, snapshot: dict) -> None:
        with open(self.path, "w") as handle:
            handle.write(prometheus_text(snapshot.get("metrics", snapshot)))


# ---------------------------------------------------------------------------
# Prometheus text exposition (the subset the metric model needs)
# ---------------------------------------------------------------------------


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict, extra: tuple = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _num(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def prometheus_text(metrics_snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as exposition text.

    Families are emitted in name order with one ``# TYPE`` line each;
    histogram buckets are cumulative with the mandatory ``+Inf`` bucket
    and ``_sum`` / ``_count`` series, exactly as Prometheus expects.
    """

    families: dict[str, tuple[str, list]] = {}
    for kind_key, kind in (("counters", "counter"), ("gauges", "gauge"), ("histograms", "histogram")):
        for metric in metrics_snapshot.get(kind_key, []):
            families.setdefault(metric["name"], (kind, []))[1].append(metric)

    lines: list[str] = []
    for name in sorted(families):
        kind, metrics = families[name]
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            labels = metric["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_labels(labels)} {_num(metric['value'])}")
            else:
                for le, cumulative in metric["buckets"]:
                    le_str = "+Inf" if le == "+Inf" else _num(le)
                    lines.append(
                        f"{name}_bucket{_labels(labels, (('le', le_str),))} {cumulative}"
                    )
                lines.append(f"{name}_sum{_labels(labels)} {_num(metric['sum'])}")
                lines.append(f"{name}_count{_labels(labels)} {metric['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
