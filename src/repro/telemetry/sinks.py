"""Telemetry sinks: where snapshots go.

A sink is anything with ``export(snapshot: dict) -> None``, where the
snapshot is what :meth:`repro.telemetry.core.Telemetry.snapshot` returns
(``{"metrics": {...}, "spans": [...]}``).  Three implementations:

* :class:`InMemorySink` — keeps snapshots in a list (tests, notebooks);
* :class:`JsonlFileSink` — appends one JSON document per line, the format
  the CLI's ``--metrics-out`` artifact builds on and EXPERIMENTS.md
  documents next to the ``BENCH_*.json`` files;
* :class:`PrometheusTextSink` — renders the metrics half in the
  Prometheus text exposition format (version 0.0.4), so an operator can
  point a node-exporter-style textfile collector at the output.

:func:`prometheus_text` is the pure renderer, usable without a sink.
"""

from __future__ import annotations

import json
from typing import Protocol, runtime_checkable

__all__ = [
    "TelemetrySink",
    "InMemorySink",
    "JsonlFileSink",
    "PrometheusTextSink",
    "prometheus_text",
]


@runtime_checkable
class TelemetrySink(Protocol):
    def export(self, snapshot: dict) -> None: ...


class InMemorySink:
    """Accumulates snapshots in memory (``sink.exports``)."""

    def __init__(self) -> None:
        self.exports: list[dict] = []

    def export(self, snapshot: dict) -> None:
        self.exports.append(snapshot)


class JsonlFileSink:
    """Appends each snapshot as one line of JSON to ``path``."""

    def __init__(self, path) -> None:
        self.path = path

    def export(self, snapshot: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(snapshot, sort_keys=True) + "\n")


class PrometheusTextSink:
    """Overwrites ``path`` with the text exposition of the latest snapshot."""

    def __init__(self, path) -> None:
        self.path = path

    def export(self, snapshot: dict) -> None:
        with open(self.path, "w") as handle:
            handle.write(prometheus_text(snapshot.get("metrics", snapshot)))


# ---------------------------------------------------------------------------
# Prometheus text exposition (the subset the metric model needs)
# ---------------------------------------------------------------------------

# Help strings for every series the repository emits, keyed by family name.
# Unknown families (ad-hoc test metrics, future additions) fall back to a
# generated line so every family still carries mandatory HELP/TYPE metadata.
HELP_TEXTS = {
    "compile_cache_hits_total": "Compiled-backend translation cache hits.",
    "compile_cache_misses_total": "Compiled-backend translation cache misses.",
    "compile_fallbacks_total": "Programs that fell back to the interpreter backend.",
    "compile_seconds": "Wall time spent translating programs to closures.",
    "consolidation_batches_total": "Divide-and-conquer consolidation batches run.",
    "consolidation_entail_queries": "Semantic entailment questions asked of the context.",
    "consolidation_executor_degradations_total": "Pool failures redone serially.",
    "consolidation_memo_hit_rate": "Fraction of entailment queries answered by the memo.",
    "consolidation_memo_hits": "Entailment queries answered by the (psi, e) memo.",
    "consolidation_pair_seconds": "Wall time per pair consolidation.",
    "consolidation_pairs_total": "Pair consolidations performed.",
    "consolidation_precheck_skips": "Entailments decided by the abstract-env precheck.",
    "consolidation_rule_applications_total": "Calculus rule applications, by rule.",
    "consolidation_seconds_total": "Total wall time spent consolidating batches.",
    "consolidation_skipped_pairs_total": "Pairs kept unmerged after a mid-batch failure.",
    "consolidation_smt_queries": "Entailment queries that reached the SMT solver.",
    "calibration_r2": "R-squared of the calibrated cost model's fit.",
    "calibration_staleness_seconds": "Age of the calibrated cost model in use.",
    "planner_mispredictions_total": "Planned merges whose predicted savings failed to realize.",
    "planner_pairs_total": "Pair merges executed by the calibrated planner.",
    "planner_predicted_savings_seconds": "Total predicted savings of the last planned batch.",
    "planner_skips_total": "Pairs the calibrated planner composed sequentially without merging.",
    "planner_smt_budget_exhausted_total": "Planned merges demoted to no-SMT after the budget ran out.",
    "dataflow_operator_records_in_total": "Records entering each operator.",
    "dataflow_operator_records_out_total": "Records leaving each operator.",
    "dataflow_operator_seconds_total": "Wall time spent inside each operator.",
    "dataflow_operator_udf_cost_total": "Figure-2 UDF cost units charged per operator.",
    "dataflow_records_total": "Records ingested by dataflow runs.",
    "dataflow_runs_total": "Dataflow graph executions.",
    "dataflow_udf_cost_total": "Figure-2 UDF cost units across all runs.",
    "dataflow_wall_seconds_total": "Wall time of dataflow runs.",
    "provenance_attributed_operators": "Operators joined in the last cost-attribution pass.",
    "provenance_mispredicted_operators_total": "Operators whose static cost bound was violated or loose.",
    "provenance_operator_cost_ratio": "Static predicted / observed per-record cost, by operator.",
    "service_calibration_fitted_at": "Unix timestamp the served calibration was fitted at.",
    "service_calibration_staleness_seconds": "Age of the service's calibrated cost model.",
    "service_info": "Service configuration surfaced as labels (planner, calibration source).",
    "service_planner_merges_total": "Pairs the service's calibrated planner merged.",
    "service_planner_mispredictions_total": "Service planner merges whose predicted savings failed to realize.",
    "service_planner_skips_total": "Pairs the service's calibrated planner composed sequentially.",
    "smt_cache_hits": "SMT validity checks answered from the formula cache.",
    "smt_check_seconds": "SMT validity check latency.",
    "smt_checks": "SMT validity checks issued.",
    "smt_sat_calls": "Underlying SAT search invocations.",
    "smt_theory_rounds": "Theory-propagation rounds across all checks.",
    "smt_unknowns": "SMT checks that returned unknown.",
}


def _escape_label_value(value: str) -> str:
    r"""Escape one label value: ``\`` -> ``\\``, ``"`` -> ``\"``, LF -> ``\n``.

    Backslashes are escaped first so the backslashes *introduced* by the
    quote/newline replacements are not doubled again.
    """

    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    r"""Escape HELP text: only ``\`` and newline (quotes stay literal).

    The exposition format gives HELP lines a *different* escaping rule
    from label values — escaping quotes here would corrupt the help text.
    """

    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _labels(labels: dict, extra: tuple = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _num(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _help_for(name: str) -> str:
    return HELP_TEXTS.get(name, f"repro metric {name}.")


def prometheus_text(metrics_snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as exposition text.

    Families are emitted in name order, each headed by its ``# HELP`` and
    ``# TYPE`` lines (known families get curated help text, the rest a
    generated fallback); histogram buckets are cumulative with the
    mandatory ``+Inf`` bucket and ``_sum`` / ``_count`` series, exactly as
    Prometheus expects.  Label values and HELP text use their distinct
    spec escapings (see :func:`_escape_label_value` / :func:`_escape_help`).
    """

    families: dict[str, tuple[str, list]] = {}
    for kind_key, kind in (("counters", "counter"), ("gauges", "gauge"), ("histograms", "histogram")):
        for metric in metrics_snapshot.get(kind_key, []):
            families.setdefault(metric["name"], (kind, []))[1].append(metric)

    lines: list[str] = []
    for name in sorted(families):
        kind, metrics = families[name]
        lines.append(f"# HELP {name} {_escape_help(_help_for(name))}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            labels = metric["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_labels(labels)} {_num(metric['value'])}")
            else:
                for le, cumulative in metric["buckets"]:
                    le_str = "+Inf" if le == "+Inf" else _num(le)
                    lines.append(
                        f"{name}_bucket{_labels(labels, (('le', le_str),))} {cumulative}"
                    )
                lines.append(f"{name}_sum{_labels(labels)} {_num(metric['sum'])}")
                lines.append(f"{name}_count{_labels(labels)} {metric['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
