"""Terms and formulas for the QF_UFLIA fragment used by consolidation.

The consolidation calculus issues validity queries ``Ψ ⇒ φ`` in the combined
theory of **linear integer arithmetic** and **uninterpreted functions**
(Section 4 of the paper).  This module defines the term/formula language of
that fragment, with aggressive canonicalisation:

* Integer terms are kept in *linear normal form*: a :class:`Lin` node is a
  constant plus a sorted sum of ``coefficient * atom`` monomials, where an
  atom is a :class:`Sym` (integer variable) or :class:`App` (uninterpreted
  function application).  Products of two non-constant terms are wrapped in
  the uninterpreted function ``@mul`` — a sound weakening, since any fact
  derivable with ``@mul`` uninterpreted also holds for real multiplication.
* Atomic formulas are ``t <= 0`` (:class:`Le`) and ``t = 0`` (:class:`Eq`)
  with ``t`` in linear normal form and integer-tightened: the coefficient
  gcd is divided out (flooring the constant for ``Le``; refuting ``Eq``
  outright when the gcd does not divide the constant).
* ``not (t <= 0)`` is normalised to ``-t + 1 <= 0`` on construction, so the
  only negative theory literal the solver ever sees is a disequality.

Everything is immutable and structurally hashable, which makes formulas
usable as cache keys for entailment memoisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, Iterator, Union

__all__ = [
    "Term",
    "Num",
    "Sym",
    "App",
    "Lin",
    "Formula",
    "FTrue",
    "FFalse",
    "Le",
    "Eq",
    "FNot",
    "FAnd",
    "FOr",
    "TRUE_F",
    "FALSE_F",
    "num",
    "sym",
    "app",
    "t_add",
    "t_sub",
    "t_neg",
    "t_scale",
    "t_mul",
    "as_linear",
    "from_linear",
    "le_f",
    "lt_f",
    "eq_f",
    "ne_f",
    "fnot",
    "fand",
    "for_",
    "fimplies",
    "fiff",
    "term_atoms",
    "formula_atoms",
    "formula_terms",
    "rename_syms_term",
    "rename_syms",
    "free_syms",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of integer-sorted terms."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Num(Term):
    """An integer constant."""

    value: int


@dataclass(frozen=True, slots=True)
class Sym(Term):
    """An integer variable (program local, argument, or fresh name)."""

    name: str


@dataclass(frozen=True, slots=True)
class App(Term):
    """An uninterpreted function application ``f(t1..tk)``."""

    func: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True, slots=True)
class Lin(Term):
    """``const + sum(coef * atom)`` with atoms Sym/App, coefs nonzero, sorted.

    Built only through :func:`from_linear`, which enforces the invariants;
    a bare atom or constant is represented as itself, never as a ``Lin``.
    """

    const: int
    coeffs: tuple[tuple[Term, int], ...]


Atom = Union[Sym, App]


def num(value: int) -> Num:
    return Num(value)


def sym(name: str) -> Sym:
    return Sym(name)


def app(func: str, *args: Term) -> App:
    return App(func, tuple(args))


def _atom_key(atom: Term) -> str:
    return repr(atom)


def as_linear(t: Term) -> tuple[int, dict[Term, int]]:
    """Decompose ``t`` into ``(constant, {atom: coefficient})``."""

    if isinstance(t, Num):
        return t.value, {}
    if isinstance(t, (Sym, App)):
        return 0, {t: 1}
    if isinstance(t, Lin):
        return t.const, dict(t.coeffs)
    raise TypeError(f"not a term: {t!r}")


def from_linear(const: int, coeffs: dict[Term, int]) -> Term:
    """Rebuild the canonical term for a linear decomposition."""

    items = [(a, c) for a, c in coeffs.items() if c != 0]
    if not items:
        return Num(const)
    if len(items) == 1 and const == 0 and items[0][1] == 1:
        return items[0][0]
    items.sort(key=lambda pair: _atom_key(pair[0]))
    return Lin(const, tuple(items))


def t_add(a: Term, b: Term) -> Term:
    ca, ma = as_linear(a)
    cb, mb = as_linear(b)
    merged = dict(ma)
    for atom, coef in mb.items():
        merged[atom] = merged.get(atom, 0) + coef
    return from_linear(ca + cb, merged)


def t_neg(a: Term) -> Term:
    return t_scale(-1, a)


def t_sub(a: Term, b: Term) -> Term:
    return t_add(a, t_neg(b))


def t_scale(k: int, a: Term) -> Term:
    if k == 0:
        return Num(0)
    ca, ma = as_linear(a)
    return from_linear(k * ca, {atom: k * coef for atom, coef in ma.items()})


def t_mul(a: Term, b: Term) -> Term:
    """Multiplication: linear when either side is constant, else ``@mul``.

    The uninterpreted wrapping is a sound under-approximation of the real
    semantics (see module docstring); commutativity is recovered by sorting
    the operands.
    """

    if isinstance(a, Num):
        return t_scale(a.value, b)
    if isinstance(b, Num):
        return t_scale(b.value, a)
    left, right = sorted((a, b), key=repr)
    return App("@mul", (left, right))


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of quantifier-free formulas."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class FTrue(Formula):
    pass


@dataclass(frozen=True, slots=True)
class FFalse(Formula):
    pass


TRUE_F = FTrue()
FALSE_F = FFalse()


@dataclass(frozen=True, slots=True)
class Le(Formula):
    """``term <= 0`` in integer-tightened linear normal form."""

    term: Term


@dataclass(frozen=True, slots=True)
class Eq(Formula):
    """``term = 0`` in normalised linear form."""

    term: Term


@dataclass(frozen=True, slots=True)
class FNot(Formula):
    operand: Formula


@dataclass(frozen=True, slots=True)
class FAnd(Formula):
    args: tuple[Formula, ...]


@dataclass(frozen=True, slots=True)
class FOr(Formula):
    args: tuple[Formula, ...]


def _coeff_gcd(coeffs: dict[Term, int]) -> int:
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    return g


def le_f(lhs: Term, rhs: Term) -> Formula:
    """``lhs <= rhs``, canonicalised and integer-tightened."""

    const, coeffs = as_linear(t_sub(lhs, rhs))
    coeffs = {a: c for a, c in coeffs.items() if c != 0}
    if not coeffs:
        return TRUE_F if const <= 0 else FALSE_F
    g = _coeff_gcd(coeffs)
    if g > 1:
        # g*x + const <= 0  <=>  x <= floor(-const / g)  (integers only)
        coeffs = {a: c // g for a, c in coeffs.items()}
        const = -((-const) // g)
    return Le(from_linear(const, coeffs))


def lt_f(lhs: Term, rhs: Term) -> Formula:
    """``lhs < rhs``  ==  ``lhs + 1 <= rhs`` over the integers."""

    return le_f(t_add(lhs, Num(1)), rhs)


def eq_f(lhs: Term, rhs: Term) -> Formula:
    """``lhs = rhs``, canonicalised; sign-normalised and gcd-checked."""

    const, coeffs = as_linear(t_sub(lhs, rhs))
    coeffs = {a: c for a, c in coeffs.items() if c != 0}
    if not coeffs:
        return TRUE_F if const == 0 else FALSE_F
    g = _coeff_gcd(coeffs)
    if g > 1:
        if const % g != 0:
            return FALSE_F
        coeffs = {a: c // g for a, c in coeffs.items()}
        const //= g
    # Fix the sign of the first (smallest-keyed) coefficient for canonicity.
    first = min(coeffs, key=_atom_key)
    if coeffs[first] < 0:
        coeffs = {a: -c for a, c in coeffs.items()}
        const = -const
    return Eq(from_linear(const, coeffs))


def ne_f(lhs: Term, rhs: Term) -> Formula:
    return fnot(eq_f(lhs, rhs))


def fnot(f: Formula) -> Formula:
    """Negation, pushing through constants and ``<=`` atoms.

    ``not (t <= 0)`` becomes ``1 - t <= 0`` (i.e. ``t >= 1``), so negated
    inequalities never survive as negative literals.
    """

    if isinstance(f, FTrue):
        return FALSE_F
    if isinstance(f, FFalse):
        return TRUE_F
    if isinstance(f, FNot):
        return f.operand
    if isinstance(f, Le):
        return le_f(Num(1), f.term)
    return FNot(f)


def fand(*fs: Formula) -> Formula:
    flat: list[Formula] = []
    for f in fs:
        if isinstance(f, FFalse):
            return FALSE_F
        if isinstance(f, FTrue):
            continue
        if isinstance(f, FAnd):
            flat.extend(f.args)
        else:
            flat.append(f)
    # Deduplicate while preserving order (formulas hash structurally).
    seen: set[Formula] = set()
    unique = [f for f in flat if not (f in seen or seen.add(f))]
    if not unique:
        return TRUE_F
    if len(unique) == 1:
        return unique[0]
    return FAnd(tuple(unique))


def for_(*fs: Formula) -> Formula:
    flat: list[Formula] = []
    for f in fs:
        if isinstance(f, FTrue):
            return TRUE_F
        if isinstance(f, FFalse):
            continue
        if isinstance(f, FOr):
            flat.extend(f.args)
        else:
            flat.append(f)
    seen: set[Formula] = set()
    unique = [f for f in flat if not (f in seen or seen.add(f))]
    if not unique:
        return FALSE_F
    if len(unique) == 1:
        return unique[0]
    return FOr(tuple(unique))


def fimplies(a: Formula, b: Formula) -> Formula:
    return for_(fnot(a), b)


def fiff(a: Formula, b: Formula) -> Formula:
    return fand(fimplies(a, b), fimplies(b, a))


# ---------------------------------------------------------------------------
# Traversal / substitution
# ---------------------------------------------------------------------------


def term_atoms(t: Term) -> Iterator[Term]:
    """Top-level atoms (Sym/App) of a term, without descending into App args."""

    if isinstance(t, (Sym, App)):
        yield t
    elif isinstance(t, Lin):
        for atom, _coef in t.coeffs:
            yield atom


def formula_atoms(f: Formula) -> Iterator[Formula]:
    """All theory atoms (``Le``/``Eq``) occurring in ``f``."""

    if isinstance(f, (Le, Eq)):
        yield f
    elif isinstance(f, FNot):
        yield from formula_atoms(f.operand)
    elif isinstance(f, (FAnd, FOr)):
        for g in f.args:
            yield from formula_atoms(g)


def formula_terms(f: Formula) -> Iterator[Term]:
    for atom in formula_atoms(f):
        yield atom.term  # type: ignore[union-attr]


def rename_syms_term(t: Term, mapping: dict[str, Term]) -> Term:
    """Substitute variables by terms, everywhere including App arguments."""

    if isinstance(t, Num):
        return t
    if isinstance(t, Sym):
        return mapping.get(t.name, t)
    if isinstance(t, App):
        return App(t.func, tuple(rename_syms_term(a, mapping) for a in t.args))
    if isinstance(t, Lin):
        result: Term = Num(t.const)
        for atom, coef in t.coeffs:
            result = t_add(result, t_scale(coef, rename_syms_term(atom, mapping)))
        return result
    raise TypeError(f"not a term: {t!r}")


def rename_syms(f: Formula, mapping: dict[str, Term]) -> Formula:
    """Substitute variables by terms throughout a formula (re-canonicalising)."""

    if isinstance(f, (FTrue, FFalse)):
        return f
    if isinstance(f, Le):
        return le_f(rename_syms_term(f.term, mapping), Num(0))
    if isinstance(f, Eq):
        return eq_f(rename_syms_term(f.term, mapping), Num(0))
    if isinstance(f, FNot):
        return fnot(rename_syms(f.operand, mapping))
    if isinstance(f, FAnd):
        return fand(*(rename_syms(g, mapping) for g in f.args))
    if isinstance(f, FOr):
        return for_(*(rename_syms(g, mapping) for g in f.args))
    raise TypeError(f"not a formula: {f!r}")


def _term_syms(t: Term, out: set[str]) -> None:
    if isinstance(t, Sym):
        out.add(t.name)
    elif isinstance(t, App):
        for a in t.args:
            _term_syms(a, out)
    elif isinstance(t, Lin):
        for atom, _coef in t.coeffs:
            _term_syms(atom, out)


def free_syms(f: Formula) -> set[str]:
    """All variable names occurring in ``f``."""

    out: set[str] = set()
    for t in formula_terms(f):
        _term_syms(t, out)
    return out


def _is_ground(t: Term) -> bool:
    if isinstance(t, Num):
        return True
    if isinstance(t, Sym):
        return False
    if isinstance(t, App):
        return all(_is_ground(a) for a in t.args)
    if isinstance(t, Lin):
        return all(_is_ground(a) for a, _c in t.coeffs)
    return False


def _term_tokens(t: Term, out: set) -> None:
    if isinstance(t, Sym):
        out.add(t.name)
    elif isinstance(t, App):
        if _is_ground(t):
            out.add(("app", t))
        for a in t.args:
            _term_tokens(a, out)
    elif isinstance(t, Lin):
        for atom, _coef in t.coeffs:
            _term_tokens(atom, out)


def formula_tokens(f: Formula) -> set:
    """Interaction tokens: variable names plus ground-application keys.

    Two conjuncts can influence a common entailment only through a chain of
    shared tokens — shared variables, or equal ground applications such as
    ``f(3)`` whose results congruence identifies.  Used by
    :func:`cone_of_influence`.
    """

    out: set = set()
    for t in formula_terms(f):
        _term_tokens(t, out)
    return out


def cone_of_influence(hypothesis: Formula, goal: Formula) -> Formula:
    """The conjuncts of ``hypothesis`` that can affect ``goal``.

    Computes the token-overlap fixpoint starting from the goal's tokens.
    Dropping the remaining conjuncts only *weakens* the hypothesis, so an
    entailment proved from the cone is valid for the full context — while
    the query formula stays small and stable enough to cache even as the
    consolidation context grows with every consumed statement.
    """

    parts = list(hypothesis.args) if isinstance(hypothesis, FAnd) else [hypothesis]
    if len(parts) <= 1:
        return hypothesis
    part_tokens = [(p, formula_tokens(p)) for p in parts]
    reached = formula_tokens(goal)
    kept: list[Formula] = []
    pending = part_tokens
    changed = True
    while changed:
        changed = False
        remaining = []
        for p, tokens in pending:
            if tokens & reached:
                kept.append(p)
                reached |= tokens
                changed = True
            else:
                remaining.append((p, tokens))
        pending = remaining
    # Preserve original conjunct order for formula canonicity / caching.
    kept_set = set(kept)
    return fand(*(p for p in parts if p in kept_set))
