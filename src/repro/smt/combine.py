"""Lazy theory checker for conjunctions of QF_UFLIA literals.

This is the ``T`` in the DPLL(T) loop of :mod:`repro.smt.solver`: given the
theory literals of a propositional model, decide whether their conjunction
is consistent in the combined theory of equality-with-uninterpreted-functions
and linear integer arithmetic.

The combination follows the Nelson–Oppen recipe, specialised to the small,
mostly-equational problems consolidation produces:

1. assert all equational consequences in the congruence closure,
2. translate everything into the LIA engine using one proxy variable per
   congruence class (classes merged with a numeral use the numeral),
3. run the LIA refutation engine,
4. probe LIA-implied equalities between interface atoms and feed them back
   to the closure, repeating until a fixpoint or a conflict.

Because integer arithmetic is non-convex, step 4's pairwise probing is not
complete in general; it is, however, *sound* — every propagated equality is
proved — so an ``unsat`` verdict is always a theorem, which is the property
consolidation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .euf import CongruenceClosure
from .lia import LinCon, lia_check
from .terms import App, Eq, Formula, Le, Lin, Num, Sym, Term, as_linear, from_linear

__all__ = ["TheoryLiteral", "TheoryResult", "check_literals", "minimize_core"]


@dataclass(frozen=True)
class TheoryLiteral:
    """An assigned theory atom: ``kind`` in {'eq','le','ne'} applied to term=0."""

    kind: str
    term: Term

    @staticmethod
    def from_formula(f: Formula, positive: bool) -> "TheoryLiteral":
        if isinstance(f, Eq):
            return TheoryLiteral("eq" if positive else "ne", f.term)
        if isinstance(f, Le):
            if positive:
                return TheoryLiteral("le", f.term)
            # not (t <= 0)  ==  1 - t <= 0 ; fnot() normally rewrites this
            # away, but assignments from the SAT core may still expose it.
            const, coeffs = as_linear(f.term)
            flipped = from_linear(1 - const, {a: -c for a, c in coeffs.items()})
            return TheoryLiteral("le", flipped)
        raise TypeError(f"not a theory atom: {f!r}")


@dataclass
class TheoryResult:
    status: str  # 'sat' | 'unsat' | 'unknown'
    core: tuple[TheoryLiteral, ...] = ()


_MAX_PROPAGATION_ROUNDS = 6


def _equality_sides(term: Term) -> tuple[Term, Term]:
    """Split ``term = 0`` into ``lhs = rhs`` with non-negative parts."""

    const, coeffs = as_linear(term)
    pos = {a: c for a, c in coeffs.items() if c > 0}
    neg = {a: -c for a, c in coeffs.items() if c < 0}
    lhs = from_linear(const if const > 0 else 0, pos)
    rhs = from_linear(-const if const < 0 else 0, neg)
    return lhs, rhs


def _collect_atoms(term: Term, out: set[Term]) -> None:
    """All Sym/App atoms of ``term``, including those nested in App args."""

    if isinstance(term, Sym):
        out.add(term)
    elif isinstance(term, App):
        out.add(term)
        for a in term.args:
            _collect_atoms(a, out)
    elif isinstance(term, Lin):
        for atom, _coef in term.coeffs:
            _collect_atoms(atom, out)


def _lin_over_classes(term: Term, cc: CongruenceClosure) -> tuple[dict[object, int], int]:
    """Flatten ``term`` to LIA coefficients over congruence-class handles.

    An atom whose class contains a numeral contributes that constant; other
    atoms contribute their class root id as the LIA variable handle, so
    CC-equal atoms share one LIA variable.  (Arithmetic relations between
    classes are conveyed by the ``eq`` constraints themselves, so no
    expansion of arithmetic class members is needed here.)
    """

    const, coeffs = as_linear(term)
    out: dict[object, int] = {}
    total = const
    for atom, coef in coeffs.items():
        c = cc.constant_of(atom)
        if c is not None:
            total += coef * c
            continue
        handle = cc.root_id(atom)
        out[handle] = out.get(handle, 0) + coef
    return out, total


_CHECK_CACHE: dict[frozenset, str] = {}
_CHECK_CACHE_LIMIT = 200_000


def check_literals(literals: list[TheoryLiteral]) -> TheoryResult:
    """Decide the conjunction of ``literals`` in QF_UFLIA.

    Results are memoised on the literal set — the core-minimisation loop
    re-checks overlapping subsets aggressively, and the DPLL(T) loop often
    revisits the same sub-assignment across lemma rounds.
    """

    key = frozenset(literals)
    cached = _CHECK_CACHE.get(key)
    if cached is not None:
        return TheoryResult(cached, tuple(literals) if cached == "unsat" else ())
    result = _check_literals_uncached(literals)
    if len(_CHECK_CACHE) < _CHECK_CACHE_LIMIT:
        _CHECK_CACHE[key] = result.status
    return result


def _check_literals_uncached(literals: list[TheoryLiteral]) -> TheoryResult:
    # 1. Congruence closure over the asserted equalities — built once;
    #    propagated equalities are merged into it incrementally below.
    cc = CongruenceClosure()
    for lit in literals:
        cc.add_term(lit.term)
        if lit.kind == "eq":
            lhs, rhs = _equality_sides(lit.term)
            cc.assert_equal(lhs, rhs)

    for _round in range(_MAX_PROPAGATION_ROUNDS):
        if cc.has_constant_conflict():
            return TheoryResult("unsat", tuple(literals))

        # 2. Build the LIA problem over class handles.
        eqs: list[LinCon] = []
        les: list[LinCon] = []
        nes: list[LinCon] = []
        for lit in literals:
            coeffs, const = _lin_over_classes(lit.term, cc)
            con = LinCon.make(coeffs, const)
            if lit.kind == "eq":
                eqs.append(con)
            elif lit.kind == "le":
                les.append(con)
            else:
                nes.append(con)
        # Classes merged with numerals already substituted; classes holding
        # two merged atoms share a handle, so CC equalities are implicit.
        status = lia_check(eqs, les, nes)
        if status == "unsat":
            return TheoryResult("unsat", tuple(literals))

        # 3. Probe for LIA-implied equalities between *relevant* pairs and
        #    feed them back (Nelson-Oppen propagation, sound but partial).
        #    Only equalities between same-position arguments of two
        #    applications of the same function can trigger new congruences,
        #    so those are the only pairs worth a solver probe.
        # The closure must stay frozen during the probe loop — the LIA
        # problem above was built against its current class handles — so
        # proved equalities are collected first and merged afterwards.
        proved: list[tuple[Term, Term]] = []
        for a, b in _congruence_candidate_pairs(literals, cc):
            ca, consta = _lin_over_classes(a, cc)
            cb, constb = _lin_over_classes(b, cc)
            diff = dict(ca)
            for v, c in cb.items():
                diff[v] = diff.get(v, 0) - c
            witness = LinCon.make(diff, consta - constb)
            if lia_check(eqs, les, nes + [witness]) == "unsat":
                proved.append((a, b))
        if not proved:
            return TheoryResult("sat" if status == "sat" else "unknown")
        for a, b in proved:
            cc.assert_equal(a, b)

    return TheoryResult("unknown")


_MAX_CANDIDATE_PAIRS = 40


def _congruence_candidate_pairs(
    literals: list[TheoryLiteral], cc: CongruenceClosure
) -> list[tuple[Term, Term]]:
    """Argument pairs whose equality could merge two applications."""

    by_func: dict[tuple[str, int], list[App]] = {}
    seen_apps: set[App] = set()
    atoms: set[Term] = set()
    for lit in literals:
        _collect_atoms(lit.term, atoms)
    for atom in atoms:
        if isinstance(atom, App) and atom not in seen_apps:
            seen_apps.add(atom)
            by_func.setdefault((atom.func, len(atom.args)), []).append(atom)
    pairs: list[tuple[Term, Term]] = []
    seen_pairs: set[tuple[Term, Term]] = set()
    for group in by_func.values():
        group.sort(key=repr)
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                if cc.are_equal(group[i], group[j]):
                    continue
                # Congruence needs *every* argument position to merge, and
                # distinct numerals never can — skip such pairs entirely.
                if any(
                    isinstance(x, Num) and isinstance(y, Num) and x != y
                    for x, y in zip(group[i].args, group[j].args)
                ):
                    continue
                for x, y in zip(group[i].args, group[j].args):
                    if cc.are_equal(x, y):
                        continue
                    key = (x, y) if repr(x) <= repr(y) else (y, x)
                    if key not in seen_pairs:
                        seen_pairs.add(key)
                        pairs.append(key)
                    if len(pairs) >= _MAX_CANDIDATE_PAIRS:
                        return pairs
    return pairs


def minimize_core(
    literals: list[TheoryLiteral], budget: int = 12
) -> tuple[TheoryLiteral, ...]:
    """Greedy deletion-based minimisation of an unsat literal set.

    Each surviving literal is necessary relative to the others (a local
    minimum).  ``budget`` caps both the input size and the number of
    re-checks; the full set is returned unminimised when either would be
    exceeded, which is sound (just a weaker blocking lemma for the SAT
    core — relevancy filtering already keeps these sets small).
    """

    if len(literals) > budget:
        return tuple(literals)
    core = list(literals)
    checks = 0
    i = 0
    while i < len(core) and checks < budget:
        candidate = core[:i] + core[i + 1 :]
        checks += 1
        if candidate and check_literals(candidate).status == "unsat":
            core = candidate
        else:
            i += 1
    return tuple(core)
