"""A from-scratch SMT solver for QF_UFLIA (the paper's Z3 substitute).

Layers, bottom to top:

* :mod:`repro.smt.terms` — canonicalised terms and formulas,
* :mod:`repro.smt.sat` — a CDCL SAT solver,
* :mod:`repro.smt.cnf` — Tseitin encoding,
* :mod:`repro.smt.euf` — congruence closure,
* :mod:`repro.smt.lia` — Fourier–Motzkin integer refutation,
* :mod:`repro.smt.combine` — Nelson–Oppen-style theory combination,
* :mod:`repro.smt.solver` — the lazy DPLL(T) driver with memoisation,
* :mod:`repro.smt.interface` — the IR ↔ SMT bridge.
"""

from .interface import (
    EncodingError,
    arg_sym,
    encode_bool,
    encode_expr,
    encode_int,
    intern_string,
    var_sym,
)
from .models import (
    evaluate_formula,
    evaluate_term,
    formula_model,
    lia_model,
    literals_model,
)
from .solver import Solver, SolverStats
from .terms import (
    App,
    Eq,
    FALSE_F,
    FAnd,
    FFalse,
    FNot,
    FOr,
    FTrue,
    Formula,
    Le,
    Lin,
    Num,
    Sym,
    TRUE_F,
    Term,
    app,
    as_linear,
    cone_of_influence,
    formula_tokens,
    eq_f,
    fand,
    fiff,
    fimplies,
    fnot,
    for_,
    free_syms,
    from_linear,
    le_f,
    lt_f,
    ne_f,
    num,
    rename_syms,
    rename_syms_term,
    sym,
    t_add,
    t_mul,
    t_neg,
    t_scale,
    t_sub,
)
