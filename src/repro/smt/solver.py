"""The SMT solver facade: lazy DPLL(T) over SAT + (EUF ∪ LIA).

This is the component the consolidation calculus treats as "the SMT solver"
(the paper uses Z3; see DESIGN.md for the substitution note).  The public
entry points are :meth:`Solver.is_sat`, :meth:`Solver.is_valid` and
:meth:`Solver.entails`, all memoised — the consolidation algorithm fires
thousands of near-identical queries while walking two programs, and the
cache is what keeps consolidation in the paper's sub-second regime.

Soundness contract (what the calculus relies on):

* ``is_valid(f) == True``  only when ``not f`` was *refuted* by a valid
  derivation (SAT resolution + theory lemmas that are themselves theorems).
* Any budget exhaustion or incompleteness surfaces as ``'unknown'`` /
  ``False``, which makes the optimiser skip an opportunity — never
  mis-transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cnf import CnfBuilder
from .combine import TheoryLiteral, check_literals, minimize_core
from .sat import SatSolver
from .terms import (
    Eq,
    FALSE_F,
    Formula,
    Le,
    TRUE_F,
    fand,
    fnot,
    for_,
)

__all__ = ["Solver", "SolverStats", "CheckResult", "FAULT_HOOK"]

CheckResult = str  # 'sat' | 'unsat' | 'unknown'

# Fault-injection seam (see repro.testing.faults).  When set, the hook is
# called as ``FAULT_HOOK("smt.check", formula)`` on every memo-miss check;
# it may return a forced CheckResult ('unknown' models budget exhaustion),
# raise (a solver crash escaping as an exception), or return None to let
# the real check run.  ``None`` — the production value — costs one module
# attribute read per uncached check.
FAULT_HOOK = None


@dataclass
class SolverStats:
    """Counters for reporting and the scalability experiments."""

    checks: int = 0
    cache_hits: int = 0
    theory_rounds: int = 0
    sat_calls: int = 0
    unknowns: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "cache_hits": self.cache_hits,
            "theory_rounds": self.theory_rounds,
            "sat_calls": self.sat_calls,
            "unknowns": self.unknowns,
        }


class Solver:
    """Memoising QF_UFLIA satisfiability/validity checker.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) turns on latency
    recording: every check that misses the memo is timed into the
    ``smt_check_seconds`` histogram.  With the default no-op telemetry the
    only cost is one attribute read per miss.
    """

    def __init__(
        self,
        lemma_budget: int = 400,
        cache_size: int = 100_000,
        telemetry=None,
    ) -> None:
        self.lemma_budget = lemma_budget
        self.cache_size = cache_size
        self.stats = SolverStats()
        self._sat_cache: dict[Formula, CheckResult] = {}
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY as telemetry  # noqa: N811
        self._telemetry = telemetry

    # -- public API ---------------------------------------------------------

    def is_sat(self, f: Formula) -> CheckResult:
        """Satisfiability of ``f`` in QF_UFLIA."""

        self.stats.checks += 1
        cached = self._sat_cache.get(f)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        if self._telemetry.enabled:
            from time import perf_counter

            started = perf_counter()
            result = self._check(f)
            self._telemetry.histogram("smt_check_seconds").observe(
                perf_counter() - started
            )
        else:
            result = self._check(f)
        if result == "unknown":
            # Budget exhaustion / incompleteness: the caller treats this as
            # "cannot prove", skipping an optimisation.  Counted so batch
            # reports can show *why* a consolidation was less aggressive.
            self.stats.unknowns += 1
        if len(self._sat_cache) < self.cache_size:
            self._sat_cache[f] = result
        return result

    def is_valid(self, f: Formula) -> bool:
        """True only when ``f`` is proved valid."""

        return self.is_sat(fnot(f)) == "unsat"

    def entails(self, hypothesis: Formula, goal: Formula) -> bool:
        """``hypothesis |= goal`` — the judgment written ``Ψ |= e`` in Fig. 3."""

        if isinstance(goal, type(TRUE_F)):
            return True
        return self.is_sat(fand(hypothesis, fnot(goal))) == "unsat"

    def model(self, f: Formula):
        """A verified model of ``f`` — ``(variables, function tables)`` —
        or None when unsatisfiable / no witness constructible."""

        from .models import formula_model

        return formula_model(f, self)

    def entails_not(self, hypothesis: Formula, goal: Formula) -> bool:
        """``hypothesis |= not goal``."""

        return self.is_sat(fand(hypothesis, goal)) == "unsat"

    def equivalent(self, hypothesis: Formula, a: Formula, b: Formula) -> bool:
        """Whether ``a`` and ``b`` agree under ``hypothesis`` (proved)."""

        return self.entails(hypothesis, for_(fand(a, b), fand(fnot(a), fnot(b))))

    # -- the DPLL(T) loop ----------------------------------------------------

    def _check(self, f: Formula) -> CheckResult:
        if FAULT_HOOK is not None:
            forced = FAULT_HOOK("smt.check", f)
            if forced is not None:
                return forced
        if isinstance(f, type(TRUE_F)):
            return "sat"
        if isinstance(f, type(FALSE_F)):
            return "unsat"

        sat = SatSolver()
        builder = CnfBuilder(sat)
        builder.assert_formula(f)

        for _ in range(self.lemma_budget):
            self.stats.sat_calls += 1
            result = sat.solve()
            if result.is_unsat:
                return "unsat"
            if result.status == "unknown":
                return "unknown"

            # Extract only the theory literals the model actually *needs*
            # (don't-care atoms would otherwise flood the theory solver
            # with meaningless disequalities).
            assignment = builder.sufficient_literals(result.model)
            literals = [
                TheoryLiteral.from_formula(atom, value) for atom, value in assignment
            ]

            self.stats.theory_rounds += 1
            verdict = check_literals(literals)
            if verdict.status == "sat":
                return "sat"
            if verdict.status == "unknown":
                return "unknown"

            # Theory conflict: block (at least) the offending sub-assignment.
            core = minimize_core(literals)
            core_set = set(core)
            block: list[int] = []
            for (atom, value), lit in zip(assignment, literals):
                if lit in core_set:
                    var = builder.atom_vars[atom]
                    block.append(-var if value else var)
            if not block:
                # The conflict involves no atoms (cannot happen for a real
                # core, but guard against an empty minimisation result).
                return "unsat"
            sat.reset_to_root()
            sat.add_clause(block)

        return "unknown"
