"""Tseitin conversion from formulas to CNF over SAT variables.

Each theory atom (``Le``/``Eq``) is mapped to one SAT variable; boolean
structure receives fresh proxy variables with the standard equisatisfiable
defining clauses.  Subformulas are cached structurally, so shared subtrees
are encoded once.
"""

from __future__ import annotations

from .sat import SatSolver
from .terms import Eq, FAnd, FFalse, FNot, FOr, FTrue, Formula, Le

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """Encodes formulas into a :class:`SatSolver`, tracking the atom map."""

    def __init__(self, sat: SatSolver) -> None:
        self.sat = sat
        self.atom_vars: dict[Formula, int] = {}
        self.roots: list[Formula] = []
        self._cache: dict[Formula, int] = {}
        self._true_var: int | None = None

    # The fixed variable representing logical truth.
    def _true_literal(self) -> int:
        if self._true_var is None:
            self._true_var = self.sat.new_var()
            self.sat.add_clause([self._true_var])
        return self._true_var

    def atom_var(self, f: Formula) -> int:
        """The SAT variable standing for theory atom ``f``."""

        v = self.atom_vars.get(f)
        if v is None:
            v = self.sat.new_var()
            self.atom_vars[f] = v
        return v

    def literal(self, f: Formula) -> int:
        """Tseitin-encode ``f``; returns the literal equivalent to it."""

        cached = self._cache.get(f)
        if cached is not None:
            return cached
        if isinstance(f, FTrue):
            lit = self._true_literal()
        elif isinstance(f, FFalse):
            lit = -self._true_literal()
        elif isinstance(f, (Le, Eq)):
            lit = self.atom_var(f)
        elif isinstance(f, FNot):
            lit = -self.literal(f.operand)
        elif isinstance(f, FAnd):
            lits = [self.literal(g) for g in f.args]
            proxy = self.sat.new_var()
            for l in lits:
                self.sat.add_clause([-proxy, l])
            self.sat.add_clause([proxy] + [-l for l in lits])
            lit = proxy
        elif isinstance(f, FOr):
            lits = [self.literal(g) for g in f.args]
            proxy = self.sat.new_var()
            self.sat.add_clause([-proxy] + lits)
            for l in lits:
                self.sat.add_clause([proxy, -l])
            lit = proxy
        else:
            raise TypeError(f"not a formula: {f!r}")
        self._cache[f] = lit
        return lit

    def assert_formula(self, f: Formula) -> None:
        """Constrain the SAT instance so that ``f`` must hold."""

        self.roots.append(f)
        self.sat.add_clause([self.literal(f)])

    # -- relevancy filtering ----------------------------------------------------

    def _value(self, f: Formula, model: dict[int, bool]) -> bool:
        lit = self._cache[f]
        v = model.get(abs(lit), False)
        return v if lit > 0 else not v

    def sufficient_literals(self, model: dict[int, bool]) -> list[tuple[Formula, bool]]:
        """A small set of atom literals that by itself satisfies the roots.

        Walks each asserted formula under the model: a true ``or`` needs one
        true disjunct, a false ``and`` one false conjunct.  Atoms outside
        the returned set are don't-cares, so the theory solver never sees
        the arbitrary phases the SAT search assigned them — without this,
        every don't-care equality atom arrives as a disequality and the
        arithmetic case-splitting cost explodes.
        """

        out: dict[Formula, bool] = {}

        def walk(f: Formula) -> None:
            if isinstance(f, (FTrue, FFalse)):
                return
            if isinstance(f, (Le, Eq)):
                out[f] = self._value(f, model)
                return
            if isinstance(f, FNot):
                walk(f.operand)
                return
            value = self._value(f, model)
            if isinstance(f, FAnd):
                if value:
                    for g in f.args:
                        walk(g)
                else:
                    for g in f.args:
                        if not self._value(g, model):
                            walk(g)
                            return
                return
            if isinstance(f, FOr):
                if value:
                    for g in f.args:
                        if self._value(g, model):
                            walk(g)
                            return
                else:
                    for g in f.args:
                        walk(g)
                return
            raise TypeError(f"not a formula: {f!r}")

        for root in self.roots:
            walk(root)
        return list(out.items())
