"""Bridge between the IR (:mod:`repro.lang.ast`) and SMT terms/formulas.

Arithmetic IR expressions become linear terms; library calls become
uninterpreted applications; the comparison and boolean structure maps
directly.  Three encoding conventions:

* **Name spaces.**  Arguments encode as ``Sym("a!name")`` and locals as
  ``Sym("v!name")`` so that an argument and a local with the same surface
  name never collide.  Strongest-postcondition renaming appends ``#k``
  suffixes to local symbols.
* **Strings** are interned to integer codes (process-global registry).
  Distinct strings get distinct codes, so string equality/disequality is
  decided by plain integer reasoning.  Well-typedness of the IR (checked by
  :func:`repro.lang.visitors.check_program`) guarantees a string-sorted
  expression is never compared against a program integer, so the codes
  cannot be confused with program literals.
* **Booleans in integer positions.**  A boolean-sorted local ``x`` is
  encoded as the atom ``x = 1``; a boolean-returning library call likewise.
  Assignments of boolean expressions produce an ``iff`` in the strongest
  postcondition, keeping both views consistent.

Encoding failures (e.g. a call with a boolean argument) raise
:class:`EncodingError`; callers treat that as "unknown" and simply skip the
optimisation opportunity, preserving soundness.
"""

from __future__ import annotations

from ..lang.ast import (
    Arg,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    IntConst,
    Not,
    StrConst,
    Var,
)
from ..lang.functions import BOOL, FunctionTable, INT, STR, Sort
from ..lang.visitors import type_of
from .terms import (
    App,
    FALSE_F,
    Formula,
    Num,
    Sym,
    TRUE_F,
    Term,
    eq_f,
    fand,
    fnot,
    for_,
    le_f,
    lt_f,
    t_add,
    t_mul,
    t_sub,
)

__all__ = [
    "EncodingError",
    "intern_string",
    "interned_strings",
    "arg_sym",
    "var_sym",
    "encode_int",
    "encode_bool",
    "encode_expr",
]


class EncodingError(Exception):
    """The expression falls outside the encodable fragment."""


_STRING_CODES: dict[str, int] = {}


def intern_string(s: str) -> int:
    """A stable integer code for ``s`` (distinct strings, distinct codes)."""

    code = _STRING_CODES.get(s)
    if code is None:
        code = len(_STRING_CODES)
        _STRING_CODES[s] = code
    return code


def interned_strings() -> dict[str, int]:
    """A copy of the current interning table (for debugging/reporting)."""

    return dict(_STRING_CODES)


def arg_sym(name: str) -> Sym:
    return Sym(f"a!{name}")


def var_sym(name: str) -> Sym:
    return Sym(f"v!{name}")


def _sort_of(
    e: Expr, functions: FunctionTable | None, sorts: dict[str, Sort] | None
) -> Sort:
    return type_of(e, functions, sorts)


def encode_int(
    e: Expr,
    functions: FunctionTable | None = None,
    sorts: dict[str, Sort] | None = None,
) -> Term:
    """Encode an integer- or string-sorted expression as a term."""

    if isinstance(e, IntConst):
        return Num(e.value)
    if isinstance(e, StrConst):
        return Num(intern_string(e.value))
    if isinstance(e, Arg):
        return arg_sym(e.name)
    if isinstance(e, Var):
        return var_sym(e.name)
    if isinstance(e, Call):
        encoded: list[Term] = []
        for a in e.args:
            if _sort_of(a, functions, sorts) == BOOL:
                raise EncodingError(f"boolean argument in call {e}")
            encoded.append(encode_int(a, functions, sorts))
        return App(e.func, tuple(encoded))
    if isinstance(e, BinOp):
        left = encode_int(e.left, functions, sorts)
        right = encode_int(e.right, functions, sorts)
        if e.op == "+":
            return t_add(left, right)
        if e.op == "-":
            return t_sub(left, right)
        return t_mul(left, right)
    raise EncodingError(f"not an integer expression: {e}")


def encode_bool(
    e: Expr,
    functions: FunctionTable | None = None,
    sorts: dict[str, Sort] | None = None,
) -> Formula:
    """Encode a boolean-sorted expression as a formula."""

    if isinstance(e, BoolConst):
        return TRUE_F if e.value else FALSE_F
    if isinstance(e, Cmp):
        left = encode_int(e.left, functions, sorts)
        right = encode_int(e.right, functions, sorts)
        if e.op == "<":
            return lt_f(left, right)
        if e.op == "<=":
            return le_f(left, right)
        return eq_f(left, right)
    if isinstance(e, Not):
        return fnot(encode_bool(e.operand, functions, sorts))
    if isinstance(e, BoolOp):
        left = encode_bool(e.left, functions, sorts)
        right = encode_bool(e.right, functions, sorts)
        return fand(left, right) if e.op == "and" else for_(left, right)
    if isinstance(e, Var):
        # A boolean local: encode through the 0/1 convention.
        return eq_f(var_sym(e.name), Num(1))
    if isinstance(e, Call):
        if functions is not None and e.func in functions and functions[e.func].result_sort != BOOL:
            raise EncodingError(f"call {e.func} is not boolean-sorted")
        return eq_f(encode_int(e, functions, sorts), Num(1))
    raise EncodingError(f"not a boolean expression: {e}")


def encode_expr(
    e: Expr,
    functions: FunctionTable | None = None,
    sorts: dict[str, Sort] | None = None,
) -> Term | Formula:
    """Encode by sort: booleans become formulas, everything else terms."""

    if _sort_of(e, functions, sorts) == BOOL:
        return encode_bool(e, functions, sorts)
    return encode_int(e, functions, sorts)
