"""Best-effort model extraction for satisfiable formulas.

The solver's primary contract is refutation (an ``unsat`` answer is a
proof); ``sat`` answers are used by the optimiser only as "no entailment".
For diagnostics, tests, and the invariant engine it is still useful to
*exhibit* satisfying assignments.  This module constructs them:

* :func:`lia_model` — a model of a linear integer constraint system, via
  equality substitution, disequality branch search, and Fourier–Motzkin
  elimination with back-substitution;
* :func:`literals_model` — a model of a conjunction of theory literals,
  assigning congruence classes through the LIA model and synthesising
  function interpretations from the application atoms;
* :meth:`repro.smt.solver.Solver.model` (implemented here as
  :func:`formula_model`) — a model of an arbitrary formula.

Everything returned is **verified** against the original constraints
before being handed out; when rounding or the non-convex corners defeat
the construction, the functions return ``None`` rather than a wrong model
— callers treat that as "satisfiable, but no witness available".
"""

from __future__ import annotations

from math import ceil, floor
from typing import Iterable

from .combine import TheoryLiteral, _equality_sides, _lin_over_classes
from .euf import CongruenceClosure
from .lia import LinCon, _Unsat, _eliminate_equalities, _normalize_le
from .terms import (
    App,
    Eq,
    FAnd,
    FFalse,
    FNot,
    FOr,
    FTrue,
    Formula,
    Le,
    Lin,
    Num,
    Sym,
    Term,
    as_linear,
)

__all__ = [
    "lia_model",
    "evaluate_lincon",
    "literals_model",
    "evaluate_term",
    "evaluate_formula",
    "formula_model",
]

_DISEQ_BRANCH_LIMIT = 64


def evaluate_lincon(con: LinCon, assignment: dict) -> int:
    """The value of the linear form under ``assignment`` (missing vars = 0)."""

    return con.const + sum(c * assignment.get(v, 0) for v, c in con.coeffs)


def _fm_with_trail(les: list[LinCon]) -> list[tuple[object, list[LinCon]]] | None:
    """Fourier–Motzkin elimination recording, per variable, its bound set.

    Returns the elimination trail (variable, constraints-mentioning-it) in
    elimination order, or None when the system is refuted.
    """

    current: set[LinCon] = set()
    for con in les:
        try:
            norm = _normalize_le(con.coeff_map(), con.const)
        except _Unsat:
            return None
        if norm is not None:
            current.add(norm)

    trail: list[tuple[object, list[LinCon]]] = []
    guard = 0
    while True:
        guard += 1
        if guard > 200:
            return None
        variables: set = set()
        for con in current:
            for v, _c in con.coeffs:
                variables.add(v)
        if not variables:
            return trail
        var = min(variables, key=repr)
        with_var = [c for c in current if dict(c.coeffs).get(var, 0) != 0]
        rest = [c for c in current if dict(c.coeffs).get(var, 0) == 0]
        trail.append((var, with_var))
        new: set[LinCon] = set(rest)
        pos = [c for c in with_var if dict(c.coeffs)[var] > 0]
        neg = [c for c in with_var if dict(c.coeffs)[var] < 0]
        for p in pos:
            a = dict(p.coeffs)[var]
            for n in neg:
                b = -dict(n.coeffs)[var]
                combined: dict = {}
                for v, c in p.coeffs:
                    if v != var:
                        combined[v] = combined.get(v, 0) + b * c
                for v, c in n.coeffs:
                    if v != var:
                        combined[v] = combined.get(v, 0) + a * c
                try:
                    norm = _normalize_le(combined, b * p.const + a * n.const)
                except _Unsat:
                    return None
                if norm is not None:
                    new.add(norm)
        if len(new) > 4000:
            return None
        current = new


def _assign_from_trail(trail) -> dict | None:
    """Assign variables in reverse elimination order within their bounds."""

    assignment: dict = {}
    for var, constraints in reversed(trail):
        lower = None
        upper = None
        for con in constraints:
            coeffs = dict(con.coeffs)
            a = coeffs.pop(var)
            rest = con.const + sum(c * assignment.get(v, 0) for v, c in coeffs.items())
            # a*var + rest <= 0
            if a > 0:
                # v <= floor(-rest / a)
                bound = floor(-rest / a)
                upper = bound if upper is None else min(upper, bound)
            else:
                # v >= ceil(rest / -a)
                bound = ceil(rest / (-a))
                lower = bound if lower is None else max(lower, bound)
        if lower is not None and upper is not None and lower > upper:
            return None
        if lower is not None and upper is not None:
            value = 0 if lower <= 0 <= upper else lower
        elif lower is not None:
            value = max(lower, 0)
        elif upper is not None:
            value = min(upper, 0)
        else:
            value = 0
        assignment[var] = value
    return assignment


def lia_model(
    eqs: Iterable[LinCon],
    les: Iterable[LinCon],
    diseqs: Iterable[LinCon] = (),
    _depth: int = 0,
) -> dict | None:
    """A verified integer model of the constraint system, or None."""

    eqs, les, diseqs = list(eqs), list(les), list(diseqs)
    try:
        _none, les2, dis2 = _eliminate_equalities(list(eqs), list(les), list(diseqs))
    except _Unsat:
        return None

    def finish(assignment: dict | None) -> dict | None:
        if assignment is None:
            return None
        # Give every equality-eliminated variable its implied value by
        # solving the original equalities greedily.
        for _round in range(len(eqs) + 1):
            progress = False
            for eq in eqs:
                unknown = [v for v, _c in eq.coeffs if v not in assignment]
                if len(unknown) != 1:
                    continue
                v = unknown[0]
                coeffs = dict(eq.coeffs)
                a = coeffs.pop(v)
                rest = eq.const + sum(c * assignment.get(u, 0) for u, c in coeffs.items())
                if rest % a != 0:
                    return None
                assignment[v] = -rest // a
                progress = True
            if not progress:
                break
        for eq in eqs:
            for v, _c in eq.coeffs:
                assignment.setdefault(v, 0)
        # Final verification against everything.
        for eq in eqs:
            if evaluate_lincon(eq, assignment) != 0:
                return None
        for le in les:
            if evaluate_lincon(le, assignment) > 0:
                return None
        for ne in diseqs:
            if evaluate_lincon(ne, assignment) == 0:
                return None
        return assignment

    if not dis2:
        trail = _fm_with_trail(les2)
        if trail is None:
            return None
        return finish(_assign_from_trail(trail))

    if _depth > _DISEQ_BRANCH_LIMIT:
        return None
    head, *tail = dis2
    for sign in (1, -1):
        # head != 0 as head <= -1 (sign=1) or -head <= -1 (sign=-1)
        coeffs = {v: sign * c for v, c in head.coeffs}
        branch = LinCon.make(coeffs, sign * head.const + 1)
        candidate = lia_model([], les2 + [branch], tail, _depth + 1)
        if candidate is not None:
            result = finish(candidate)
            if result is not None:
                return result
    return None


# ---------------------------------------------------------------------------
# Models for theory-literal conjunctions (EUF + LIA)
# ---------------------------------------------------------------------------


def literals_model(literals: list[TheoryLiteral]) -> tuple[dict, dict] | None:
    """A verified model ``(variable values, function tables)`` or None.

    Function tables map ``func -> {arg tuple -> value}``; applications not
    forced by the constraints are absent (interpret as any default).
    """

    cc = CongruenceClosure()
    for lit in literals:
        cc.add_term(lit.term)
        if lit.kind == "eq":
            lhs, rhs = _equality_sides(lit.term)
            cc.assert_equal(lhs, rhs)
    if cc.has_constant_conflict():
        return None

    eqs: list[LinCon] = []
    les: list[LinCon] = []
    nes: list[LinCon] = []
    for lit in literals:
        coeffs, const = _lin_over_classes(lit.term, cc)
        con = LinCon.make(coeffs, const)
        if lit.kind == "eq":
            eqs.append(con)
        elif lit.kind == "le":
            les.append(con)
        else:
            nes.append(con)
    handle_values = lia_model(eqs, les, nes)
    if handle_values is None:
        return None

    # Value of every atom = value of its class handle (or its numeral).
    atoms: set[Term] = set()

    def collect(t: Term) -> None:
        if isinstance(t, Sym):
            atoms.add(t)
        elif isinstance(t, App):
            atoms.add(t)
            for a in t.args:
                collect(a)
        elif isinstance(t, Lin):
            for a, _c in t.coeffs:
                collect(a)

    for lit in literals:
        collect(lit.term)

    def class_value(atom: Term) -> int:
        c = cc.constant_of(atom)
        if c is not None:
            return c
        return handle_values.get(cc.root_id(atom), 0)

    variables: dict[str, int] = {}
    functions: dict[str, dict[tuple, int]] = {}
    for atom in atoms:
        if isinstance(atom, Sym):
            variables[atom.name] = class_value(atom)
    # Function tables need argument *values*; compute innermost-first.
    def term_value(t: Term) -> int:
        if isinstance(t, Num):
            return t.value
        if isinstance(t, Sym):
            return variables.get(t.name, class_value(t))
        if isinstance(t, App):
            return class_value(t)
        if isinstance(t, Lin):
            return t.const + sum(c * term_value(a) for a, c in t.coeffs)
        raise TypeError(t)

    for atom in atoms:
        if isinstance(atom, App):
            key = tuple(term_value(a) for a in atom.args)
            table = functions.setdefault(atom.func, {})
            value = class_value(atom)
            if key in table and table[key] != value:
                return None  # functionality violated: no witness available
            table[key] = value

    # Final verification of every literal under the constructed model.
    for lit in literals:
        value = _eval_term_model(lit.term, variables, functions)
        if value is None:
            return None
        if lit.kind == "eq" and value != 0:
            return None
        if lit.kind == "le" and value > 0:
            return None
        if lit.kind == "ne" and value == 0:
            return None
    return variables, functions


def _eval_term_model(t: Term, variables: dict, functions: dict) -> int | None:
    if isinstance(t, Num):
        return t.value
    if isinstance(t, Sym):
        return variables.get(t.name, 0)
    if isinstance(t, App):
        args = []
        for a in t.args:
            v = _eval_term_model(a, variables, functions)
            if v is None:
                return None
            args.append(v)
        table = functions.get(t.func, {})
        return table.get(tuple(args), 0)
    if isinstance(t, Lin):
        total = t.const
        for atom, coef in t.coeffs:
            v = _eval_term_model(atom, variables, functions)
            if v is None:
                return None
            total += coef * v
        return total
    return None


def evaluate_term(t: Term, variables: dict, functions: dict | None = None) -> int:
    """Evaluate a term under a model (missing entries default to 0)."""

    value = _eval_term_model(t, variables, functions or {})
    assert value is not None
    return value


def evaluate_formula(f: Formula, variables: dict, functions: dict | None = None) -> bool:
    """Evaluate a formula under a model."""

    functions = functions or {}
    if isinstance(f, FTrue):
        return True
    if isinstance(f, FFalse):
        return False
    if isinstance(f, Le):
        return evaluate_term(f.term, variables, functions) <= 0
    if isinstance(f, Eq):
        return evaluate_term(f.term, variables, functions) == 0
    if isinstance(f, FNot):
        return not evaluate_formula(f.operand, variables, functions)
    if isinstance(f, FAnd):
        return all(evaluate_formula(g, variables, functions) for g in f.args)
    if isinstance(f, FOr):
        return any(evaluate_formula(g, variables, functions) for g in f.args)
    raise TypeError(f"not a formula: {f!r}")


def formula_model(formula: Formula, solver=None) -> tuple[dict, dict] | None:
    """A verified model of ``formula``, or None.

    Runs the DPLL(T) loop; on the satisfying propositional assignment,
    constructs a theory model from the sufficient literal set and verifies
    the *whole formula* under it.
    """

    from .cnf import CnfBuilder
    from .sat import SatSolver
    from .combine import check_literals, minimize_core

    if isinstance(formula, FTrue):
        return {}, {}
    if isinstance(formula, FFalse):
        return None

    sat = SatSolver()
    builder = CnfBuilder(sat)
    builder.assert_formula(formula)
    for _ in range(200):
        result = sat.solve()
        if not result.is_sat:
            return None
        assignment = builder.sufficient_literals(result.model)
        literals = [TheoryLiteral.from_formula(a, v) for a, v in assignment]
        verdict = check_literals(literals)
        if verdict.status == "sat":
            model = literals_model(literals)
            if model is not None and evaluate_formula(formula, *model):
                return model
            return None  # satisfiable, but witness construction failed
        if verdict.status == "unknown":
            return None
        core = minimize_core(literals)
        core_set = set(core)
        block = []
        for (atom, value), lit in zip(assignment, literals):
            if lit in core_set:
                var = builder.atom_vars[atom]
                block.append(-var if value else var)
        if not block:
            return None
        sat.reset_to_root()
        sat.add_clause(block)
    return None
