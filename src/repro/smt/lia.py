"""Linear integer arithmetic decision engine (Fourier–Motzkin based).

Decides conjunctions of linear equalities, inequalities and disequalities
over integer-valued unknowns.  The design point matches its use inside the
lazy theory combination:

* **UNSAT answers are proofs.**  Every refutation is a chain of valid
  derivations (gcd divisibility checks, unit-coefficient Gaussian
  elimination, Fourier–Motzkin combinations with integer tightening,
  case splits on disequalities), so an ``unsat`` verdict can be trusted by
  the consolidation calculus.
* **SAT answers may be approximate.**  Fourier–Motzkin establishes rational
  satisfiability; in rare integer-only-unsat corners (and when budgets are
  exceeded) the engine answers ``sat``/``unknown``, which merely makes the
  optimiser skip an opportunity — never produce wrong code.

Constraints are kept as ``coeffs . vars + const (<=|=|!=) 0`` with
coefficient maps keyed by arbitrary hashable variable handles (the combiner
uses term atoms directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Hashable, Iterable

__all__ = ["LinCon", "LiaStatus", "lia_check", "lia_implies_eq"]

Var = Hashable


@dataclass(frozen=True)
class LinCon:
    """A linear constraint ``sum(coeffs[v] * v) + const  REL  0``."""

    coeffs: tuple[tuple[Var, int], ...]
    const: int

    @staticmethod
    def make(coeffs: dict[Var, int], const: int) -> "LinCon":
        items = tuple(sorted(((v, c) for v, c in coeffs.items() if c != 0), key=lambda p: repr(p[0])))
        return LinCon(items, const)

    def coeff_map(self) -> dict[Var, int]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs


LiaStatus = str  # 'sat' | 'unsat' | 'unknown'

_DISEQ_SPLIT_LIMIT = 10  # max disequalities to case-split (2^10 branches worst case)
_FM_CONSTRAINT_BUDGET = 4000


def _normalize_le(coeffs: dict[Var, int], const: int) -> LinCon | None:
    """Canonicalise ``<= 0``; returns None if trivially true, raises on false."""

    coeffs = {v: c for v, c in coeffs.items() if c != 0}
    if not coeffs:
        if const <= 0:
            return None
        raise _Unsat()
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        coeffs = {v: c // g for v, c in coeffs.items()}
        const = -((-const) // g)  # integer tightening
    return LinCon.make(coeffs, const)


def _normalize_eq(coeffs: dict[Var, int], const: int) -> LinCon | None:
    coeffs = {v: c for v, c in coeffs.items() if c != 0}
    if not coeffs:
        if const == 0:
            return None
        raise _Unsat()
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        if const % g != 0:
            raise _Unsat()
        coeffs = {v: c // g for v, c in coeffs.items()}
        const //= g
    return LinCon.make(coeffs, const)


class _Unsat(Exception):
    """Internal signal: the current conjunction is refuted."""


class _Budget(Exception):
    """Internal signal: resource budget exhausted; answer 'unknown'."""


def _substitute(con: LinCon, var: Var, replacement: dict[Var, int], rep_const: int) -> tuple[dict[Var, int], int]:
    """Replace ``var`` by ``replacement + rep_const`` inside ``con``."""

    coeffs = con.coeff_map()
    k = coeffs.pop(var, 0)
    const = con.const
    if k:
        for v, c in replacement.items():
            coeffs[v] = coeffs.get(v, 0) + k * c
        const += k * rep_const
    return coeffs, const


def _eliminate_equalities(
    eqs: list[LinCon], les: list[LinCon], diseqs: list[LinCon]
) -> tuple[list[LinCon], list[LinCon], list[LinCon]]:
    """Gaussian elimination using unit-coefficient pivots.

    Equalities without a unit coefficient are deferred: they are turned into
    opposing inequalities at the end (sound; loses only some integer-level
    refutation power, which the gcd checks partially recover).
    """

    eqs = list(eqs)
    les = list(les)
    diseqs = list(diseqs)
    progress = True
    while progress:
        progress = False
        for i, eq in enumerate(eqs):
            pivot = next((v for v, c in eq.coeffs if abs(c) == 1), None)
            if pivot is None:
                continue
            coeffs = eq.coeff_map()
            k = coeffs.pop(pivot)
            # pivot = (-const - rest) / k with k = +-1
            replacement = {v: -c * k for v, c in coeffs.items()}
            rep_const = -eq.const * k
            new_eqs: list[LinCon] = []
            for j, other in enumerate(eqs):
                if j == i:
                    continue
                cs, cn = _substitute(other, pivot, replacement, rep_const)
                norm = _normalize_eq(cs, cn)
                if norm is not None:
                    new_eqs.append(norm)
            new_les: list[LinCon] = []
            for other in les:
                cs, cn = _substitute(other, pivot, replacement, rep_const)
                norm = _normalize_le(cs, cn)
                if norm is not None:
                    new_les.append(norm)
            new_diseqs: list[LinCon] = []
            for other in diseqs:
                cs, cn = _substitute(other, pivot, replacement, rep_const)
                cs = {v: c for v, c in cs.items() if c != 0}
                if not cs:
                    if cn == 0:
                        raise _Unsat()
                    continue  # constant nonzero: satisfied
                new_diseqs.append(LinCon.make(cs, cn))
            eqs, les, diseqs = new_eqs, new_les, new_diseqs
            progress = True
            break
    # Residual non-unit equalities become inequality pairs.
    for eq in eqs:
        les.append(LinCon(eq.coeffs, eq.const))
        les.append(LinCon(tuple((v, -c) for v, c in eq.coeffs), -eq.const))
    return [], les, diseqs


def _fourier_motzkin(les: list[LinCon]) -> None:
    """Refute or accept a conjunction of ``<= 0`` constraints; raises on unsat."""

    # Deduplicate.
    current: set[LinCon] = set()
    for con in les:
        norm = _normalize_le(con.coeff_map(), con.const)
        if norm is not None:
            current.add(norm)
    total = len(current)

    while True:
        variables: dict[Var, tuple[int, int]] = {}
        for con in current:
            for v, c in con.coeffs:
                pos, neg = variables.get(v, (0, 0))
                if c > 0:
                    variables[v] = (pos + 1, neg)
                else:
                    variables[v] = (pos, neg + 1)
        if not variables:
            return  # only constant constraints remained, all satisfied
        # Pick the variable minimising the number of generated combinations.
        var = min(variables, key=lambda v: variables[v][0] * variables[v][1])
        pos_cons = [c for c in current if dict(c.coeffs).get(var, 0) > 0]
        neg_cons = [c for c in current if dict(c.coeffs).get(var, 0) < 0]
        rest = [c for c in current if dict(c.coeffs).get(var, 0) == 0]
        new: set[LinCon] = set(rest)
        for p in pos_cons:
            pc = p.coeff_map()
            a = pc[var]
            for n in neg_cons:
                nc = n.coeff_map()
                b = -nc[var]
                combined: dict[Var, int] = {}
                for v, c in pc.items():
                    if v != var:
                        combined[v] = combined.get(v, 0) + b * c
                for v, c in nc.items():
                    if v != var:
                        combined[v] = combined.get(v, 0) + a * c
                norm = _normalize_le(combined, b * p.const + a * n.const)
                if norm is not None:
                    new.add(norm)
        total += len(new)
        if total > _FM_CONSTRAINT_BUDGET:
            raise _Budget()
        current = new
        if not current:
            return


def _check_conjunction(les: list[LinCon], diseqs: list[LinCon], depth: int) -> LiaStatus:
    if not diseqs:
        try:
            _fourier_motzkin(les)
            return "sat"
        except _Unsat:
            return "unsat"
        except _Budget:
            return "unknown"
    if depth >= _DISEQ_SPLIT_LIMIT:
        # Too many splits: drop remaining disequalities (weakens toward SAT).
        status = _check_conjunction(les, [], depth)
        return "unknown" if status == "sat" else status
    head, *tail = diseqs
    # t != 0  ==>  t <= -1  or  t >= 1 ; each branch may itself be refuted
    # during normalisation, which refutes only that branch.
    results: list[LiaStatus] = []
    branches = (
        (head.coeff_map(), head.const + 1),
        ({v: -c for v, c in head.coeffs}, -head.const + 1),
    )
    for coeffs, const in branches:
        try:
            extra = _normalize_le(dict(coeffs), const)
        except _Unsat:
            results.append("unsat")
            continue
        branch = list(les) + ([extra] if extra is not None else [])
        results.append(_check_conjunction(branch, tail, depth + 1))
    if "sat" in results:
        return "sat"
    if "unknown" in results:
        return "unknown"
    return "unsat"


def lia_check(
    eqs: Iterable[LinCon],
    les: Iterable[LinCon],
    diseqs: Iterable[LinCon] = (),
) -> LiaStatus:
    """Decide ``/\\ eqs = 0  /\\ les <= 0  /\\ diseqs != 0``.

    Returns ``'unsat'`` only with a valid refutation; ``'sat'`` / ``'unknown'``
    otherwise (see module docstring for the asymmetry rationale).
    """

    try:
        norm_eqs: list[LinCon] = []
        for eq in eqs:
            n = _normalize_eq(eq.coeff_map(), eq.const)
            if n is not None:
                norm_eqs.append(n)
        norm_les: list[LinCon] = []
        for le in les:
            n = _normalize_le(le.coeff_map(), le.const)
            if n is not None:
                norm_les.append(n)
        norm_dis: list[LinCon] = []
        for d in diseqs:
            coeffs = {v: c for v, c in d.coeffs if c != 0}
            if not coeffs:
                if d.const == 0:
                    return "unsat"
                continue
            norm_dis.append(LinCon.make(coeffs, d.const))
        _, les2, dis2 = _eliminate_equalities(norm_eqs, norm_les, norm_dis)
        return _check_conjunction(les2, dis2, 0)
    except _Unsat:
        return "unsat"
    except _Budget:
        return "unknown"


def lia_implies_eq(
    eqs: list[LinCon], les: list[LinCon], diseqs: list[LinCon], u: Var, v: Var
) -> bool:
    """Whether the constraint set entails ``u = v`` (proved, not guessed)."""

    witness = LinCon.make({u: 1, v: -1}, 0)
    return lia_check(eqs, les, diseqs + [witness]) == "unsat"
