"""A CDCL SAT solver (the propositional core of the DPLL(T) loop).

Features: two-watched-literal propagation, first-UIP conflict analysis with
clause learning, VSIDS-style activity with exponential decay, geometric
restarts, and incremental clause addition between ``solve`` calls (used by
the lazy theory-lemma loop in :mod:`repro.smt.solver`).

Literals follow the DIMACS convention: variables are positive integers and a
literal is ``+v`` or ``-v``.  The solver is deliberately self-contained —
it knows nothing about theories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SatSolver", "SatResult"]


@dataclass
class SatResult:
    """Outcome of a ``solve`` call."""

    status: str  # 'sat' | 'unsat' | 'unknown'
    model: dict[int, bool] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class SatSolver:
    """CDCL solver over integer-labelled variables."""

    def __init__(self, conflict_budget: int = 200_000) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}  # literal -> clause indices
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, int | None] = {}  # var -> clause idx or None
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.activity: dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflict_budget = conflict_budget
        self._unsat = False
        self._qhead = 0

    # -- construction --------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self.activity[v] = 0.0
        return v

    def ensure_var(self, v: int) -> None:
        while self.num_vars < v:
            self.new_var()

    def reset_to_root(self) -> None:
        """Backtrack to decision level zero (required before adding clauses)."""

        self._cancel_until(0)

    def add_clause(self, lits: list[int]) -> None:
        """Add a clause; duplicates removed, tautologies dropped."""

        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
                self.ensure_var(abs(lit))
        if not clause:
            self._unsat = True
            return
        # Adding clauses is only legal at decision level 0.
        assert not self.trail_lim, "add_clause while search is in progress"
        if len(clause) == 1:
            lit = clause[0]
            current = self.assign.get(abs(lit))
            if current is None:
                self._enqueue(lit, None)
            elif current != (lit > 0):
                self._unsat = True
            return
        idx = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(idx)
        self.watches.setdefault(clause[1], []).append(idx)

    # -- trail management -----------------------------------------------------

    def _enqueue(self, lit: int, reason: int | None) -> None:
        v = abs(lit)
        self.assign[v] = lit > 0
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(lit)

    def _value(self, lit: int) -> bool | None:
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _cancel_until(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            start = self.trail_lim.pop()
            for lit in self.trail[start:]:
                v = abs(lit)
                del self.assign[v]
                del self.level[v]
                del self.reason[v]
            del self.trail[start:]
        self._qhead = min(self._qhead, len(self.trail))

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""

        while self._qhead < len(self.trail):
            lit = self.trail[self._qhead]
            self._qhead += 1
            falsified = -lit
            watch_list = self.watches.get(falsified, [])
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = self.clauses[ci]
                # Ensure the falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    i += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        self.watches.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) is False:
                    return ci
                self._enqueue(first, ci)
                i += 1
        return None

    # -- conflict analysis -------------------------------------------------------

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause, backjump level)."""

        learnt: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit = 0
        clause = self.clauses[conflict]
        index = len(self.trail)
        current_level = len(self.trail_lim)

        while True:
            for q in clause:
                if q == lit:
                    continue
                v = abs(q)
                if v in seen or self.level[v] == 0:
                    continue
                seen.add(v)
                self._bump(v)
                if self.level[v] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Find the next literal on the trail to resolve.
            while True:
                index -= 1
                lit = -self.trail[index]
                if abs(lit) in seen:
                    break
            counter -= 1
            seen.discard(abs(lit))
            if counter == 0:
                learnt.append(lit)
                break
            reason = self.reason[abs(lit)]
            assert reason is not None
            clause = self.clauses[reason]
            lit = -lit  # the literal as it appears in its reason clause

        # learnt[-1] is the asserting (UIP) literal; move it to front.
        learnt.reverse()
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        levels = sorted((self.level[abs(l)] for l in learnt[1:]), reverse=True)
        return learnt, levels[0]

    def _bump(self, v: int) -> None:
        self.activity[v] = self.activity.get(v, 0.0) + self.var_inc
        if self.activity[v] > 1e100:
            for k in self.activity:
                self.activity[k] *= 1e-100
            self.var_inc *= 1e-100

    def _decay(self) -> None:
        self.var_inc /= self.var_decay

    # -- search ---------------------------------------------------------------

    def _pick_branch_var(self) -> int | None:
        best: int | None = None
        best_act = -1.0
        for v in range(1, self.num_vars + 1):
            if v not in self.assign and self.activity.get(v, 0.0) > best_act:
                best = v
                best_act = self.activity[v]
        return best

    def solve(self, assumptions: list[int] | None = None) -> SatResult:
        """Search for a model extending ``assumptions``.

        Between calls, learnt clauses are kept; the trail is reset to level
        zero first, so repeated calls with new clauses (theory lemmas)
        resume efficiently.
        """

        if self._unsat:
            return SatResult("unsat")
        self._cancel_until(0)
        self._qhead = 0
        if self._propagate() is not None:
            self._unsat = True
            return SatResult("unsat")

        conflicts = 0
        restart_limit = 64

        # Apply assumptions as pseudo-decisions at their own levels.
        assumptions = list(assumptions or [])

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                if conflicts > self.conflict_budget:
                    return SatResult("unknown")
                if not self.trail_lim:
                    self._unsat = True
                    return SatResult("unsat")
                learnt, back_level = self._analyze(conflict)
                # Never backjump above an assumption level.
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    current = self._value(learnt[0])
                    if current is False:
                        self._unsat = True
                        return SatResult("unsat")
                    if current is None:
                        self._enqueue(learnt[0], None)
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(idx)
                    self.watches.setdefault(learnt[1], []).append(idx)
                    self._enqueue(learnt[0], idx)
                self._decay()
                if conflicts % restart_limit == 0:
                    restart_limit = int(restart_limit * 1.5)
                    self._cancel_until(0)
                continue

            # Assumption handling: enqueue any unassigned assumption next.
            pending = None
            for a in assumptions:
                val = self._value(a)
                if val is False:
                    return SatResult("unsat")
                if val is None:
                    pending = a
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending, None)
                continue

            v = self._pick_branch_var()
            if v is None:
                return SatResult("sat", dict(self.assign))
            self.trail_lim.append(len(self.trail))
            # Phase saving would go here; default to False first, which
            # biases toward small models of the blocking-clause loop.
            self._enqueue(-v, None)
