"""Congruence closure for equality with uninterpreted functions (EUF).

Given a set of asserted equalities between terms, computes the congruence
closure: the smallest equivalence relation containing the equalities and
closed under ``x1=y1 .. xk=yk  ==>  f(xs)=f(ys)``.  Asserted disequalities
are then checked against the closure.

The implementation is the classic union-find + signature-table algorithm
(Downey–Sethi–Tarjan / Nelson–Oppen style) over a term DAG.  It is used in
two places:

* inside the theory checker (:mod:`repro.smt.combine`) to detect EUF
  conflicts and to export the equivalence classes of function applications
  so that the arithmetic solver can merge their proxy variables, and
* by the cross-simplifier to discover that two syntactically different
  calls must return the same value under the current context.

Only ground reasoning is needed — the fragment is quantifier free.
"""

from __future__ import annotations

from .terms import App, Lin, Num, Sym, Term, as_linear

__all__ = ["CongruenceClosure"]


class CongruenceClosure:
    """An incremental congruence-closure engine over integer terms.

    ``Lin`` terms are treated as opaque *arithmetic* nodes: congruence over
    ``+`` is handled by registering a Lin node as a virtual application of
    the interpreted symbol ``@lin`` applied to its atoms — so
    ``x = y  ==>  x + 1 = y + 1`` is derived congruentially, while deeper
    arithmetic consequences are left to the LIA engine.
    """

    def __init__(self) -> None:
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        self._parent: list[int] = []
        self._rank: list[int] = []
        self._members: list[list[int]] = []  # class members (at representative)
        self._uses: list[list[int]] = []  # parent applications (at representative)
        self._sig: dict[tuple, int] = {}  # signature -> node id
        self._children: list[tuple[str, tuple[int, ...]] | None] = []
        self._pending: list[tuple[int, int]] = []

    # -- term registration -----------------------------------------------------

    def add_term(self, t: Term) -> int:
        """Intern ``t`` (and all subterms) into the DAG; returns its node id."""

        if t in self._ids:
            return self._ids[t]
        if isinstance(t, (Num, Sym)):
            node = self._new_node(t, None)
        elif isinstance(t, App):
            arg_ids = tuple(self.add_term(a) for a in t.args)
            node = self._new_node(t, (t.func, arg_ids))
        elif isinstance(t, Lin):
            # Register as @lin with the sorted (coef, atom) signature so that
            # replacing an atom by an equal atom yields a congruent Lin.
            parts: list[int] = []
            key_parts: list[str] = [str(t.const)]
            for atom, coef in t.coeffs:
                parts.append(self.add_term(atom))
                key_parts.append(str(coef))
            node = self._new_node(t, (f"@lin:{':'.join(key_parts)}", tuple(parts)))
        else:
            raise TypeError(f"not a term: {t!r}")
        self._ids[t] = node
        if self._children[node] is not None:
            self._install_signature(node)
        self._flush()
        return node

    def _new_node(self, t: Term, children: tuple[str, tuple[int, ...]] | None) -> int:
        node = len(self._terms)
        self._terms.append(t)
        self._parent.append(node)
        self._rank.append(0)
        self._members.append([node])
        self._uses.append([])
        self._children.append(children)
        return node

    def _install_signature(self, node: int) -> None:
        children = self._children[node]
        assert children is not None
        func, arg_ids = children
        sig = (func, tuple(self._find(a) for a in arg_ids))
        existing = self._sig.get(sig)
        if existing is not None and self._find(existing) != self._find(node):
            self._pending.append((existing, node))
        else:
            self._sig[sig] = node
        for a in arg_ids:
            self._uses[self._find(a)].append(node)

    # -- union-find --------------------------------------------------------------

    def _find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        elif self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        # Move rb's class into ra and re-hash the applications using rb.
        self._parent[rb] = ra
        self._members[ra].extend(self._members[rb])
        self._members[rb] = []
        affected = self._uses[rb]
        self._uses[rb] = []
        for node in affected:
            children = self._children[node]
            assert children is not None
            func, arg_ids = children
            sig = (func, tuple(self._find(x) for x in arg_ids))
            existing = self._sig.get(sig)
            if existing is not None and self._find(existing) != self._find(node):
                self._pending.append((existing, node))
            else:
                self._sig[sig] = node
            self._uses[ra].append(node)

    def _flush(self) -> None:
        while self._pending:
            a, b = self._pending.pop()
            self._union(a, b)

    # -- public API ---------------------------------------------------------------

    def assert_equal(self, s: Term, t: Term) -> None:
        """Assert ``s = t`` and propagate congruences."""

        a = self.add_term(s)
        b = self.add_term(t)
        self._union(a, b)
        self._flush()

    def are_equal(self, s: Term, t: Term) -> bool:
        """Whether ``s = t`` follows from the asserted equalities."""

        a = self.add_term(s)
        b = self.add_term(t)
        return self._find(a) == self._find(b)

    def root_id(self, t: Term) -> int:
        """The union-find root id of ``t``'s class (stable between unions)."""

        return self._find(self.add_term(t))

    def representative(self, t: Term) -> Term:
        """A canonical member of ``t``'s class (stable within one closure)."""

        node = self.add_term(t)
        root = self._find(node)
        return self._terms[min(self._members[root])]

    def equivalence_classes(self) -> list[list[Term]]:
        """All non-singleton classes, as term lists."""

        out: list[list[Term]] = []
        for node in range(len(self._terms)):
            if self._find(node) == node and len(self._members[node]) > 1:
                out.append([self._terms[i] for i in self._members[node]])
        return out

    def class_of(self, t: Term) -> list[Term]:
        node = self.add_term(t)
        root = self._find(node)
        return [self._terms[i] for i in self._members[root]]

    def has_constant_conflict(self) -> bool:
        """Whether two distinct numerals ended up in the same class."""

        for cls in self.equivalence_classes():
            nums = {term.value for term in cls if isinstance(term, Num)}
            if len(nums) > 1:
                return True
        return False

    def constant_of(self, t: Term) -> int | None:
        """The numeral merged with ``t``'s class, if any."""

        for member in self.class_of(t):
            if isinstance(member, Num):
                return member.value
        return None
