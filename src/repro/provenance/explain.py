"""``repro explain`` — the EXPLAIN plan for consolidation.

:func:`explain_batch` builds a query batch from one of the evaluation
domains, consolidates the chosen pair with derivation recording on,
executes both the ``whereMany`` baseline and the merged program on an
instrumented dataflow, and joins everything into one
:class:`ExplainReport`:

* the full derivation tree per pair (every calculus rule applied, with
  the entailments, rewrites and heuristic decisions under each node);
* rule frequencies and the ten slowest SMT entailments with their ``Ψ``
  contexts (the optimiser's hotspot profile);
* the cost-attribution table — static predicted vs observed per-record
  cost for the ``whereMany`` / ``whereConsolidated`` operators.

Three renderers share the report: :func:`render_text` (terminal tree),
:func:`render_json` (machine-readable, optionally timing-stripped for
golden tests) and :func:`render_html` (a self-contained single-file
report, no external assets).
"""

from __future__ import annotations

import html as html_mod
import json
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.static import validate_consolidation
from ..config import ExecutionConfig
from ..consolidation import ConsolidationOptions, consolidate_all
from ..naiad.linq import from_collection
from ..telemetry import Telemetry
from .attribution import DEFAULT_LOOSE_THRESHOLD, OperatorAttribution, attribute_costs
from .recorder import DerivationTree, RuleNode, _strip_timings

__all__ = [
    "ExplainReport",
    "explain_batch",
    "render_text",
    "render_json",
    "render_html",
]

# Modest sizes: explain is interactive; the paper-scale generators are for
# the figure harnesses.
_DATASET_MAKERS = {
    "weather": lambda ds: ds.generate_weather(cities=60),
    "flight": lambda ds: ds.generate_flights(airlines=60),
    "news": lambda ds: ds.generate_news(articles=300),
    "twitter": lambda ds: ds.generate_twitter(tweets=300),
    "stock": lambda ds: ds.generate_stocks(companies=20, total_daily_rows=4_000),
}


@dataclass
class ExplainReport:
    """Everything ``repro explain`` knows about one consolidated pair."""

    domain: str
    family: str
    n: int
    seed: int
    pair_pids: tuple[str, ...]
    merged_pid: str
    derivations: list[DerivationTree] = field(default_factory=list)
    rule_counts: dict[str, int] = field(default_factory=dict)
    solver_stats: dict = field(default_factory=dict)
    simplify_stats: dict = field(default_factory=dict)
    validation: Optional[dict] = None
    prefilter: Optional[dict] = None
    attributions: list[OperatorAttribution] = field(default_factory=list)
    rows: int = 0
    consolidation_seconds: float = 0.0
    udf_cost_many: int = 0
    udf_cost_consolidated: int = 0
    planner: str = "related"
    planner_decisions: list[dict] = field(default_factory=list)

    def slowest_entailments(self, count: int = 10, by_time: bool = True):
        """The hotspot list.  ``by_time=False`` orders lexicographically —
        used by the timing-stripped renderings, where wall-clock rank
        would leak nondeterminism into golden files."""

        pool = [e for tree in self.derivations for e in tree.entailments()]
        if by_time:
            return sorted(pool, key=lambda e: -e.seconds)[:count]
        return sorted(pool, key=lambda e: (e.kind, e.source, e.psi, e.query))[:count]

    def to_dict(self, include_timings: bool = True) -> dict:
        doc = {
            "domain": self.domain,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "pair": list(self.pair_pids),
            "merged": self.merged_pid,
            "rows": self.rows,
            "seconds": round(self.consolidation_seconds, 6),
            "rule_counts": self.rule_counts,
            "solver_stats": self.solver_stats,
            "simplify_stats": self.simplify_stats,
            "validation": self.validation,
            "prefilter": self.prefilter,
            "udf_cost": {
                "whereMany": self.udf_cost_many,
                "whereConsolidated": self.udf_cost_consolidated,
            },
            "attributions": [a.to_dict() for a in self.attributions],
            "derivations": [t.to_dict() for t in self.derivations],
            "smt_hotspots": [
                e.to_dict()
                for e in self.slowest_entailments(by_time=include_timings)
            ],
        }
        if self.planner != "related" or self.planner_decisions:
            # Emitted only when the cost-driven planner ran, so default
            # explain documents keep their pre-planner schema.
            doc["planner"] = self.planner
            doc["planner_decisions"] = self.planner_decisions
        if not include_timings:
            doc = _strip_timings(doc)
        return doc


def explain_batch(
    domain: str,
    pair: tuple[int, int] = (0, 1),
    family: str = "Mix",
    n: int = 8,
    seed: int = 1,
    rows: Optional[int] = 200,
    options: ConsolidationOptions | None = None,
    loose_threshold: float = DEFAULT_LOOSE_THRESHOLD,
    dataset=None,
    telemetry=None,
    planner: str = "related",
    calibration=None,
) -> ExplainReport:
    """Consolidate one pair with full recording and instrumented execution.

    ``pair`` indexes into the generated batch (``--pair 0,1``); pass a
    prebuilt ``dataset`` to skip generation (tests do, for speed), and a
    live ``telemetry`` to receive the run's metrics (the CLI passes its
    ``--metrics-out`` registry; per-operator stats require a live
    instance, so a disabled one is replaced by a fresh capture).

    ``planner="calibrated"`` (with an optional ``calibration`` model, see
    ``repro calibrate``) routes the pair through the cost-driven planner;
    its predicted-vs-observed savings land both on the derivation tree
    (a ``planner`` heuristic entry, rendered in every format) and on
    ``report.planner_decisions``.
    """

    from ..queries import DOMAIN_QUERIES

    if domain not in _DATASET_MAKERS:
        raise ValueError(
            f"unknown domain {domain!r}; choose from {sorted(_DATASET_MAKERS)}"
        )
    if dataset is None:
        from .. import datasets as ds

        dataset = _DATASET_MAKERS[domain](ds)
    module = DOMAIN_QUERIES[domain]
    if family not in module.FAMILY_NAMES:
        raise ValueError(
            f"unknown {domain} family {family!r}; choose from {module.FAMILY_NAMES}"
        )
    batch = module.make_batch(dataset, family, n=n, seed=seed)
    i, j = pair
    if not (0 <= i < len(batch) and 0 <= j < len(batch)) or i == j:
        raise ValueError(f"pair {pair} out of range for a batch of {len(batch)}")
    selected = [batch[i], batch[j]]
    pids = tuple(p.pid for p in selected)

    if telemetry is None or not getattr(telemetry, "enabled", False):
        telemetry = Telemetry()
    report = consolidate_all(
        selected,
        dataset.functions,
        options=options,
        telemetry=telemetry,
        provenance=True,
        prefilter=True,
        planner=planner,
        calibration=calibration,
    )
    prefilter_summary = None
    if report.prefilter is not None:
        prefilter_summary = report.prefilter.to_dict()
        # Rename for the golden-file timing strip (`_strip_timings` zeroes
        # keys literally named "seconds").
        prefilter_summary["seconds"] = prefilter_summary.pop("synthesis_seconds")

    validation = validate_consolidation(
        selected, report.program, dataset.functions
    )

    # Instrumented execution: per-operator stats are only collected with a
    # live telemetry (the NULL path skips the bookkeeping entirely).
    records = dataset.rows if rows is None else dataset.rows[: max(rows, 1)]
    cfg = ExecutionConfig(telemetry=telemetry, functions=dataset.functions)
    many_run = (
        from_collection(records, config=cfg).where_many(selected).run(cfg)
    )
    cons_run = (
        from_collection(records, config=cfg)
        .where_consolidated(report.program, list(pids))
        .run(cfg)
    )

    predicted = {
        f"whereMany[{len(selected)}]": validation.originals_cost_upper,
        f"whereConsolidated[{len(pids)}]": validation.merged_cost_upper,
    }
    per_operator = dict(many_run.metrics.per_operator)
    per_operator.update(cons_run.metrics.per_operator)
    attributions = attribute_costs(
        per_operator, predicted, loose_threshold=loose_threshold, telemetry=telemetry
    )

    rule_counts: dict[str, int] = {}
    for tree in report.derivations:
        for rule, count in tree.rule_counts().items():
            rule_counts[rule] = rule_counts.get(rule, 0) + count

    return ExplainReport(
        domain=domain,
        family=family,
        n=n,
        seed=seed,
        pair_pids=pids,
        merged_pid=report.program.pid,
        derivations=list(report.derivations),
        rule_counts=rule_counts,
        solver_stats=dict(report.solver_stats),
        simplify_stats=dict(report.simplify_stats),
        validation=validation.to_dict(),
        prefilter=prefilter_summary,
        attributions=attributions,
        rows=len(records),
        consolidation_seconds=report.duration,
        udf_cost_many=many_run.metrics.udf_cost,
        udf_cost_consolidated=cons_run.metrics.udf_cost,
        planner=report.planner,
        planner_decisions=list(report.planner_decisions),
    )


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def _node_lines(node: RuleNode, prefix: str, include_timings: bool) -> list[str]:
    lines: list[str] = []
    label = node.rule if not node.detail else f"{node.rule} — {node.detail}"
    lines.append(f"{prefix}{label}")
    pad = prefix.replace("├─ ", "│  ").replace("└─ ", "   ")
    for e in node.entailments:
        timing = f" [{e.seconds * 1000:.2f}ms]" if include_timings else ""
        lines.append(
            f"{pad}  ⊢ {e.kind} ({e.source}{timing}): "
            f"Ψ = {e.psi or 'true'} ⊨ {e.query} → {e.verdict}"
        )
    for r in node.rewrites:
        lines.append(
            f"{pad}  ↦ {r.site}: {r.before} → {r.after} (Δcost {r.cost_delta:+d})"
        )
    for h in node.heuristics:
        verdict = "accept" if h.accepted else "reject"
        lines.append(f"{pad}  ? {h.kind} [{verdict}]: {h.detail}")
    for idx, child in enumerate(node.children):
        last = idx == len(node.children) - 1
        branch = "└─ " if last else "├─ "
        lines.extend(_node_lines(child, pad + branch, include_timings))
    return lines


def render_text(report: ExplainReport, include_timings: bool = True) -> str:
    """The terminal rendering: derivation trees plus the summary tables."""

    out: list[str] = []
    out.append(
        f"explain {report.domain}/{report.family} pair {'+'.join(report.pair_pids)}"
        f" → {report.merged_pid}"
    )
    if include_timings:
        out.append(f"consolidation time: {report.consolidation_seconds * 1000:.1f}ms")
    out.append("")
    out.append("rule applications:")
    for rule, count in sorted(report.rule_counts.items(), key=lambda kv: (-kv[1], kv[0])):
        out.append(f"  {rule:<10} {count}")
    out.append("")
    if report.prefilter is not None:
        pre = report.prefilter
        out.append("synthesized prefilter:")
        out.append(f"  phi = {pre['phi']}")
        out.append(
            f"  shape {pre['shape']}  certificate {pre['certificate']}"
            f"  sites {pre['live_sites']}/{pre['sites']} live"
            f" ({pre['dead_sites']} dead, {pre['dropped_conjuncts']} conjuncts dropped)"
        )
        if pre["degraded_reason"]:
            out.append(f"  degraded: {pre['degraded_reason']}")
        out.append("")
    if report.planner_decisions:
        out.append(f"planner ({report.planner}):")
        for d in report.planner_decisions:
            action = "merge" if d["merged"] else "skip "
            flags = " MISPREDICTED" if d["mispredicted"] else ""
            if d["merged"] and not d["used_smt"]:
                flags += " (no smt: budget exhausted)"
            out.append(
                f"  {action} {d['left']} ⊗ {d['right']}: "
                f"predicted {d['predicted_savings_seconds']:.3e}s, "
                f"observed {d['observed_savings_seconds']:.3e}s{flags}"
            )
        out.append("")
    for tree in report.derivations:
        out.append(f"derivation {tree.left} ⊗ {tree.right} → {tree.merged}")
        out.extend(_node_lines(tree.root, "  ", include_timings))
        out.append("")
    hotspots = report.slowest_entailments(by_time=include_timings)
    if hotspots:
        out.append("slowest SMT entailments:")
        for e in hotspots:
            timing = f"{e.seconds * 1000:8.3f}ms  " if include_timings else ""
            out.append(
                f"  {timing}{e.kind} ({e.source}) "
                f"Ψ = {e.psi or 'true'} ⊨ {e.query} → {e.verdict}"
            )
        out.append("")
    out.append("cost attribution (static bound vs observed per record):")
    for a in report.attributions:
        predicted = "∞" if a.predicted_per_record is None else f"{a.predicted_per_record:.0f}"
        observed = "-" if a.observed_per_record is None else f"{a.observed_per_record:.1f}"
        ratio = "-" if a.ratio is None else f"{a.ratio:.2f}x"
        out.append(
            f"  {a.operator:<28} predicted {predicted:>6}  observed {observed:>8}"
            f"  ratio {ratio:>7}  [{a.flag}]"
        )
    out.append(
        f"  udf cost: whereMany {report.udf_cost_many} vs "
        f"whereConsolidated {report.udf_cost_consolidated} over {report.rows} rows"
    )
    return "\n".join(out)


def render_json(report: ExplainReport, include_timings: bool = True) -> str:
    return json.dumps(report.to_dict(include_timings=include_timings), indent=2)


# ---------------------------------------------------------------------------
# HTML rendering (self-contained: inline CSS, zero external assets)
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #ccd; padding: .25rem .6rem; text-align: left;
         font-size: .85rem; }
th { background: #eef; }
ul.tree { list-style: none; padding-left: 1.2rem; border-left: 1px dotted #aab; }
ul.tree > li { margin: .15rem 0; font-size: .85rem; }
.rule { font-weight: 600; color: #16325c; }
.detail { color: #555; }
.event { font-family: ui-monospace, monospace; font-size: .78rem; color: #333;
         display: block; margin-left: .6rem; }
.verdict-true { color: #0a7d38; } .verdict-false { color: #b3261e; }
.flag-ok { color: #0a7d38; } .flag-loose-bound { color: #b25d00; }
.flag-bound-violated { color: #b3261e; font-weight: 600; }
.flag-unbounded { color: #666; }
code { background: #f2f2f8; padding: 0 .2rem; }
"""


def _esc(text: str) -> str:
    return html_mod.escape(str(text), quote=True)


def _node_html(node: RuleNode) -> str:
    parts = ["<li>"]
    parts.append(f'<span class="rule">{_esc(node.rule)}</span>')
    if node.detail:
        parts.append(f' <span class="detail">{_esc(node.detail)}</span>')
    for e in node.entailments:
        cls = "verdict-true" if e.verdict else "verdict-false"
        parts.append(
            f'<span class="event">⊢ {_esc(e.kind)} ({_esc(e.source)}, '
            f"{e.seconds * 1000:.2f}ms): Ψ = {_esc(e.psi or 'true')} ⊨ "
            f'{_esc(e.query)} → <span class="{cls}">{e.verdict}</span></span>'
        )
    for r in node.rewrites:
        parts.append(
            f'<span class="event">↦ {_esc(r.site)}: <code>{_esc(r.before)}</code>'
            f" → <code>{_esc(r.after)}</code> (Δcost {r.cost_delta:+d})</span>"
        )
    for h in node.heuristics:
        verdict = "accept" if h.accepted else "reject"
        parts.append(
            f'<span class="event">? {_esc(h.kind)} [{verdict}]: {_esc(h.detail)}</span>'
        )
    if node.children:
        parts.append('<ul class="tree">')
        parts.extend(_node_html(child) for child in node.children)
        parts.append("</ul>")
    parts.append("</li>")
    return "".join(parts)


def _prefilter_html(pre: Optional[dict]) -> str:
    if pre is None:
        return ""
    degraded = (
        f" Degraded: {_esc(pre['degraded_reason'])}." if pre["degraded_reason"] else ""
    )
    return (
        f"<h2>Synthesized prefilter</h2><p><code>{_esc(pre['phi'])}</code><br>"
        f"shape <b>{_esc(pre['shape'])}</b>, certificate "
        f"<b>{_esc(pre['certificate'])}</b>, sites {pre['live_sites']}/{pre['sites']}"
        f" live ({pre['dead_sites']} dead, {pre['dropped_conjuncts']} conjuncts "
        f"dropped).{degraded}</p>"
    )


def render_html(report: ExplainReport) -> str:
    """One self-contained HTML document (saved as the CI artifact)."""

    rule_rows = "".join(
        f"<tr><td>{_esc(rule)}</td><td>{count}</td></tr>"
        for rule, count in sorted(
            report.rule_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    )
    hotspot_rows = "".join(
        f"<tr><td>{e.seconds * 1000:.3f}</td><td>{_esc(e.kind)}</td>"
        f"<td>{_esc(e.source)}</td><td><code>{_esc(e.psi or 'true')}</code></td>"
        f"<td><code>{_esc(e.query)}</code></td><td>{e.verdict}</td></tr>"
        for e in report.slowest_entailments()
    )
    attribution_rows = "".join(
        "<tr>"
        f"<td>{_esc(a.operator)}</td>"
        f"<td>{'∞' if a.predicted_per_record is None else f'{a.predicted_per_record:.0f}'}</td>"
        f"<td>{'-' if a.observed_per_record is None else f'{a.observed_per_record:.1f}'}</td>"
        f"<td>{'-' if a.ratio is None else f'{a.ratio:.2f}×'}</td>"
        f"<td>{a.records_in}</td>"
        f'<td class="flag-{_esc(a.flag)}">{_esc(a.flag)}</td>'
        "</tr>"
        for a in report.attributions
    )
    trees = "".join(
        f"<h3>{_esc(tree.left)} ⊗ {_esc(tree.right)} → {_esc(tree.merged)} "
        f"({tree.seconds * 1000:.1f}ms)</h3>"
        f'<ul class="tree">{_node_html(tree.root)}</ul>'
        for tree in report.derivations
    )
    validation = report.validation or {}
    stats = report.simplify_stats
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro explain — {_esc(report.domain)}/{_esc(report.family)}</title>
<style>{_CSS}</style></head><body>
<h1>Consolidation explain plan — {_esc(report.domain)}/{_esc(report.family)},
pair {_esc('+'.join(report.pair_pids))} → <code>{_esc(report.merged_pid)}</code></h1>
<p>batch n={report.n}, seed={report.seed}; consolidation took
{report.consolidation_seconds * 1000:.1f}ms; executed over {report.rows} rows.
UDF cost {report.udf_cost_many} (whereMany) vs
{report.udf_cost_consolidated} (whereConsolidated).
Entailment queries: {stats.get("entail_queries", 0)}
(SMT {stats.get("smt_queries", 0)}, memo {stats.get("memo_hits", 0)},
precheck {stats.get("precheck_skips", 0)}).
Static validation: notify <b>{_esc(validation.get("notify", "-"))}</b>,
cost <b>{_esc(validation.get("cost", "-"))}</b>.</p>
{_prefilter_html(report.prefilter)}
<h2>Rule applications</h2>
<table><tr><th>rule</th><th>count</th></tr>{rule_rows}</table>
<h2>Derivations</h2>
{trees}
<h2>Slowest SMT entailments</h2>
<table><tr><th>ms</th><th>kind</th><th>source</th><th>Ψ context</th>
<th>query</th><th>verdict</th></tr>{hotspot_rows}</table>
<h2>Cost attribution</h2>
<table><tr><th>operator</th><th>predicted/record</th><th>observed/record</th>
<th>ratio</th><th>records</th><th>flag</th></tr>{attribution_rows}</table>
</body></html>
"""
