"""The structured derivation recorder behind ``repro explain``.

One :class:`DerivationRecorder` rides along with a
:class:`~repro.consolidation.algorithm.Consolidator` and captures, for a
single pair merge, everything the calculus decided:

* every **rule application** (Assign/Step/Com/Seq, If 1–5, Loop 2/3,
  LoopDrop) as a :class:`RuleNode`; structural rules (the If and Loop
  family) nest their sub-derivations as children, mirroring the Ω′
  recursion, so the tree *is* the derivation of Figure 8;
* every **entailment** the context was asked (``Ψ ⊨ e``, provable
  equality/equivalence, the Loop 2/3 fusion goals) with the rendered
  ``Ψ``, the rendered query, the verdict, the wall time, and which fast
  path answered it (``smt`` / ``memo`` / ``precheck`` / ``syntactic``);
* every **cross-simplification rewrite** that changed an expression,
  with before/after text and the static cost delta;
* every **heuristic decision** — ``related`` accept/reject, the
  ``max_embed_size`` guard, commutativity.

Recording follows the repository's NULL-twin pattern
(:mod:`repro.telemetry.noop`): the shared :data:`NULL_RECORDER` exposes
``enabled = False`` and inert methods, and every producer guards event
construction behind that flag, so the default path allocates **zero**
derivation objects (asserted by ``tests/test_provenance.py``).

Everything recorded is a plain string/number dataclass: trees pickle
across the process-pool executor and serialise with ``to_dict`` for the
JSON/HTML reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Entailment",
    "Rewrite",
    "Heuristic",
    "RuleNode",
    "DerivationTree",
    "DerivationRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "derivation_summary",
]


@dataclass
class Entailment:
    """One semantic question asked of the context ``Ψ``.

    ``kind`` names the judgment (``entails`` / ``entails-not`` /
    ``equal`` / ``iff`` / ``loop2-iff`` / ``loop3-exit`` …); ``source``
    records which layer answered it: ``smt`` (a real solver check),
    ``memo`` (the ``(Ψ, e)`` cache), ``precheck`` (the abstract-env
    interval fast path) or ``syntactic`` (no encoding — vacuously
    false).
    """

    kind: str
    psi: str
    query: str
    verdict: bool
    seconds: float
    source: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "psi": self.psi,
            "query": self.query,
            "verdict": self.verdict,
            "seconds": round(self.seconds, 6),
            "source": self.source,
        }


@dataclass
class Rewrite:
    """One accepted cross-simplification: ``before`` became ``after``."""

    site: str
    before: str
    after: str
    cost_before: int
    cost_after: int

    @property
    def cost_delta(self) -> int:
        return self.cost_after - self.cost_before

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "before": self.before,
            "after": self.after,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
            "cost_delta": self.cost_delta,
        }


@dataclass
class Heuristic:
    """One strategy decision that shaped the derivation (not its soundness)."""

    kind: str
    detail: str
    accepted: bool

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "accepted": self.accepted}


@dataclass
class RuleNode:
    """One calculus-rule application and everything decided under it."""

    rule: str
    detail: str = ""
    entailments: list[Entailment] = field(default_factory=list)
    rewrites: list[Rewrite] = field(default_factory=list)
    heuristics: list[Heuristic] = field(default_factory=list)
    children: list["RuleNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        doc: dict = {"rule": self.rule}
        if self.detail:
            doc["detail"] = self.detail
        if self.entailments:
            doc["entailments"] = [e.to_dict() for e in self.entailments]
        if self.rewrites:
            doc["rewrites"] = [r.to_dict() for r in self.rewrites]
        if self.heuristics:
            doc["heuristics"] = [h.to_dict() for h in self.heuristics]
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc


@dataclass
class DerivationTree:
    """The complete derivation of one pair consolidation."""

    left: str
    right: str
    merged: str = ""
    seconds: float = 0.0
    root: RuleNode = field(default_factory=lambda: RuleNode("Ω"))

    # -- queries -------------------------------------------------------------

    def nodes(self):
        yield from self.root.walk()

    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes():
            if node.rule != "Ω":
                counts[node.rule] = counts.get(node.rule, 0) + 1
        return counts

    def entailments(self) -> list[Entailment]:
        out: list[Entailment] = []
        for node in self.nodes():
            out.extend(node.entailments)
        return out

    def rewrites(self) -> list[Rewrite]:
        out: list[Rewrite] = []
        for node in self.nodes():
            out.extend(node.rewrites)
        return out

    def heuristics(self) -> list[Heuristic]:
        out: list[Heuristic] = []
        for node in self.nodes():
            out.extend(node.heuristics)
        return out

    def slowest_entailments(self, n: int = 10) -> list[Entailment]:
        return sorted(self.entailments(), key=lambda e: -e.seconds)[:n]

    def smt_seconds(self) -> float:
        return sum(e.seconds for e in self.entailments() if e.source == "smt")

    def to_dict(self, include_timings: bool = True) -> dict:
        doc = {
            "left": self.left,
            "right": self.right,
            "merged": self.merged,
            "seconds": round(self.seconds, 6),
            "rule_counts": self.rule_counts(),
            "root": self.root.to_dict(),
        }
        if not include_timings:
            doc = _strip_timings(doc)
        return doc


def derivation_summary(trees) -> dict:
    """Aggregate a batch of :class:`DerivationTree` into one JSON doc.

    The service's ``/v1/explain`` (and the equivalence suite) want a
    compact account of a patch — how many pair merges, which calculus
    rules fired, how much solver time — without shipping whole trees.
    """

    trees = list(trees)
    rules: dict[str, int] = {}
    entailments = rewrites = 0
    smt_seconds = 0.0
    for tree in trees:
        for rule, count in tree.rule_counts().items():
            rules[rule] = rules.get(rule, 0) + count
        entailments += len(tree.entailments())
        rewrites += len(tree.rewrites())
        smt_seconds += tree.smt_seconds()
    return {
        "pairs": len(trees),
        "rules": dict(sorted(rules.items())),
        "entailments": entailments,
        "rewrites": rewrites,
        "smt_seconds": round(smt_seconds, 6),
    }


def _strip_timings(doc):
    """Zero every ``seconds`` field (golden-file stability)."""

    if isinstance(doc, dict):
        return {
            k: (0.0 if k == "seconds" else _strip_timings(v)) for k, v in doc.items()
        }
    if isinstance(doc, list):
        return [_strip_timings(v) for v in doc]
    return doc


class _RuleScope:
    """Context manager popping one structural rule node off the stack."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: "DerivationRecorder") -> None:
        self._recorder = recorder

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._pop()
        return False


class DerivationRecorder:
    """Accumulates :class:`DerivationTree` objects, one per pair merge.

    The recorder keeps a stack of open :class:`RuleNode` scopes; the
    consolidator pushes a scope around each structural rule's
    sub-derivation and appends leaf rules directly, so event producers
    (the simplifier context, the loop-fusion prover) only ever talk to
    ``current`` — they need no knowledge of tree shape.
    """

    enabled = True

    def __init__(self) -> None:
        self.trees: list[DerivationTree] = []
        self._tree: DerivationTree | None = None
        self._stack: list[RuleNode] = []

    # -- pair lifecycle ------------------------------------------------------

    def begin_pair(self, left: str, right: str) -> None:
        self._tree = DerivationTree(left=left, right=right)
        self._stack = [self._tree.root]

    def end_pair(self, merged: str, seconds: float) -> DerivationTree | None:
        tree = self._tree
        if tree is None:
            return None
        tree.merged = merged
        tree.seconds = seconds
        self.trees.append(tree)
        self._tree = None
        self._stack = []
        return tree

    @property
    def current(self) -> RuleNode | None:
        return self._stack[-1] if self._stack else None

    # -- rule events ---------------------------------------------------------

    def rule(self, name: str, detail: str = "") -> _RuleScope:
        """Open a structural rule scope; sub-derivations nest under it."""

        node = RuleNode(name, detail)
        if self._stack:
            self._stack[-1].children.append(node)
        self._stack.append(node)
        return _RuleScope(self)

    def leaf(self, name: str, detail: str = "") -> None:
        """Record a non-structural rule application (Assign/Step/Com/…)."""

        if self._stack:
            self._stack[-1].children.append(RuleNode(name, detail))

    def _pop(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    # -- decision events -----------------------------------------------------

    def entailment(
        self,
        kind: str,
        psi: str,
        query: str,
        verdict: bool,
        seconds: float,
        source: str,
    ) -> None:
        node = self.current
        if node is not None:
            node.entailments.append(
                Entailment(kind, psi, query, bool(verdict), seconds, source)
            )

    def rewrite(
        self, site: str, before: str, after: str, cost_before: int, cost_after: int
    ) -> None:
        node = self.current
        if node is not None:
            node.rewrites.append(Rewrite(site, before, after, cost_before, cost_after))

    def heuristic(self, kind: str, detail: str, accepted: bool) -> None:
        node = self.current
        if node is not None:
            node.heuristics.append(Heuristic(kind, detail, accepted))


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullRecorder:
    """The zero-cost twin: every hook is inert, ``enabled`` is False.

    Producers guard event *construction* (string rendering, timing) on
    ``enabled``, so with this recorder the only cost per decision point
    is one attribute read — the same discipline
    :mod:`repro.telemetry.noop` enforces for metrics.
    """

    __slots__ = ()
    enabled = False
    trees: tuple = ()
    current = None

    def begin_pair(self, left, right) -> None:
        pass

    def end_pair(self, merged, seconds) -> None:
        return None

    def rule(self, name, detail="") -> _NullScope:
        return _NULL_SCOPE

    def leaf(self, name, detail="") -> None:
        pass

    def entailment(self, kind, psi, query, verdict, seconds, source) -> None:
        pass

    def rewrite(self, site, before, after, cost_before, cost_after) -> None:
        pass

    def heuristic(self, kind, detail, accepted) -> None:
        pass


NULL_RECORDER = NullRecorder()
