"""Cost attribution: static predicted cost vs observed per-operator runtime.

The translation validator (:mod:`repro.analysis.static`) predicts a
worst-case UDF cost per record for the merged program and for the
sequential baseline; the instrumented dataflow engine
(:mod:`repro.naiad.dataflow`) observes the *actual* per-record UDF cost on
``RunMetrics.per_operator``.  :func:`attribute_costs` joins the two per
operator and flags mispredictions:

* ``bound-violated`` — observed per-record cost exceeds the static upper
  bound (``ratio < 1``).  The bound is supposed to be sound, so this
  points at a cost-model bug (and the verify layer would likely flag the
  same pair);
* ``loose-bound`` — the bound overshoots the observation by more than
  ``loose_threshold``×.  Sound but useless for planning: typically a loop
  whose static trip-count bound is far above the data's actual behaviour;
* ``unbounded`` — the static analysis could not bound the operator at all;
* ``ok`` — everything else.

The same verdicts are exported as ``provenance_*`` metrics when a live
telemetry is supplied, so dashboards can watch cost-model fidelity drift
across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["OperatorAttribution", "attribute_costs", "DEFAULT_LOOSE_THRESHOLD"]

DEFAULT_LOOSE_THRESHOLD = 3.0


@dataclass
class OperatorAttribution:
    """Predicted-vs-actual cost verdict for one dataflow operator."""

    operator: str
    predicted_per_record: Optional[float]
    observed_per_record: Optional[float]
    records_in: int
    udf_cost: int
    seconds: float
    ratio: Optional[float]
    flag: str

    @property
    def mispredicted(self) -> bool:
        return self.flag in ("bound-violated", "loose-bound")

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "predicted_per_record": self.predicted_per_record,
            "observed_per_record": (
                round(self.observed_per_record, 4)
                if self.observed_per_record is not None
                else None
            ),
            "records_in": self.records_in,
            "udf_cost": self.udf_cost,
            "seconds": round(self.seconds, 6),
            "ratio": round(self.ratio, 4) if self.ratio is not None else None,
            "flag": self.flag,
        }


def attribute_costs(
    per_operator: Mapping[str, object],
    predicted: Mapping[str, Optional[int]],
    loose_threshold: float = DEFAULT_LOOSE_THRESHOLD,
    telemetry=None,
) -> list[OperatorAttribution]:
    """Join observed per-operator stats with static per-record predictions.

    ``per_operator`` is ``RunMetrics.per_operator`` (operator name →
    :class:`~repro.naiad.dataflow.OperatorStats`); ``predicted`` maps
    operator names to their static worst-case UDF cost per record (``None``
    when the analysis could not bound it).  Operators without a prediction
    entry (plumbing like ``input`` or ``collect``) are skipped — they run
    no UDFs, so there is nothing to attribute.
    """

    out: list[OperatorAttribution] = []
    for name, stats in per_operator.items():
        if name not in predicted:
            continue
        bound = predicted[name]
        observed = stats.udf_cost / stats.records_in if stats.records_in else None
        ratio = None
        if bound is None:
            flag = "unbounded"
        elif observed is None or observed == 0:
            flag = "ok"
        else:
            ratio = bound / observed
            if ratio < 1.0:
                flag = "bound-violated"
            elif ratio > loose_threshold:
                flag = "loose-bound"
            else:
                flag = "ok"
        out.append(
            OperatorAttribution(
                operator=name,
                predicted_per_record=float(bound) if bound is not None else None,
                observed_per_record=observed,
                records_in=stats.records_in,
                udf_cost=stats.udf_cost,
                seconds=stats.seconds,
                ratio=ratio,
                flag=flag,
            )
        )
    if telemetry is not None and getattr(telemetry, "enabled", False):
        registry = telemetry.metrics
        for attribution in out:
            if attribution.ratio is not None:
                registry.gauge(
                    "provenance_operator_cost_ratio", operator=attribution.operator
                ).set(attribution.ratio)
            if attribution.mispredicted:
                registry.counter(
                    "provenance_mispredicted_operators_total",
                    flag=attribution.flag,
                ).inc()
        registry.gauge("provenance_attributed_operators").set(len(out))
    return out
