"""repro.provenance — derivation recording and explain-plan reporting.

The consolidation calculus makes dozens of opaque decisions per pair:
which If/Loop/Com rule fired, which ``Ψ ⊨ e`` entailments the solver
accepted, where the ``related`` heuristic pruned an embedding, which
cross-simplification rewrites landed.  This package turns those decisions
into queryable artifacts — the database EXPLAIN for the optimiser:

* :mod:`repro.provenance.recorder` — the structured
  :class:`DerivationRecorder` threaded through
  :class:`repro.consolidation.Consolidator` and the simplifier
  :class:`~repro.consolidation.simplifier.Context`.  Recording follows
  the telemetry NULL-twin pattern: the default :data:`NULL_RECORDER`
  makes every hook a no-op behind one ``enabled`` check, so the hot path
  allocates *zero* derivation objects when nobody asked;
* :mod:`repro.provenance.render` — compact text rendering of SMT
  formulas (``Ψ`` contexts) and IR expressions for reports;
* :mod:`repro.provenance.attribution` — the cost-attribution pass that
  joins each operator's *static predicted* cost (the translation
  validator's bounds) with the *observed* per-operator runtime
  (``RunMetrics.per_operator``) and flags mispredictions;
* :mod:`repro.provenance.explain` — the ``repro explain`` engine: build
  a batch, consolidate it with recording on, execute it instrumented,
  and render the whole derivation as a text tree, JSON document or a
  self-contained HTML report.

Enable recording through the config — ``ExecutionConfig(provenance=True)``
— or directly via ``consolidate_all(..., provenance=True)``; every pair's
:class:`DerivationTree` lands on ``ConsolidationReport.derivations``.

``attribution`` and ``explain`` are loaded lazily (PEP 562): they import
the consolidation and dataflow layers, which themselves import
:mod:`repro.provenance.recorder` — eager imports here would be circular.
"""

from .recorder import (
    NULL_RECORDER,
    DerivationRecorder,
    DerivationTree,
    Entailment,
    Heuristic,
    Rewrite,
    RuleNode,
    derivation_summary,
)
from .render import format_expr, format_formula

__all__ = [
    "DerivationRecorder",
    "DerivationTree",
    "RuleNode",
    "Entailment",
    "Rewrite",
    "Heuristic",
    "NULL_RECORDER",
    "derivation_summary",
    "format_formula",
    "format_expr",
    "OperatorAttribution",
    "attribute_costs",
    "ExplainReport",
    "explain_batch",
    "render_text",
    "render_json",
    "render_html",
]

_LAZY = {
    "OperatorAttribution": "attribution",
    "attribute_costs": "attribution",
    "ExplainReport": "explain",
    "explain_batch": "explain",
    "render_text": "explain",
    "render_json": "explain",
    "render_html": "explain",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
