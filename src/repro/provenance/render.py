"""Compact text rendering of SMT formulas and IR expressions.

The solver's :class:`~repro.smt.terms.Formula` values are normalised
dataclasses (``Le(term) ≡ term <= 0``, ``Lin`` linear combinations) whose
``repr`` is unreadable at derivation size.  Reports need the ``Ψ``
contexts and entailment goals in something a human can scan, so this
module renders them back into infix notation:

>>> format_formula(Le(Lin(-12, ((Sym("m1"), 1),))))
'm1 <= 12'

Expressions reuse the language pretty-printer
(:func:`repro.lang.printer.expr_to_str`); :func:`format_expr` merely adds
the length clamp shared by every provenance surface, so one very large
embedded program cannot bloat a report.
"""

from __future__ import annotations

from ..lang.ast import Expr
from ..lang.printer import expr_to_str
from ..smt.terms import (
    App,
    Eq,
    FAnd,
    FFalse,
    FNot,
    FOr,
    FTrue,
    Formula,
    Le,
    Lin,
    Num,
    Sym,
    Term,
)

__all__ = ["format_term", "format_formula", "format_expr", "clamp"]

MAX_TEXT = 240


def clamp(text: str, limit: int = MAX_TEXT) -> str:
    """Cut ``text`` at ``limit`` characters with an ellipsis marker."""

    if len(text) <= limit:
        return text
    return text[: limit - 1] + "…"


def format_term(t: Term) -> str:
    if isinstance(t, Num):
        return str(t.value)
    if isinstance(t, Sym):
        return t.name
    if isinstance(t, App):
        args = ", ".join(format_term(a) for a in t.args)
        return f"{t.func}({args})"
    if isinstance(t, Lin):
        parts: list[str] = []
        for atom, coef in t.coeffs:
            rendered = format_term(atom)
            if coef == 1:
                piece = rendered
            elif coef == -1:
                piece = f"-{rendered}"
            else:
                piece = f"{coef}*{rendered}"
            if parts and not piece.startswith("-"):
                parts.append(f"+ {piece}")
            elif parts:
                parts.append(f"- {piece[1:]}")
            else:
                parts.append(piece)
        if t.const:
            sign = "+" if t.const > 0 else "-"
            parts.append(f"{sign} {abs(t.const)}" if parts else str(t.const))
        return " ".join(parts) if parts else "0"
    return repr(t)


def _comparison(t: Term, op: str) -> str:
    """Render ``t op 0`` by moving the constant to the right-hand side."""

    if isinstance(t, Lin) and t.const and t.coeffs:
        lhs = format_term(Lin(0, t.coeffs))
        return f"{lhs} {op} {-t.const}"
    return f"{format_term(t)} {op} 0"


def format_formula(f: Formula) -> str:
    if isinstance(f, FTrue):
        return "true"
    if isinstance(f, FFalse):
        return "false"
    if isinstance(f, Le):
        return _comparison(f.term, "<=")
    if isinstance(f, Eq):
        return _comparison(f.term, "=")
    if isinstance(f, FNot):
        inner = f.operand
        if isinstance(inner, Le):
            return _comparison(inner.term, ">")
        if isinstance(inner, Eq):
            return _comparison(inner.term, "!=")
        return f"!({format_formula(inner)})"
    if isinstance(f, FAnd):
        return " & ".join(_nest(a) for a in f.args)
    if isinstance(f, FOr):
        return " | ".join(_nest(a) for a in f.args)
    return repr(f)


def _nest(f: Formula) -> str:
    text = format_formula(f)
    if isinstance(f, (FAnd, FOr)):
        return f"({text})"
    return text


def format_expr(e: Expr, limit: int = MAX_TEXT) -> str:
    """The language pretty-printer with the shared report length clamp."""

    return clamp(expr_to_str(e), limit)
