"""Continuous profiling and trace-calibrated cost estimation.

The paper's cost model (Figure 2, :mod:`repro.lang.cost`) prices every
operation kind with a static literal count.  This package closes the loop
between those static prices and the wall clock the backends actually
observe:

* :mod:`repro.profiling.features` — static per-operation-kind unit counts
  of a program (the regression features);
* :mod:`repro.profiling.trace` — the schema-versioned JSONL trace store
  the sampling profiler appends to;
* :mod:`repro.profiling.profiler` — the sampling micro-profiler hooked
  into all three backends (interp / compiled / vectorized), with the
  repository's NULL-twin discipline: :data:`NULL_PROFILER` costs nothing
  and the hooks are wired at *construction* time, never per record;
* :mod:`repro.profiling.calibrate` — the offline least-squares fitter
  (``repro calibrate``) with fit diagnostics;
* :mod:`repro.profiling.model` — the serialized
  :class:`CalibratedCostModel`, pluggable back into the
  :mod:`repro.lang.cost` seam via :func:`repro.lang.cost.cost_model_from_weights`;
* :mod:`repro.profiling.planner` — the cost-driven pair planner the
  divide-and-conquer consolidation driver uses under
  ``planner="calibrated"``.
"""

from __future__ import annotations

from .calibrate import fit_calibration
from .features import OP_KINDS, RECORD_KIND, op_units, program_units
from .model import MODEL_SCHEMA_VERSION, CalibratedCostModel
from .planner import LevelPlan, PlannedPair, pair_savings, plan_level
from .profiler import NULL_PROFILER, NullProfiler, Profiler
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceSample,
    TraceStore,
    read_trace,
    trace_fingerprint,
)

__all__ = [
    "OP_KINDS",
    "RECORD_KIND",
    "op_units",
    "program_units",
    "TRACE_SCHEMA_VERSION",
    "TraceSample",
    "TraceStore",
    "read_trace",
    "trace_fingerprint",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "fit_calibration",
    "CalibratedCostModel",
    "MODEL_SCHEMA_VERSION",
    "PlannedPair",
    "LevelPlan",
    "pair_savings",
    "plan_level",
]
