"""The serialized calibrated cost model.

A :class:`CalibratedCostModel` is what ``repro calibrate`` produces:
seconds-per-unit weights for every operation kind (plus the per-record
overhead axis), together with the fit diagnostics an operator needs to
decide whether to trust it — R², residual magnitudes, per-kind standard
errors and support counts, and the fingerprint/timestamp of the trace it
was fitted from.

Two consumption paths:

* the cost-driven planner (:mod:`repro.profiling.planner`) calls
  :meth:`predict_seconds` / :meth:`predict_program_seconds` to rank
  candidate pairs by predicted merged-cost savings in *wall seconds*;
* :meth:`to_cost_model` folds the weights back into the existing
  :class:`repro.lang.cost.CostModel` seam (integer units normalized to
  ``var = 1``) for any consumer of the Figure-2 static model.

Serialization is deterministic: :meth:`to_json` sorts every mapping and
derives ``fitted_at`` from the newest sample timestamp, so fitting the
same trace twice yields byte-identical JSON (tested).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..lang.cost import DEFAULT_COST_MODEL, CostModel, cost_model_from_weights
from ..lang.functions import FunctionTable
from .features import OP_KINDS, RECORD_KIND, program_units

# A forward reference would do, but the planner needs Program at runtime too.
from ..lang.ast import Program

__all__ = ["MODEL_SCHEMA_VERSION", "CalibratedCostModel"]

MODEL_SCHEMA_VERSION = 1

# Support below this many samples marks a weight "low" confidence even
# when its standard error looks tight — the error estimate itself is
# untrustworthy on a handful of points.
_MIN_SUPPORT = 8


@dataclass(frozen=True)
class CalibratedCostModel:
    """Least-squares seconds-per-unit weights plus fit diagnostics."""

    weights: Mapping[str, float]
    r2: float = 0.0
    residual_abs_mean: float = 0.0
    residual_abs_max: float = 0.0
    stderr: Mapping[str, float] = field(default_factory=dict)
    support: Mapping[str, int] = field(default_factory=dict)
    samples: int = 0
    backends: Mapping[str, int] = field(default_factory=dict)
    fitted_at: float = 0.0
    trace_fingerprint: str = ""
    source: str = "fit"  # "fit" | "uniform"
    schema: int = MODEL_SCHEMA_VERSION

    # -- prediction ----------------------------------------------------------

    def predict_seconds(self, units: Mapping[str, float]) -> float:
        """Predicted wall seconds for one execution with these unit counts."""

        total = 0.0
        for kind, amount in units.items():
            weight = self.weights.get(kind)
            if weight is not None:
                total += weight * amount
        return total

    def predict_program_seconds(
        self, program: Program, functions: Optional[FunctionTable] = None
    ) -> float:
        return self.predict_seconds(program_units(program, functions))

    def confidence(self, kind: str) -> str:
        """``high`` / ``medium`` / ``low`` trust in one fitted weight."""

        n = int(self.support.get(kind, 0))
        if n < _MIN_SUPPORT:
            return "low"
        weight = self.weights.get(kind, 0.0)
        err = self.stderr.get(kind, float("inf"))
        if weight > 0.0 and err <= 0.5 * weight:
            return "high"
        return "medium"

    def staleness_seconds(self, now: Optional[float] = None) -> float:
        """Age of the calibration (0.0 for a model with no trace history)."""

        if self.fitted_at <= 0.0:
            return 0.0
        reference = time.time() if now is None else now
        return max(0.0, reference - self.fitted_at)

    # -- the repro.lang.cost seam --------------------------------------------

    def to_cost_model(self) -> CostModel:
        """Fold the fitted weights back into an integer Figure-2 model."""

        return cost_model_from_weights(self.weights)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "source": self.source,
            "weights": {k: self.weights[k] for k in sorted(self.weights)},
            "diagnostics": {
                "r2": self.r2,
                "residual_abs_mean": self.residual_abs_mean,
                "residual_abs_max": self.residual_abs_max,
                "stderr": {k: self.stderr[k] for k in sorted(self.stderr)},
                "support": {k: self.support[k] for k in sorted(self.support)},
                "confidence": {
                    k: self.confidence(k) for k in sorted(self.weights)
                },
                "samples": self.samples,
                "backends": {k: self.backends[k] for k in sorted(self.backends)},
            },
            "fitted_at": self.fitted_at,
            "trace_fingerprint": self.trace_fingerprint,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "CalibratedCostModel":
        if doc.get("schema") != MODEL_SCHEMA_VERSION:
            raise ValueError(
                f"calibrated model schema {doc.get('schema')!r} is not "
                f"{MODEL_SCHEMA_VERSION}"
            )
        weights = doc.get("weights")
        if not isinstance(weights, dict):
            raise ValueError("calibrated model has no weights mapping")
        diagnostics = doc.get("diagnostics")
        diag: Dict[str, object] = dict(diagnostics) if isinstance(diagnostics, dict) else {}
        stderr = diag.get("stderr")
        support = diag.get("support")
        backends = diag.get("backends")
        return cls(
            weights={str(k): float(v) for k, v in weights.items()},
            r2=float(diag.get("r2", 0.0)),  # type: ignore[arg-type]
            residual_abs_mean=float(diag.get("residual_abs_mean", 0.0)),  # type: ignore[arg-type]
            residual_abs_max=float(diag.get("residual_abs_max", 0.0)),  # type: ignore[arg-type]
            stderr=(
                {str(k): float(v) for k, v in stderr.items()}
                if isinstance(stderr, dict)
                else {}
            ),
            support=(
                {str(k): int(v) for k, v in support.items()}
                if isinstance(support, dict)
                else {}
            ),
            samples=int(diag.get("samples", 0)),  # type: ignore[arg-type]
            backends=(
                {str(k): int(v) for k, v in backends.items()}
                if isinstance(backends, dict)
                else {}
            ),
            fitted_at=float(doc.get("fitted_at", 0.0)),  # type: ignore[arg-type]
            trace_fingerprint=str(doc.get("trace_fingerprint", "")),
            source=str(doc.get("source", "fit")),
        )

    @classmethod
    def from_json(cls, text: str) -> "CalibratedCostModel":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("calibrated model JSON must be an object")
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CalibratedCostModel":
        return cls.from_json(Path(path).read_text())

    # -- the no-trace fallback -----------------------------------------------

    @classmethod
    def uniform(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seconds_per_unit: float = 1e-7,
    ) -> "CalibratedCostModel":
        """A calibration-shaped view of the static Figure-2 model.

        Used when ``planner="calibrated"`` runs without a fitted model:
        every kind's weight is its static cost times one uniform
        seconds-per-unit scale, so predicted *savings rankings* reduce to
        static cost units — the planner still works, it just plans with
        the paper's priors instead of measured ones.
        """

        static = {
            "const": float(cost_model.int_const),
            "var": float(cost_model.var),
            "arg": float(cost_model.arg),
            "call": 1.0,  # call units already carry the table's cost
            "arith": float(cost_model.arith),
            "cmp": float(cost_model.cmp),
            "logic": float(cost_model.logic),
            "neg": float(cost_model.neg),
            "assign": float(cost_model.assign),
            "notify": float(cost_model.notify),
            "branch": float(cost_model.branch),
            RECORD_KIND: 0.0,
        }
        assert set(OP_KINDS) <= set(static)
        return cls(
            weights={k: v * seconds_per_unit for k, v in static.items()},
            source="uniform",
        )
