"""The cost-driven consolidation planner.

Given one level of the divide-and-conquer merge tree, the planner ranks
every candidate pairing by *predicted wall-seconds saved* under a
:class:`~repro.profiling.model.CalibratedCostModel` and greedily matches
the highest-savings pairs first.  Pairs with no predicted savings are
planned as **skips**: the driver composes them sequentially (the exact
result a full merge of unrelated programs would produce, since
cross-simplification fires only on shared work) without paying the
consolidator's rewrite/SMT machinery at all.

The savings signal reuses the ``related`` heuristic's sharing features
(:mod:`repro.analysis.related`) — shared call signatures and shared
comparison subjects — but *weights* them with calibrated per-unit
seconds instead of treating sharing as boolean.  Two programs that both
call a 40-unit library function are predicted to save roughly
``40 · weight("call")`` seconds per record if consolidation dedups the
call; two that merely compare the same subexpression save one
``cmp``-weight.  The ranking is what matters: the driver spends its SMT
budget down this order, so mispredictions cost budget allocation, never
correctness.

Determinism: profiles are accumulated in first-seen order, candidate
ties break on ``(i, j)``, and the greedy match is a plain sort — the
same level always yields the same plan (the provenance log depends on
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.related import is_trivial
from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Stmt,
    StrConst,
    Var,
    While,
)
from ..lang.functions import FunctionTable
from ..lang.visitors import stmt_exprs, subexpressions
from .features import LOOP_UNROLL
from .model import CalibratedCostModel

__all__ = ["PlannedPair", "LevelPlan", "pair_savings", "plan_level"]

# An overlap profile: sharing-feature key -> predicted seconds at stake.
Profile = Dict[Tuple[str, str], float]


@dataclass(frozen=True)
class PlannedPair:
    """One planner decision at one tree level.

    ``left``/``right`` index the level's program list.  ``merge`` False
    means the planner predicts no cross-simplification value and the
    driver should compose the pair sequentially instead of invoking the
    consolidator.
    """

    left: int
    right: int
    predicted_savings: float
    merge: bool

    def describe(self) -> str:
        action = "merge" if self.merge else "skip"
        return (
            f"{action} ({self.left}, {self.right}) "
            f"predicted_savings={self.predicted_savings:.3e}s"
        )


@dataclass(frozen=True)
class LevelPlan:
    """The planner's output for one tree level.

    ``pairs`` is every pairing in execution order (highest predicted
    savings first); ``carried`` is the odd program carried to the next
    level unpaired; ``decisions`` carries the full per-pair records for
    provenance.
    """

    pairs: Tuple[Tuple[int, int], ...]
    carried: Tuple[int, ...]
    decisions: Tuple[PlannedPair, ...]


def _canon(e: Expr) -> str:
    """A structural key for an expression with local names erased.

    Two already-consolidated programs name their locals differently (the
    disjoint-renaming pass guarantees it), so a ``repr`` match on any
    expression containing a ``Var`` is impossible by construction.  For
    the loop-shape feature the *shape* is what predicts fusion — ``while
    (m <= 12)`` and ``while (k <= 12)`` fuse — so locals canonicalize to
    a placeholder.
    """

    if isinstance(e, Var):
        return "Var(_)"
    if isinstance(e, (IntConst, StrConst, BoolConst, Arg)):
        return repr(e)
    if isinstance(e, Call):
        return f"Call({e.func},{','.join(_canon(a) for a in e.args)})"
    if isinstance(e, BinOp):
        return f"BinOp({e.op},{_canon(e.left)},{_canon(e.right)})"
    if isinstance(e, Cmp):
        return f"Cmp({e.op},{_canon(e.left)},{_canon(e.right)})"
    if isinstance(e, BoolOp):
        return f"BoolOp({e.op},{_canon(e.left)},{_canon(e.right)})"
    if isinstance(e, Not):
        return f"Not({_canon(e.operand)})"
    return repr(e)


def _loop_shapes(s: Stmt, shapes: List[str]) -> None:
    """Collect the canonical test of every ``While`` in ``s``."""

    if isinstance(s, Seq):
        for sub in s.stmts:
            _loop_shapes(sub, shapes)
    elif isinstance(s, If):
        _loop_shapes(s.then, shapes)
        _loop_shapes(s.orelse, shapes)
    elif isinstance(s, While):
        shapes.append(_canon(s.cond))
        _loop_shapes(s.body, shapes)


def _loop_shapes_of(program: Program) -> List[str]:
    shapes: List[str] = []
    _loop_shapes(program.body, shapes)
    return shapes


def _profile(
    program: Program,
    functions: Optional[FunctionTable],
    model: CalibratedCostModel,
) -> Profile:
    """Sharing features of ``program`` weighted in predicted seconds.

    Call and comparison keys mirror
    :func:`repro.analysis.related.call_features` /
    ``comparison_subjects`` exactly (ground-argument calls key on the
    full expression, variable-argument calls on the name alone;
    comparison operands qualify when non-trivial or a bare ``Arg``).  A
    third axis the boolean heuristic lacks: every ``While`` contributes
    its canonical test shape, because two same-shape loops are fusion
    candidates (the Loop rules dedup the fused loop's control) even when
    their bodies call entirely different functions.
    """

    call_weight = float(model.weights.get("call", 0.0))
    cmp_weight = float(model.weights.get("cmp", 0.0))
    branch_weight = float(model.weights.get("branch", 0.0))
    # Fusing two same-shape loops saves one loop's control (test + branch
    # + induction update) per iteration — LOOP_UNROLL iterations' worth at
    # the calibrated rates.
    loop_stake = (1.0 + LOOP_UNROLL) * (cmp_weight + branch_weight)
    profile: Profile = {}
    for shape in _loop_shapes_of(program):
        key = ("loop", shape)
        profile[key] = profile.get(key, 0.0) + loop_stake
    for expr in stmt_exprs(program.body):
        for sub in subexpressions(expr):
            if isinstance(sub, Call):
                if functions is not None and sub.func in functions:
                    call_units = float(functions[sub.func].cost)
                else:
                    call_units = 10.0
                if all(
                    isinstance(a, (Arg, IntConst, StrConst, BoolConst))
                    for a in sub.args
                ):
                    key = ("call", repr(sub))
                else:
                    key = ("call", sub.func)
                profile[key] = profile.get(key, 0.0) + call_units * call_weight
            elif isinstance(sub, Cmp):
                for side in (sub.left, sub.right):
                    if isinstance(side, Arg) or not is_trivial(side):
                        key = ("cmp", repr(side))
                        profile[key] = profile.get(key, 0.0) + cmp_weight
    return profile


def pair_savings(a: Profile, b: Profile) -> float:
    """Predicted seconds saved per record by consolidating two profiles.

    For every sharing feature both sides exhibit, consolidation can at
    best deduplicate the smaller side's instances — hence ``min``.
    Disjoint profiles predict exactly zero: nothing shared, nothing to
    cross-simplify, skip the merge.
    """

    if len(b) < len(a):
        a, b = b, a
    total = 0.0
    for key, stake in a.items():
        other = b.get(key)
        if other is not None:
            total += min(stake, other)
    return total


def plan_level(
    programs: Sequence[Program],
    functions: Optional[FunctionTable],
    model: CalibratedCostModel,
    min_savings: float = 0.0,
) -> LevelPlan:
    """Greedily match one tree level by descending predicted savings.

    Highest-savings pairs match first (ties on index order for
    determinism).  Programs left over after profitable matching are
    paired adjacently with ``merge=False`` — they still halve the level,
    but sequentially, without consolidator work.  An odd program is
    carried.
    """

    n = len(programs)
    if n < 2:
        return LevelPlan(
            pairs=(), carried=tuple(range(n)), decisions=()
        )

    profiles = [_profile(p, functions, model) for p in programs]
    candidates: List[Tuple[float, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            savings = pair_savings(profiles[i], profiles[j])
            if savings > min_savings:
                candidates.append((savings, i, j))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))

    taken = [False] * n
    decisions: List[PlannedPair] = []
    for savings, i, j in candidates:
        if not taken[i] and not taken[j]:
            taken[i] = taken[j] = True
            decisions.append(PlannedPair(i, j, savings, merge=True))

    leftovers = [i for i in range(n) if not taken[i]]
    while len(leftovers) >= 2:
        i, j = leftovers[0], leftovers[1]
        leftovers = leftovers[2:]
        decisions.append(PlannedPair(i, j, 0.0, merge=False))

    return LevelPlan(
        pairs=tuple((d.left, d.right) for d in decisions),
        carried=tuple(leftovers),
        decisions=tuple(decisions),
    )
