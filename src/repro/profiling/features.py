"""Static per-operation-kind unit counts — the calibration features.

A profiling sample pairs the wall time a backend observed with the
*static* decomposition of the program it ran: how many units of each
Figure-2 operation kind one execution performs.  The calibration fitter
(:mod:`repro.profiling.calibrate`) then solves for seconds-per-unit
weights by least squares, and the planner predicts merged-cost savings
from the same vectors.

Unit semantics, chosen so one regression covers heterogeneous programs:

* every kind except ``call`` counts *operations* (one ``Cmp`` node is one
  ``cmp`` unit);
* ``call`` counts *cost units from the function table* — ``f(x)`` with
  ``cost=40`` contributes 40 ``call`` units — so an expensive library
  call weighs proportionally more than a cheap one under a single fitted
  weight, exactly like Figure 2's ``eval(f(...)) = (c, m)``;
* :data:`RECORD_KIND` counts invocations (1 per run, ``n`` per column
  batch) and absorbs the per-record fixed overhead — dispatch, argument
  binding — that no operation kind explains.

Control flow is resolved statically and deterministically: an ``If``
contributes its test plus the *heavier* branch (worst case, matching the
upper bound :func:`repro.analysis.costmodel.stmt_cost_bounds` reports);
a ``While`` contributes its test plus :data:`LOOP_UNROLL` iterations of
``body + test``.  The approximation is deliberate — calibration is a
regression over many samples, not an exact accounting.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    Expr,
    If,
    IntConst,
    Not,
    Notify,
    Program,
    Seq,
    Skip,
    Stmt,
    StrConst,
    Var,
    While,
)
from ..lang.functions import FunctionTable

__all__ = ["OP_KINDS", "RECORD_KIND", "LOOP_UNROLL", "op_units", "program_units"]

# The regression feature axes, in canonical order (the fitter and the
# serialized model both iterate this tuple, so weight vectors line up).
OP_KINDS: tuple[str, ...] = (
    "const",
    "var",
    "arg",
    "call",
    "arith",
    "cmp",
    "logic",
    "neg",
    "assign",
    "notify",
    "branch",
)

# Per-invocation overhead pseudo-kind (1 per run, n per batch).
RECORD_KIND = "record"

# Deterministic trip estimate for loops whose bound the static layer
# cannot prove; the same figure for every program keeps rankings stable.
LOOP_UNROLL = 4

# Mirrors repro.analysis.costmodel._DEFAULT_CALL_COST for calls to
# functions absent from the table.
_DEFAULT_CALL_COST = 10


def _add(units: Dict[str, float], kind: str, amount: float = 1.0) -> None:
    units[kind] = units.get(kind, 0.0) + amount


def _expr_units(
    e: Expr, functions: Optional[FunctionTable], units: Dict[str, float]
) -> None:
    if isinstance(e, (IntConst, StrConst, BoolConst)):
        _add(units, "const")
    elif isinstance(e, Var):
        _add(units, "var")
    elif isinstance(e, Arg):
        _add(units, "arg")
    elif isinstance(e, Call):
        if functions is not None and e.func in functions:
            call_cost = functions[e.func].cost
        else:
            call_cost = _DEFAULT_CALL_COST
        _add(units, "call", float(call_cost))
        for a in e.args:
            _expr_units(a, functions, units)
    elif isinstance(e, BinOp):
        _add(units, "arith")
        _expr_units(e.left, functions, units)
        _expr_units(e.right, functions, units)
    elif isinstance(e, Cmp):
        _add(units, "cmp")
        _expr_units(e.left, functions, units)
        _expr_units(e.right, functions, units)
    elif isinstance(e, BoolOp):
        _add(units, "logic")
        _expr_units(e.left, functions, units)
        _expr_units(e.right, functions, units)
    elif isinstance(e, Not):
        _add(units, "neg")
        _expr_units(e.operand, functions, units)
    else:
        raise TypeError(f"not an expression: {e!r}")


def _scaled_into(
    target: Dict[str, float], source: Mapping[str, float], factor: float
) -> None:
    for kind, amount in source.items():
        _add(target, kind, amount * factor)


def _stmt_units(
    s: Stmt, functions: Optional[FunctionTable], units: Dict[str, float]
) -> None:
    if isinstance(s, Skip):
        return
    if isinstance(s, Assign):
        _expr_units(s.expr, functions, units)
        _add(units, "assign")
        return
    if isinstance(s, Notify):
        _expr_units(s.expr, functions, units)
        _add(units, "notify")
        return
    if isinstance(s, Seq):
        for sub in s.stmts:
            _stmt_units(sub, functions, units)
        return
    if isinstance(s, If):
        _expr_units(s.cond, functions, units)
        _add(units, "branch")
        then_units: Dict[str, float] = {}
        else_units: Dict[str, float] = {}
        _stmt_units(s.then, functions, then_units)
        _stmt_units(s.orelse, functions, else_units)
        # Worst case: keep the heavier branch (by total units — a fixed,
        # model-free tie-break so the vector is deterministic).
        heavier = (
            then_units
            if sum(then_units.values()) >= sum(else_units.values())
            else else_units
        )
        _scaled_into(units, heavier, 1.0)
        return
    if isinstance(s, While):
        test_units: Dict[str, float] = {}
        _expr_units(s.cond, functions, test_units)
        _add(test_units, "branch")
        body_units: Dict[str, float] = {}
        _stmt_units(s.body, functions, body_units)
        # test, then LOOP_UNROLL * (body + test).
        _scaled_into(units, test_units, 1.0 + LOOP_UNROLL)
        _scaled_into(units, body_units, float(LOOP_UNROLL))
        return
    raise TypeError(f"not a statement: {s!r}")


def op_units(
    s: Stmt, functions: Optional[FunctionTable] = None
) -> Dict[str, float]:
    """Per-kind unit counts of one (worst-case) execution of ``s``."""

    units: Dict[str, float] = {}
    _stmt_units(s, functions, units)
    return units


def program_units(
    program: Program, functions: Optional[FunctionTable] = None
) -> Dict[str, float]:
    """Per-kind unit counts of one run of ``program``, including the
    per-invocation :data:`RECORD_KIND` axis."""

    units = op_units(program.body, functions)
    units[RECORD_KIND] = 1.0
    return units
