"""The persistent profiling trace store: schema-versioned JSONL.

One line per :class:`TraceSample`.  The file is append-only — the
profiler appends as samples fire, ``repro calibrate`` reads the whole
file back — and every line carries ``schema`` so a reader can skip (and
count) lines written by an incompatible future version instead of
mis-fitting on them.

The store is deliberately plain: no rotation, no compression, stdlib
``json`` only.  A trace is an *input artifact* to calibration, not an
operational log; EXPERIMENTS.md shows the whole
``repro profile → repro calibrate`` round trip.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceSample",
    "TraceStore",
    "read_trace",
    "trace_fingerprint",
]

TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceSample:
    """One profiling observation: static units against observed seconds.

    ``units`` holds the *total* per-operation-kind unit counts the
    observation covers (for a column batch: per-record units times
    ``records``, including ``records`` itself on the
    :data:`~repro.profiling.features.RECORD_KIND` axis); ``seconds`` is
    the matching total wall time.  ``cost_units`` is the Figure-2 cost
    the run actually charged — kept for cross-checks, not used by the
    fitter.
    """

    pid: str
    backend: str
    domain: str
    units: Mapping[str, float]
    cost_units: int
    seconds: float
    records: int = 1
    ts: float = 0.0

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "pid": self.pid,
            "backend": self.backend,
            "domain": self.domain,
            "units": {k: self.units[k] for k in sorted(self.units)},
            "cost_units": self.cost_units,
            "seconds": self.seconds,
            "records": self.records,
            "ts": self.ts,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "TraceSample":
        units = doc.get("units")
        if not isinstance(units, dict):
            raise ValueError("trace sample has no units mapping")
        return cls(
            pid=str(doc.get("pid", "")),
            backend=str(doc.get("backend", "")),
            domain=str(doc.get("domain", "")),
            units={str(k): float(v) for k, v in units.items()},
            cost_units=int(doc.get("cost_units", 0)),  # type: ignore[arg-type]
            seconds=float(doc.get("seconds", 0.0)),  # type: ignore[arg-type]
            records=int(doc.get("records", 1)),  # type: ignore[arg-type]
            ts=float(doc.get("ts", 0.0)),  # type: ignore[arg-type]
        )


@dataclass
class TraceStore:
    """Appends samples to a JSONL file (thread-safe, lazily opened)."""

    path: Union[str, Path]
    _handle: Optional[IO[str]] = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def append(self, sample: TraceSample) -> None:
        line = json.dumps(sample.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def read(self) -> List[TraceSample]:
        samples, _skipped = read_trace(self.path)
        return samples

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_trace(path: Union[str, Path]) -> Tuple[List[TraceSample], int]:
    """Load every compatible sample; return ``(samples, skipped_lines)``.

    Lines that are not valid JSON objects, or whose ``schema`` differs
    from :data:`TRACE_SCHEMA_VERSION`, are counted and skipped — a trace
    half-written by a newer repro must degrade to "fewer samples", never
    to a mis-fit.
    """

    samples: List[TraceSample] = []
    skipped = 0
    trace_path = Path(path)
    if not trace_path.exists():
        return samples, skipped
    with open(trace_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA_VERSION:
                skipped += 1
                continue
            try:
                samples.append(TraceSample.from_dict(doc))
            except (ValueError, TypeError):
                skipped += 1
    return samples, skipped


def trace_fingerprint(samples: Iterable[TraceSample]) -> str:
    """A stable content hash of a sample set (recorded on fitted models).

    The hash covers the canonical JSON of every sample in order, so the
    same trace always fingerprints identically — the determinism test
    relies on this, and calibration staleness reporting uses it to tell
    "model fitted from this trace" apart from "model fitted from an
    older one".
    """

    digest = hashlib.sha256()
    for sample in samples:
        digest.update(json.dumps(sample.to_dict(), sort_keys=True).encode())
        digest.update(b"\n")
    return digest.hexdigest()
